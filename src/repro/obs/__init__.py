"""Structured observability for the experiment engine.

Three artifacts turn every run into something inspectable after the
fact (DESIGN.md §6):

* **Metrics registry** (:mod:`repro.obs.metrics`) — counter/gauge/
  histogram instruments with labels. Hot-path components keep raw int
  counters and expose them through pull collectors
  (``publish_metrics``), so the registry costs nothing per request and
  literally nothing when disabled.
* **Epoch timelines** (:mod:`repro.obs.timeline`) — ``REPRO_EPOCH=N``
  samples every metric each N serviced requests of the measure phase,
  emitted as JSONL next to the run manifest.
* **Run manifests** (:mod:`repro.obs.manifest`) — ``run_points`` writes
  ``results/runs/<run_id>/manifest.json`` with full per-point config,
  seeds, code hash, host info, wall/sim time, and cache provenance.

Plus the **event log** (:mod:`repro.obs.events`): per-point progress,
ETA, and profile output as atomic ``REPRO_LOG=text|json`` lines.
"""

from repro.obs.events import EventLog, get_event_log
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    PointRecord,
    RunManifest,
    manifests_enabled,
    runs_dir,
    validate_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    sample_name,
)
from repro.obs.timeline import (
    EpochSampler,
    ObsContext,
    TIMELINE_SCHEMA_VERSION,
    epoch_from_env,
    load_jsonl,
    validate_timeline,
    write_jsonl,
)

__all__ = [
    "Counter",
    "EpochSampler",
    "EventLog",
    "Gauge",
    "Histogram",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "ObsContext",
    "PointRecord",
    "RunManifest",
    "TIMELINE_SCHEMA_VERSION",
    "epoch_from_env",
    "get_event_log",
    "load_jsonl",
    "manifests_enabled",
    "runs_dir",
    "sample_name",
    "validate_manifest",
    "validate_timeline",
    "write_jsonl",
]
