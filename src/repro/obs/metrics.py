"""Prometheus-style metrics registry: counters, gauges, histograms.

The simulator's hot paths (cache insert/access, traffic accounting)
keep their raw integer counters — routing every increment through an
instrument object would cost far more than the < 5% regression budget
the hot-path microbenchmark enforces. Instead, components *publish*
those raw counters through **pull collectors**: a ``publish_metrics``
method registers a callback that copies the current raw values into
registry instruments whenever the registry is sampled (an epoch
boundary, never the per-request path). Push-style ``inc``/``set``/
``observe`` instruments exist for cold paths (engine events, per-point
wall time).

A disabled registry (``MetricsRegistry(enabled=False)``) hands out a
shared no-op instrument and drops collectors, so instrumented code runs
with zero bookkeeping — the pattern every component uses::

    registry.counter("nic_sweeps_total", "...").inc()   # no-op when disabled

Sample naming follows the Prometheus text format: ``name`` for a bare
metric, ``name{k="v",...}`` with sorted label keys for a labelled child,
and ``_bucket``/``_count``/``_sum`` expansions for histograms.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Default histogram bucket upper bounds (seconds-ish scale; callers
#: supply their own for counts).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Hard ceiling on label sets per metric family; exceeding it is almost
#: always an accidental unbounded label (an address, a request id).
DEFAULT_MAX_LABEL_SETS = 1024


def _format_value(value: float) -> str:
    """Prometheus-style number: integers without a trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def sample_name(name: str, labels: Optional[Dict[str, str]] = None) -> str:
    """Flat sample key: ``name`` or ``name{k="v",...}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()

    def labels(self, **_kv: str) -> "NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = NullInstrument()


class _Family:
    """One registered metric name: a bare instrument or labelled children."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        label_names: Tuple[str, ...],
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], "_Family"] = {}
        self._label_values: Optional[Tuple[str, ...]] = None

    # -- labelling ------------------------------------------------------

    def labels(self, **kv: str):
        """Child instrument for one label-value combination (memoized)."""
        if not self.label_names:
            raise ConfigError(f"metric {self.name!r} was declared without labels")
        if set(kv) != set(self.label_names):
            raise ConfigError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(kv))}"
            )
        key = tuple(str(kv[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            if len(self._children) >= self.registry.max_label_sets:
                raise ConfigError(
                    f"metric {self.name!r} exceeds the label-cardinality "
                    f"cap ({self.registry.max_label_sets} label sets); "
                    "an unbounded label value is almost certainly leaking in"
                )
            child = type(self)(self.registry, self.name, self.help, ())
            child._label_values = key
            self._children[key] = child
        return child

    def _label_dict(self) -> Optional[Dict[str, str]]:
        if self._label_values is None:
            return None
        return dict(zip(self.label_names, self._label_values))

    def _iter_leaves(self) -> Iterable["_Family"]:
        if self.label_names:
            for key, child in self._children.items():
                child_labels = dict(zip(self.label_names, key))
                yield child, child_labels  # type: ignore[misc]
        else:
            yield self, None  # type: ignore[misc]

    # -- overridden by concrete kinds -----------------------------------

    def samples(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for leaf, labels in self._iter_leaves():  # type: ignore[misc]
            leaf._emit(out, labels)
        return out

    def text_samples(self) -> List[Tuple[str, float]]:
        """Samples in text-exposition order (overridden by Histogram,
        whose ``_bucket`` lines must come out in ascending ``le`` order
        rather than lexicographically)."""
        return sorted(self.samples().items())

    def _emit(self, out: Dict[str, float], labels: Optional[Dict[str, str]]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        for leaf, _labels in self._iter_leaves():  # type: ignore[misc]
            if leaf is not self:
                leaf.reset()


class Counter(_Family):
    """Monotonic count. ``inc`` pushes; ``set_total`` publishes a raw
    counter maintained elsewhere (the pull-collector pattern)."""

    kind = "counter"

    def __init__(self, registry, name, help, label_names) -> None:
        super().__init__(registry, name, help, label_names)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    def set_total(self, value: float) -> None:
        """Overwrite with the absolute value of an external raw counter."""
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def _emit(self, out, labels) -> None:
        out[sample_name(self.name, labels)] = self._value

    def reset(self) -> None:
        self._value = 0.0
        super().reset()


class Gauge(_Family):
    """Point-in-time value (occupancy, hit rate, queue depth)."""

    kind = "gauge"

    def __init__(self, registry, name, help, label_names) -> None:
        super().__init__(registry, name, help, label_names)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _emit(self, out, labels) -> None:
        out[sample_name(self.name, labels)] = self._value

    def reset(self) -> None:
        self._value = 0.0
        super().reset()


class Histogram(_Family):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe(v)`` increments every bucket whose upper bound is >= v,
    plus the implicit ``+Inf`` bucket, ``_count``, and ``_sum``.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, label_names, buckets=None) -> None:
        super().__init__(registry, name, help, label_names)
        bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigError(
                f"histogram {self.name!r} buckets must be strictly increasing"
            )
        self.buckets = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +Inf last
        self._count = 0
        self._sum = 0.0

    def labels(self, **kv: str):
        child = super().labels(**kv)
        # Children inherit the parent's bucket layout.
        if child._count == 0 and child.buckets != self.buckets:
            child.buckets = self.buckets
            child._bucket_counts = [0] * (len(self.buckets) + 1)
        return child

    def observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self._bucket_counts[i] += 1
        self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative count per upper bound (as the text format reports)."""
        out: Dict[str, int] = {}
        for bound, n in zip(self.buckets, self._bucket_counts[:-1]):
            out[repr(bound)] = n  # already cumulative per bound
        out["+Inf"] = self._bucket_counts[-1]
        return out

    def _emit(self, out, labels) -> None:
        for le, n in self.bucket_counts().items():
            bucket_labels = dict(labels or {})
            bucket_labels["le"] = le
            out[sample_name(f"{self.name}_bucket", bucket_labels)] = float(n)
        out[sample_name(f"{self.name}_count", labels)] = float(self._count)
        out[sample_name(f"{self.name}_sum", labels)] = self._sum

    def text_samples(self) -> List[Tuple[str, float]]:
        """Exposition-order samples: cumulative ``_bucket`` lines in
        ascending upper-bound order ending at the explicit ``+Inf``
        bucket, then ``_count`` and ``_sum`` — the order Prometheus
        scrape tooling requires (a lexicographic sort would put
        ``+Inf`` first and ``"10.0"`` before ``"5.0"``)."""
        out: List[Tuple[str, float]] = []
        leaves = list(self._iter_leaves())
        leaves.sort(
            key=lambda pair: tuple(sorted((pair[1] or {}).items()))
        )
        for leaf, labels in leaves:  # type: ignore[misc]
            for le, n in leaf.bucket_counts().items():  # ascending, +Inf last
                bucket_labels = dict(labels or {})
                bucket_labels["le"] = le
                out.append(
                    (sample_name(f"{self.name}_bucket", bucket_labels), float(n))
                )
            out.append(
                (sample_name(f"{self.name}_count", labels), float(leaf._count))
            )
            out.append((sample_name(f"{self.name}_sum", labels), leaf._sum))
        return out

    def reset(self) -> None:
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        super().reset()


class MetricsRegistry:
    """Names -> instruments, plus pull collectors run at sample time.

    ``enabled=False`` turns every factory into a supplier of the shared
    :data:`NULL_INSTRUMENT` and makes :meth:`collect` return ``{}``; the
    instrumentation sites then cost one no-op method call on cold paths
    and nothing at all on hot paths (which only ever publish through
    collectors, and collectors are dropped when disabled).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> None:
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- factories ------------------------------------------------------

    def _family(self, cls, name: str, help: str, labels: Sequence[str], **kw):
        if not self.enabled:
            return NULL_INSTRUMENT
        existing = self._families.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ConfigError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        family = cls(self, name, help, tuple(labels), **kw)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self._family(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        return self._family(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ):
        return self._family(Histogram, name, help, labels, buckets=buckets)

    # -- collection -----------------------------------------------------

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Add a pull callback run before every :meth:`collect`."""
        if self.enabled:
            self._collectors.append(collector)

    def collect(self) -> Dict[str, float]:
        """Run collectors, then flatten every sample to ``{key: value}``."""
        if not self.enabled:
            return {}
        for collector in self._collectors:
            collector(self)
        out: Dict[str, float] = {}
        for family in self._families.values():
            out.update(family.samples())
        return out

    def reset(self) -> None:
        """Zero every instrument (registrations and collectors survive)."""
        for family in self._families.values():
            family.reset()

    def names(self) -> List[str]:
        return sorted(self._families)

    def render_text(self) -> str:
        """The registry in Prometheus text exposition format.

        Runs collectors (like :meth:`collect`), then emits one
        ``# HELP``/``# TYPE`` header pair per family followed by its
        samples. ``GET /metrics`` on the serve daemon returns exactly
        this string.
        """
        if not self.enabled:
            return ""
        for collector in self._collectors:
            collector(self)
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, value in family.text_samples():
                lines.append(f"{key} {_format_value(value)}")
        return "\n".join(lines) + "\n" if lines else ""
