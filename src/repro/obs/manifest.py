"""Run manifests: every grid execution becomes an inspectable artifact.

``run_points`` writes ``<runs_dir>/<run_id>/manifest.json`` describing
the run end to end: the full configuration of every point (the system
``repr`` and workload cache key — the same identity the point cache
fingerprints), seeds, request counts, cache-hit provenance, per-point
and total wall/sim time, the code hash (reusing the pointcache salt, so
a manifest pins the exact source state), and host info. Timeline JSONL
files for points simulated with ``REPRO_EPOCH`` live next to the
manifest and are referenced by relative path.

Environment knobs:

* ``REPRO_RUNS_DIR`` — root for run directories (default
  ``results/runs``);
* ``REPRO_NO_MANIFEST=1`` — disable manifest writing entirely.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import tempfile
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError

MANIFEST_SCHEMA_VERSION = 2
#: schema versions :meth:`RunManifest.from_dict` still accepts (v1
#: manifests predate fault tolerance and default to ``status: done``).
COMPATIBLE_SCHEMAS = (1, 2)
DEFAULT_RUNS_DIR = Path("results") / "runs"

#: run-level outcomes (schema v2). ``partial`` means the run stopped at
#: a point boundary with work remaining (daemon drain).
MANIFEST_STATUSES = ("done", "partial", "failed", "cancelled")
#: per-point outcomes: ``skipped`` points never got a completed attempt
#: before the run ended.
POINT_STATUSES = ("done", "failed", "skipped")

#: REPRO_* knobs recorded in every manifest for reproducibility.
_ENV_KEYS = (
    "REPRO_SCALE",
    "REPRO_MEASURE",
    "REPRO_WORKERS",
    "REPRO_EPOCH",
    "REPRO_LOG",
    "REPRO_LOG_LEVEL",
    "REPRO_NO_CACHE",
    "REPRO_CACHE_DIR",
    "REPRO_CACHE_MAX_MB",
    "REPRO_LOG_FILE",
    "REPRO_PROFILE",
    "REPRO_RUNS_DIR",
    "REPRO_RETRIES",
    "REPRO_RETRY_BACKOFF_S",
    "REPRO_POINT_TIMEOUT_S",
    "REPRO_FAULT_SPEC",
    "REPRO_FAULT_STATE",
    "REPRO_CLUSTER_LEASE_TTL_S",
    "REPRO_CLUSTER_HEARTBEAT_S",
    "REPRO_CLUSTER_BATCH",
    "REPRO_CLUSTER_POLL_S",
    "REPRO_SERVE_TIMEOUT_S",
    "REPRO_ENGINE",
    "REPRO_BATCH_BACKEND",
    "REPRO_NATIVE_DIR",
    "REPRO_SNAPSHOTS",
    "REPRO_SCHED_POLICY",
    "REPRO_SCHED_SHARDS",
    "REPRO_TENANTS",
    "REPRO_SCHED_SPECULATE",
    "REPRO_SCHED_SPEC_PCTL",
    "REPRO_SCHED_SPEC_FACTOR",
    "REPRO_SCHED_SPEC_MIN_S",
)


def manifests_enabled() -> bool:
    return os.environ.get("REPRO_NO_MANIFEST", "") != "1"


def runs_dir() -> Path:
    env = os.environ.get("REPRO_RUNS_DIR")
    return Path(env) if env else DEFAULT_RUNS_DIR


def new_run_id(run_label: Optional[str] = None) -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S")
    suffix = uuid.uuid4().hex[:6]
    prefix = f"{_slug(run_label)}-" if run_label else ""
    return f"{prefix}{stamp}-{suffix}"


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in text)


def host_info() -> Dict[str, Any]:
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


@dataclass
class PointRecord:
    """Provenance of one grid point inside a run."""

    label: str
    fingerprint: str
    system: str  # repr of the frozen SystemConfig tree (full config)
    workload: str  # the workload's cache_key
    policy: str
    sweeper: bool
    nic_tx_sweep: bool
    queued_depth: int
    seed: int
    warmup_requests: Optional[int]
    measure_requests: Optional[int]
    from_cache: bool = False
    sim_seconds: float = 0.0
    timeline_file: Optional[str] = None
    #: manifest-relative path of the probe JSONL for observer points
    #: freshly simulated in this run (None otherwise). Defaulted, like
    #: ``observer``/``probe_seed``/``burst``, so pre-observer manifests
    #: still load.
    probe_file: Optional[str] = None
    #: ``repr`` of the point's ObserverConfig (None = no observer).
    observer: Optional[str] = None
    #: the observer's probe seed, surfaced for at-a-glance provenance.
    probe_seed: Optional[int] = None
    #: ``repr`` of the point's BurstProfile (None = constant load).
    burst: Optional[str] = None
    status: str = "done"  # done | failed | skipped
    error: Optional[str] = None  # last error when status == "failed"
    attempts: int = 1  # how many times the point was tried
    #: cluster worker that simulated the point (None = local / cached).
    worker_id: Optional[str] = None
    #: hash of the config prefix up to end-of-warmup (DESIGN.md §14);
    #: None for observer points, which opt out of warm-state sharing.
    warmup_fingerprint: Optional[str] = None
    #: True when the measured window was forked off a restored
    #: warm-state snapshot instead of a simulated warmup. Defaulted so
    #: pre-snapshot manifests still load.
    warm_restored: bool = False


@dataclass
class RunManifest:
    """One ``run_points`` execution, serialized to ``manifest.json``."""

    run_id: str
    schema: int = MANIFEST_SCHEMA_VERSION
    run_label: Optional[str] = None
    created_unix: float = 0.0
    code_salt: str = ""
    workers: int = 1
    host: Dict[str, Any] = field(default_factory=dict)
    env: Dict[str, str] = field(default_factory=dict)
    wall_seconds: float = 0.0
    sim_seconds_total: float = 0.0
    status: str = "done"  # done | partial | failed | cancelled
    #: trace engine the run was simulated with (``REPRO_ENGINE``); the
    #: engines are bit-identical, so this is provenance, not identity.
    engine: str = "object"
    #: tenant whose submission produced this run (DESIGN.md §15).
    #: Defaulted so pre-tenancy manifests still load.
    tenant: str = "default"
    points: List[PointRecord] = field(default_factory=list)

    @classmethod
    def create(
        cls, run_label: Optional[str] = None, workers: int = 1
    ) -> "RunManifest":
        # deferred import: repro.engine.batch pulls numpy and the cache
        # layer in, which the obs package otherwise never needs
        from repro.engine.batch import engine_from_env

        return cls(
            run_id=new_run_id(run_label),
            run_label=run_label,
            created_unix=time.time(),
            workers=workers,
            host=host_info(),
            env={k: os.environ[k] for k in _ENV_KEYS if k in os.environ},
            engine=engine_from_env(),
        )

    @property
    def cached_points(self) -> int:
        return sum(1 for p in self.points if p.from_cache)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def write(self, path: Path) -> None:
        """Atomic JSON write (temp file + rename), like the point cache."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(payload + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        if not isinstance(data, dict):
            raise ConfigError("manifest must be a JSON object")
        if data.get("schema") not in COMPATIBLE_SCHEMAS:
            raise ConfigError(
                f"manifest schema {data.get('schema')!r} not in "
                f"{COMPATIBLE_SCHEMAS}"
            )
        raw_points = data.get("points", [])
        if not isinstance(raw_points, list):
            raise ConfigError("manifest 'points' must be a list")
        points = [PointRecord(**p) for p in raw_points]
        fields = {k: v for k, v in data.items() if k != "points"}
        try:
            return cls(points=points, **fields)
        except TypeError as exc:
            raise ConfigError(f"malformed manifest: {exc}")

    @classmethod
    def load(cls, path: Path) -> "RunManifest":
        try:
            with Path(path).open("r", encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read manifest {path}: {exc}")
        return cls.from_dict(data)


def validate_manifest(manifest: RunManifest, where: str = "manifest") -> None:
    """Structural checks beyond what parsing already guarantees."""
    if not manifest.run_id:
        raise ConfigError(f"{where}: empty run_id")
    if not manifest.code_salt:
        raise ConfigError(f"{where}: missing code_salt")
    if manifest.status not in MANIFEST_STATUSES:
        raise ConfigError(
            f"{where}: status {manifest.status!r} not in {MANIFEST_STATUSES}"
        )
    labels = [p.label for p in manifest.points]
    if len(labels) != len(set(labels)):
        raise ConfigError(f"{where}: duplicate point labels")
    for p in manifest.points:
        if not p.fingerprint:
            raise ConfigError(f"{where}: point {p.label!r} missing fingerprint")
        if p.sim_seconds < 0:
            raise ConfigError(f"{where}: point {p.label!r} negative sim time")
        if p.status not in POINT_STATUSES:
            raise ConfigError(
                f"{where}: point {p.label!r} status {p.status!r} not in "
                f"{POINT_STATUSES}"
            )
        if p.status == "failed" and not p.error:
            raise ConfigError(
                f"{where}: failed point {p.label!r} missing error record"
            )
        if p.attempts < 1:
            raise ConfigError(
                f"{where}: point {p.label!r} attempts must be >= 1"
            )
    if manifest.status == "done" and any(
        p.status != "done" for p in manifest.points
    ):
        raise ConfigError(
            f"{where}: status 'done' but not every point is done"
        )
