"""Structured event log with levels, text/JSON rendering, atomic lines.

The experiment engine emits per-point lifecycle events (start, finish,
cached, progress/ETA), fault-tolerance events (``point.retry`` /
``point.failed`` on recovery, ``pool.rebuild`` /
``serve.pool.rebuild`` after an executor collapse, ``serve.draining``
on SIGTERM), and diagnostic blocks (cProfile output) through one logger
so that parallel workers cannot interleave partial lines: every event
is rendered to a single string — newline included — and written with
one ``write()`` call.

Environment contract (documented in README):

* ``REPRO_LOG`` — ``text`` or ``json``. Unset disables the log entirely
  (the seed repo printed nothing, and the test suites rely on quiet
  runs); ``off`` is an explicit synonym for unset.
* ``REPRO_LOG_LEVEL`` — ``debug``/``info``/``warning``/``error``
  (default ``info``).
* ``REPRO_LOG_FILE`` — append event lines to this file instead of
  stderr (the ``repro.serve`` daemon uses it for durable event
  history). Setting it also enables the log in ``text`` mode when
  ``REPRO_LOG`` is unset (an explicit ``REPRO_LOG=off`` still wins).
  The file is opened with ``O_APPEND`` and each event is flushed as one
  contiguous chunk, preserving the no-interleave guarantee across
  worker processes appending to the same file.

Forced events (``force=True``) bypass the disabled state but still
honour the rendering mode — this is how ``REPRO_PROFILE`` output keeps
appearing for users who never opted into the event log.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Optional, TextIO

from repro.errors import ConfigError

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class EventLog:
    """Renders events as single atomic lines on a stream (stderr)."""

    def __init__(
        self,
        mode: Optional[str] = "text",
        level: str = "info",
        stream: Optional[TextIO] = None,
    ) -> None:
        if mode not in (None, "text", "json"):
            raise ConfigError(f"REPRO_LOG must be 'text' or 'json', got {mode!r}")
        if level not in LEVELS:
            raise ConfigError(
                f"REPRO_LOG_LEVEL must be one of {sorted(LEVELS)}, got {level!r}"
            )
        self.mode = mode  # None = disabled
        self.level = level
        self.stream = stream if stream is not None else sys.stderr
        self._t0 = time.perf_counter()
        #: set when from_env opened a REPRO_LOG_FILE stream for us
        self._owns_stream = False

    def close(self) -> None:
        """Close a stream this log opened itself (REPRO_LOG_FILE)."""
        if self._owns_stream:
            try:
                self.stream.close()
            except OSError:
                pass

    @property
    def enabled(self) -> bool:
        return self.mode is not None

    def would_emit(self, level: str) -> bool:
        return self.enabled and LEVELS[level] >= LEVELS[self.level]

    # -- core -----------------------------------------------------------

    def emit(
        self,
        event: str,
        level: str = "info",
        force: bool = False,
        **fields: Any,
    ) -> None:
        """Emit one event as one atomic line.

        ``fields`` become JSON keys / ``key=value`` pairs. A ``text``
        field is treated as a multi-line payload: in text mode every
        line is prefixed with the event tag so the block stays
        attributable even if another worker writes between *events*
        (never between lines of one event — it is a single write).
        """
        if level not in LEVELS:
            raise ConfigError(f"unknown log level {level!r}")
        if not force and not self.would_emit(level):
            return
        mode = self.mode or "text"  # forced events on a disabled log
        elapsed = time.perf_counter() - self._t0
        if mode == "json":
            record: Dict[str, Any] = {
                "ts": round(elapsed, 6),
                "level": level,
                "event": event,
            }
            record.update(fields)
            line = json.dumps(record, default=str) + "\n"
        else:
            text_block = fields.pop("text", None)
            pairs = " ".join(f"{k}={_fmt(v)}" for k, v in fields.items())
            head = f"[repro +{elapsed:8.2f}s] {event}"
            if pairs:
                head = f"{head} {pairs}"
            if text_block is not None:
                tag = fields.get("label", event)
                body = "".join(
                    f"[{tag}] {ln}\n" for ln in str(text_block).splitlines()
                )
                line = head + "\n" + body
            else:
                line = head + "\n"
        try:
            self.stream.write(line)
            self.stream.flush()
        except (OSError, ValueError):  # closed stream mid-teardown
            pass

    # -- conveniences ---------------------------------------------------

    def debug(self, event: str, **fields: Any) -> None:
        self.emit(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.emit(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.emit(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.emit(event, level="error", **fields)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    text = str(value)
    return f'"{text}"' if " " in text else text


def from_env(stream: Optional[TextIO] = None) -> EventLog:
    """Build an :class:`EventLog` from the ``REPRO_LOG*`` knobs."""
    raw = os.environ.get("REPRO_LOG", "").strip().lower()
    log_file = os.environ.get("REPRO_LOG_FILE", "").strip()
    mode: Optional[str]
    if raw in ("", "off", "0", "none"):
        # A log file without an explicit mode means "log, as text":
        # daemons set only REPRO_LOG_FILE and still get durable history.
        mode = "text" if (log_file and raw == "") else None
    elif raw in ("text", "json"):
        mode = raw
    else:
        raise ConfigError(f"REPRO_LOG must be 'text' or 'json', got {raw!r}")
    level = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
    if stream is None and log_file:
        try:
            stream = open(log_file, "a", encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot open REPRO_LOG_FILE {log_file!r}: {exc}")
        log = EventLog(mode=mode, level=level, stream=stream)
        log._owns_stream = True
        return log
    return EventLog(mode=mode, level=level, stream=stream)


_log: Optional[EventLog] = None
_log_env: Optional[tuple] = None


def get_event_log() -> EventLog:
    """Process-wide logger, rebuilt if the env knobs changed (tests)."""
    global _log, _log_env
    env = (
        os.environ.get("REPRO_LOG"),
        os.environ.get("REPRO_LOG_LEVEL"),
        os.environ.get("REPRO_LOG_FILE"),
    )
    if _log is None or env != _log_env:
        if _log is not None:
            _log.close()
        _log = from_env()
        _log_env = env
    return _log
