"""Validate run artifacts: ``python -m repro.obs.validate <runs_root>``.

Walks every ``manifest.json`` under the given root, checks manifest
schema and structure, and verifies each referenced timeline JSONL parses
and satisfies the epoch-record schema, plus every referenced probe JSONL
against the prime+probe record schema (:mod:`repro.obs.probes`). CI runs
this against ``results/runs`` after the observability smoke run;
``--require-timeline`` additionally fails if no timeline was produced at
all (catching a smoke job that silently ran without ``REPRO_EPOCH``),
and ``--require-probes`` does the same for probe timelines (catching a
figS smoke job whose observer never fired).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Tuple

from repro.errors import ConfigError
from repro.obs.manifest import RunManifest, validate_manifest
from repro.obs.probes import validate_probe_timeline
from repro.obs.timeline import load_jsonl, validate_timeline


def validate_run_dir(run_dir: Path) -> Tuple[int, int]:
    """Validate one run directory; returns (timelines, probe files)."""
    manifest = RunManifest.load(run_dir / "manifest.json")
    validate_manifest(manifest, where=str(run_dir))
    timelines = 0
    probes = 0
    for point in manifest.points:
        if point.timeline_file is not None:
            path = run_dir / point.timeline_file
            if not path.is_file():
                raise ConfigError(
                    f"{run_dir}: point {point.label!r} references missing "
                    f"timeline {point.timeline_file}"
                )
            validate_timeline(
                load_jsonl(path), where=f"{run_dir}/{point.timeline_file}"
            )
            timelines += 1
        if point.probe_file is not None:
            if point.observer is None:
                raise ConfigError(
                    f"{run_dir}: point {point.label!r} has a probe file "
                    "but no observer config"
                )
            path = run_dir / point.probe_file
            if not path.is_file():
                raise ConfigError(
                    f"{run_dir}: point {point.label!r} references missing "
                    f"probe file {point.probe_file}"
                )
            validate_probe_timeline(
                load_jsonl(path), where=f"{run_dir}/{point.probe_file}"
            )
            probes += 1
    return timelines, probes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate run manifests, epoch timelines, and "
        "prime+probe timelines.",
    )
    parser.add_argument(
        "runs_root", type=Path, help="directory containing run directories"
    )
    parser.add_argument(
        "--require-timeline",
        action="store_true",
        help="fail unless at least one valid timeline exists",
    )
    parser.add_argument(
        "--require-probes",
        action="store_true",
        help="fail unless at least one valid probe timeline exists",
    )
    args = parser.parse_args(argv)
    manifests = sorted(args.runs_root.glob("**/manifest.json"))
    if not manifests:
        print(f"no manifests under {args.runs_root}", file=sys.stderr)
        return 1
    # Orphan detection: every direct child of the runs root must hold a
    # manifest somewhere beneath it. A run directory with timelines but
    # no manifest.json means some exit path skipped finalization — the
    # exact leak the fault-tolerance layer exists to prevent.
    failed = 0
    for child in sorted(args.runs_root.iterdir()):
        if child.is_dir() and not any(child.glob("**/manifest.json")):
            print(
                f"INVALID {child}: run directory without a manifest.json "
                "(orphaned run)",
                file=sys.stderr,
            )
            failed += 1
    if failed:
        return 1
    total_timelines = 0
    total_probes = 0
    for manifest_path in manifests:
        try:
            timelines, probes = validate_run_dir(manifest_path.parent)
        except ConfigError as exc:
            print(f"INVALID {manifest_path.parent}: {exc}", file=sys.stderr)
            return 1
        total_timelines += timelines
        total_probes += probes
        manifest = RunManifest.load(manifest_path)
        print(
            f"ok {manifest_path.parent} "
            f"(status={manifest.status}, {timelines} timelines, "
            f"{probes} probe files)"
        )
    if args.require_timeline and total_timelines == 0:
        print("no timelines found (REPRO_EPOCH unset?)", file=sys.stderr)
        return 1
    if args.require_probes and total_probes == 0:
        print(
            "no probe timelines found (no observer points ran?)",
            file=sys.stderr,
        )
        return 1
    print(
        f"validated {len(manifests)} runs, {total_timelines} timelines, "
        f"{total_probes} probe files"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
