"""Probe timeline channel: schema for prime+probe observer records.

The side-channel observer (:mod:`repro.sidechannel`) emits one JSON
record per probe round; ``run_spec`` persists them as a JSONL file under
``<run_dir>/probes/`` referenced by the manifest's ``probe_file`` (the
exact pattern the epoch timeline channel uses for ``timeline_file``).
This module owns the record schema and its validators so
``python -m repro.obs.validate`` can check probe artifacts without
importing the simulator.

Record schema (one JSON object per line)::

    {"schema": 1, "probe": 4, "request": 193, "interval": 41,
     "arrivals": 41, "hits": 61, "misses": 3,
     "set_misses": {"17": 2, "40": 1}}

* ``probe`` — 0-based probe index, strictly sequential;
* ``request`` — absolute request index the probe ran before, strictly
  increasing (what makes epoch-chunked runs bit-identical);
* ``interval`` — requests since the previous probe (or activation);
* ``arrivals`` — ground-truth packets posted to the RX rings during the
  interval (the victim signal the attacker tries to infer);
* ``hits`` / ``misses`` — the probe's hit/miss vector summed over the
  primed lines; a miss is an observed eviction of an attacker line;
* ``set_misses`` — per-set eviction counts (only non-zero sets), keys
  are decimal set indices (JSON object keys must be strings).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.errors import ConfigError

PROBE_SCHEMA_VERSION = 1

_INT_FIELDS = ("probe", "request", "interval", "arrivals", "hits", "misses")


def validate_probe_record(
    record: Dict[str, Any], where: str = "probes"
) -> None:
    """Raise :class:`ConfigError` if one probe record violates the schema."""
    if not isinstance(record, dict):
        raise ConfigError(f"{where}: record is not an object")
    if record.get("schema") != PROBE_SCHEMA_VERSION:
        raise ConfigError(
            f"{where}: schema {record.get('schema')!r} != "
            f"{PROBE_SCHEMA_VERSION}"
        )
    for field in _INT_FIELDS:
        value = record.get(field)
        if not isinstance(value, int) or isinstance(value, bool):
            raise ConfigError(f"{where}: field {field!r} must be an int")
        if field != "request" and value < 0:
            raise ConfigError(f"{where}: field {field!r} must be >= 0")
    set_misses = record.get("set_misses")
    if not isinstance(set_misses, dict):
        raise ConfigError(f"{where}: field 'set_misses' must be an object")
    total = 0
    for key, value in set_misses.items():
        if not isinstance(key, str) or not key.isdigit():
            raise ConfigError(
                f"{where}: set_misses key {key!r} must be a decimal "
                "set index"
            )
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(
                f"{where}: set_misses[{key!r}] must be a positive int"
            )
        total += value
    if total != record["misses"]:
        raise ConfigError(
            f"{where}: set_misses sum {total} != misses {record['misses']}"
        )


def validate_probe_timeline(
    records: List[Dict[str, Any]], where: str = "probes"
) -> None:
    """Validate a whole probe JSONL: per-record schema plus ordering."""
    if not records:
        raise ConfigError(f"{where}: empty probe timeline")
    last_request = None
    for i, record in enumerate(records):
        validate_probe_record(record, where=f"{where}[{i}]")
        if record["probe"] != i:
            raise ConfigError(
                f"{where}[{i}]: probe index {record['probe']} != {i}"
            )
        if last_request is not None and record["request"] <= last_request:
            raise ConfigError(
                f"{where}[{i}]: request {record['request']} not strictly "
                f"after {last_request}"
            )
        last_request = record["request"]
