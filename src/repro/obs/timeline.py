"""Epoch timeline sampling: metric snapshots every N serviced requests.

End-of-run aggregates hide *when* leakage happens — consumed-buffer
evictions ramping as the DDIO ways overflow, premature evictions
appearing once the backlog deepens. The epoch sampler snapshots every
registry metric each ``REPRO_EPOCH`` serviced requests during the
measure phase, producing a JSONL time series per simulated point.

Record schema (one JSON object per line)::

    {"schema": 1, "epoch": 3, "requests": 1024,
     "metrics": {"cache_events_total{cache=\"LLC\",event=\"evictions_dirty\"}": 512.0, ...},
     "deltas":  {... same keys, value minus previous epoch ...}}

``deltas`` of counter samples sum *exactly* to the end-of-run aggregate
(the final, possibly short, epoch is always sampled), which is the
consistency contract ``tests/test_observability.py`` enforces against
``TraceResult.cache_totals``. Gauges appear in ``metrics`` with their
instantaneous value; their deltas are carried too but are only
meaningful for monotonic samples.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry

TIMELINE_SCHEMA_VERSION = 1


def epoch_from_env() -> Optional[int]:
    """Epoch length from ``REPRO_EPOCH`` (requests per sample), or None."""
    raw = os.environ.get("REPRO_EPOCH", "").strip()
    if not raw:
        return None
    try:
        epoch = int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_EPOCH must be an integer, got {raw!r}")
    if epoch < 1:
        raise ConfigError("REPRO_EPOCH must be >= 1")
    return epoch


class EpochSampler:
    """Collects registry snapshots and their per-epoch deltas."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.records: List[Dict[str, Any]] = []
        self._previous: Dict[str, float] = {}

    def baseline(self) -> None:
        """Snapshot the post-warmup state deltas are computed against."""
        self._previous = self.registry.collect()
        self.records = []

    def sample(self, requests: int) -> Dict[str, Any]:
        """Record one epoch at ``requests`` cumulative serviced requests."""
        metrics = self.registry.collect()
        deltas = {
            key: value - self._previous.get(key, 0.0)
            for key, value in metrics.items()
        }
        record = {
            "schema": TIMELINE_SCHEMA_VERSION,
            "epoch": len(self.records),
            "requests": requests,
            "metrics": metrics,
            "deltas": deltas,
        }
        self.records.append(record)
        self._previous = metrics
        return record

    def summed_deltas(self, key: str) -> float:
        return sum(r["deltas"].get(key, 0.0) for r in self.records)


class ObsContext:
    """Per-simulation observability bundle handed to the trace engine.

    ``None`` (the default everywhere) means fully disabled: the
    simulator takes its unchanged hot path. A context with
    ``epoch_requests`` set makes the measure loop run in epoch-sized
    chunks and sample the registry between chunks.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        epoch_requests: Optional[int] = None,
    ) -> None:
        if epoch_requests is not None and epoch_requests < 1:
            raise ConfigError("epoch_requests must be >= 1")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.epoch_requests = epoch_requests
        self.sampler = EpochSampler(self.registry)

    @classmethod
    def from_env(cls) -> Optional["ObsContext"]:
        """Context when ``REPRO_EPOCH`` is set, else None (disabled)."""
        epoch = epoch_from_env()
        if epoch is None:
            return None
        return cls(epoch_requests=epoch)

    @property
    def timeline(self) -> List[Dict[str, Any]]:
        return self.sampler.records


# ----------------------------------------------------------------------
# JSONL persistence and schema validation
# ----------------------------------------------------------------------


def write_jsonl(path: Path, records: Iterable[Dict[str, Any]]) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as f:
        for record in records:
            f.write(json.dumps(record) + "\n")


def load_jsonl(path: Path) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ConfigError(f"{path}:{line_no}: invalid JSON: {exc}")
    return records


def validate_record(record: Dict[str, Any], where: str = "timeline") -> None:
    """Raise :class:`ConfigError` if one epoch record violates the schema."""
    if not isinstance(record, dict):
        raise ConfigError(f"{where}: record is not an object")
    if record.get("schema") != TIMELINE_SCHEMA_VERSION:
        raise ConfigError(
            f"{where}: schema {record.get('schema')!r} != {TIMELINE_SCHEMA_VERSION}"
        )
    for field, kind in (("epoch", int), ("requests", int)):
        if not isinstance(record.get(field), kind):
            raise ConfigError(f"{where}: field {field!r} must be {kind.__name__}")
    for field in ("metrics", "deltas"):
        mapping = record.get(field)
        if not isinstance(mapping, dict):
            raise ConfigError(f"{where}: field {field!r} must be an object")
        for key, value in mapping.items():
            if not isinstance(key, str) or not isinstance(value, (int, float)):
                raise ConfigError(
                    f"{where}: {field}[{key!r}] must map str -> number"
                )


def validate_timeline(records: List[Dict[str, Any]], where: str = "timeline") -> None:
    if not records:
        raise ConfigError(f"{where}: empty timeline")
    for i, record in enumerate(records):
        validate_record(record, where=f"{where}[{i}]")
        if record["epoch"] != i:
            raise ConfigError(f"{where}[{i}]: epoch index {record['epoch']} != {i}")
