"""Plain-text summaries of epoch timelines and run directories.

The epoch sampler (:mod:`repro.obs.timeline`) answers *when* leakage
happens inside a measure phase; this module turns those JSONL series
into the short human-readable digests the CLI prints after
``--emit-timeline`` runs: dirty-eviction totals and onset epoch, sweep
activity, per-level hit-rate drift, and DDIO occupancy range.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs.manifest import RunManifest
from repro.obs.timeline import load_jsonl, validate_timeline


def _sum_deltas(records: List[Dict[str, Any]], name: str, **label_filters: str) -> float:
    """Sum per-epoch deltas of all samples of ``name`` matching labels."""
    total = 0.0
    for record in records:
        for key, value in record["deltas"].items():
            if not key.startswith(name):
                continue
            if all(f'{k}="{v}"' in key for k, v in label_filters.items()):
                total += value
    return total


def _epoch_series(
    records: List[Dict[str, Any]], name: str, field: str = "deltas", **label_filters: str
) -> List[float]:
    """Per-epoch value of ``name`` (samples summed within each epoch)."""
    series = []
    for record in records:
        total = 0.0
        for key, value in record[field].items():
            if key.startswith(name) and all(
                f'{k}="{v}"' in key for k, v in label_filters.items()
            ):
                total += value
        series.append(total)
    return series


def _onset_epoch(series: List[float]) -> Optional[int]:
    """First epoch with nonzero activity, or None if the series is flat."""
    for i, value in enumerate(series):
        if value > 0:
            return i
    return None


def summarize_timeline(records: List[Dict[str, Any]], label: str = "point") -> str:
    """One short digest of a point's epoch timeline."""
    validate_timeline(records, where=label)
    lines = [f"timeline {label}: {len(records)} epochs, "
             f"{records[-1]['requests']} measured requests"]

    dirty = _epoch_series(records, "cache_events_total", event="evictions_dirty")
    onset = _onset_epoch(dirty)
    lines.append(
        f"  dirty evictions: {sum(dirty):.0f} total, "
        + (f"onset at epoch {onset}, peak {max(dirty):.0f}/epoch"
           if onset is not None else "none (no leakage observed)")
    )

    swept = _sum_deltas(records, "sweeper_events_total", event="lines_dropped")
    nic_swept = _sum_deltas(records, "nic_sweeps_total")
    if swept or nic_swept:
        lines.append(
            f"  sweeps: {swept:.0f} lines dropped by clsweep, "
            f"{nic_swept:.0f} by NIC TX sweeps"
        )

    llc_rate = _epoch_series(records, "cache_hit_rate", field="metrics", cache="LLC")
    if llc_rate:
        lines.append(
            f"  LLC hit rate: {llc_rate[0]:.3f} -> {llc_rate[-1]:.3f} (cumulative)"
        )

    ddio = _epoch_series(
        records, "llc_ddio_occupancy_blocks", field="metrics"
    )
    if any(ddio):
        lines.append(
            f"  DDIO-way occupancy: min {min(ddio):.0f}, max {max(ddio):.0f}, "
            f"final {ddio[-1]:.0f} blocks"
        )
    return "\n".join(lines)


def summarize_run(run_dir: Path) -> str:
    """Digest of a whole run directory (manifest + every timeline)."""
    run_dir = Path(run_dir)
    manifest = RunManifest.load(run_dir / "manifest.json")
    lines = [
        f"run {manifest.run_id}: {len(manifest.points)} points "
        f"({manifest.cached_points} cached), wall {manifest.wall_seconds:.1f}s, "
        f"sim {manifest.sim_seconds_total:.1f}s, workers {manifest.workers}"
    ]
    with_timeline = [p for p in manifest.points if p.timeline_file]
    if not with_timeline:
        lines.append(
            "  no timelines (all points cached, or REPRO_EPOCH was unset)"
        )
        return "\n".join(lines)
    for point in with_timeline:
        path = run_dir / point.timeline_file
        try:
            records = load_jsonl(path)
            lines.append(summarize_timeline(records, label=point.label))
        except (ConfigError, OSError) as exc:
            lines.append(f"timeline {point.label}: unreadable ({exc})")
    return "\n".join(lines)
