"""Plain-text summaries of epoch timelines and run directories.

The epoch sampler (:mod:`repro.obs.timeline`) answers *when* leakage
happens inside a measure phase; this module turns those JSONL series
into the short human-readable digests the CLI prints after
``--emit-timeline`` runs: dirty-eviction totals and onset epoch, sweep
activity, per-level hit-rate drift, and DDIO occupancy range.

It is also a small CLI::

    python -m repro.report.timeline --list            # one line per run
    python -m repro.report.timeline results/runs/<id> # full run digest
    python -m repro.report.timeline --list \
        --coordinator http://127.0.0.1:8337           # + cluster fleet

``--coordinator`` appends the daemon's ``GET /workers`` listing (worker
state, leases, points done) to the output, so one command surveys both
the run history on disk and the live fleet.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError
from repro.obs import manifest as obs_manifest
from repro.obs.manifest import RunManifest
from repro.obs.timeline import load_jsonl, validate_timeline


def _sum_deltas(records: List[Dict[str, Any]], name: str, **label_filters: str) -> float:
    """Sum per-epoch deltas of all samples of ``name`` matching labels."""
    total = 0.0
    for record in records:
        for key, value in record["deltas"].items():
            if not key.startswith(name):
                continue
            if all(f'{k}="{v}"' in key for k, v in label_filters.items()):
                total += value
    return total


def _epoch_series(
    records: List[Dict[str, Any]], name: str, field: str = "deltas", **label_filters: str
) -> List[float]:
    """Per-epoch value of ``name`` (samples summed within each epoch)."""
    series = []
    for record in records:
        total = 0.0
        for key, value in record[field].items():
            if key.startswith(name) and all(
                f'{k}="{v}"' in key for k, v in label_filters.items()
            ):
                total += value
        series.append(total)
    return series


def _onset_epoch(series: List[float]) -> Optional[int]:
    """First epoch with nonzero activity, or None if the series is flat."""
    for i, value in enumerate(series):
        if value > 0:
            return i
    return None


def summarize_timeline(records: List[Dict[str, Any]], label: str = "point") -> str:
    """One short digest of a point's epoch timeline."""
    validate_timeline(records, where=label)
    lines = [f"timeline {label}: {len(records)} epochs, "
             f"{records[-1]['requests']} measured requests"]

    dirty = _epoch_series(records, "cache_events_total", event="evictions_dirty")
    onset = _onset_epoch(dirty)
    lines.append(
        f"  dirty evictions: {sum(dirty):.0f} total, "
        + (f"onset at epoch {onset}, peak {max(dirty):.0f}/epoch"
           if onset is not None else "none (no leakage observed)")
    )

    swept = _sum_deltas(records, "sweeper_events_total", event="lines_dropped")
    nic_swept = _sum_deltas(records, "nic_sweeps_total")
    if swept or nic_swept:
        lines.append(
            f"  sweeps: {swept:.0f} lines dropped by clsweep, "
            f"{nic_swept:.0f} by NIC TX sweeps"
        )

    llc_rate = _epoch_series(records, "cache_hit_rate", field="metrics", cache="LLC")
    if llc_rate:
        lines.append(
            f"  LLC hit rate: {llc_rate[0]:.3f} -> {llc_rate[-1]:.3f} (cumulative)"
        )

    ddio = _epoch_series(
        records, "llc_ddio_occupancy_blocks", field="metrics"
    )
    if any(ddio):
        lines.append(
            f"  DDIO-way occupancy: min {min(ddio):.0f}, max {max(ddio):.0f}, "
            f"final {ddio[-1]:.0f} blocks"
        )
    return "\n".join(lines)


def summarize_run(run_dir: Path) -> str:
    """Digest of a whole run directory (manifest + every timeline)."""
    run_dir = Path(run_dir)
    manifest = RunManifest.load(run_dir / "manifest.json")
    lines = [
        f"run {manifest.run_id}: {len(manifest.points)} points "
        f"({manifest.cached_points} cached), wall {manifest.wall_seconds:.1f}s, "
        f"sim {manifest.sim_seconds_total:.1f}s, workers {manifest.workers}"
    ]
    with_timeline = [p for p in manifest.points if p.timeline_file]
    if not with_timeline:
        lines.append(
            "  no timelines (all points cached, or REPRO_EPOCH was unset)"
        )
        return "\n".join(lines)
    for point in with_timeline:
        path = run_dir / point.timeline_file
        try:
            records = load_jsonl(path)
            lines.append(summarize_timeline(records, label=point.label))
        except (ConfigError, OSError) as exc:
            lines.append(f"timeline {point.label}: unreadable ({exc})")
    return "\n".join(lines)


def list_runs(root: Path) -> str:
    """One line per run directory under ``root``, newest last."""
    root = Path(root)
    if not root.is_dir():
        return f"no runs under {root}"
    lines: List[str] = []
    for run_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        manifest_path = run_dir / "manifest.json"
        try:
            manifest = RunManifest.load(manifest_path)
        except ConfigError as exc:
            lines.append(f"{run_dir.name}: unreadable manifest ({exc})")
            continue
        retried = sum(1 for p in manifest.points if p.attempts > 1)
        remote = sum(1 for p in manifest.points if p.worker_id)
        extras = []
        # Scenario-born runs (local "scenario:<name>" or served
        # "serve-scenario:<name>" run labels) get their scenario name
        # and policy mix called out, so the DSL's runs are findable.
        label = manifest.run_label or ""
        if "scenario:" in label:
            scenario = label.split("scenario:", 1)[1]
            extras.append(f"scenario={scenario}")
            policies = sorted({p.policy for p in manifest.points})
            if policies:
                extras.append("policies=" + "/".join(policies))
        if manifest.engine != "object":
            extras.append(f"engine={manifest.engine}")
        if getattr(manifest, "tenant", "default") != "default":
            extras.append(f"tenant={manifest.tenant}")
        if retried:
            extras.append(f"{retried} retried")
        if remote:
            extras.append(f"{remote} remote")
        suffix = f" ({', '.join(extras)})" if extras else ""
        lines.append(
            f"{manifest.run_id}: {manifest.status}, "
            f"{len(manifest.points)} points "
            f"({manifest.cached_points} cached), "
            f"wall {manifest.wall_seconds:.1f}s{suffix}"
        )
    return "\n".join(lines) if lines else f"no runs under {root}"


def summarize_workers(base_url: str) -> str:
    """Digest of a cluster coordinator's ``GET /workers`` listing."""
    from repro.cluster.worker import ClusterClient

    client = ClusterClient(base_url)
    listing = client._request("GET", "/workers")
    workers = listing.get("workers", [])
    lines = [
        f"cluster at {base_url}: backend={listing.get('backend', '?')}, "
        f"{len(workers)} workers, "
        f"{listing.get('pending_points', 0)} pending points, "
        f"{listing.get('active_leases', 0)} active leases"
        + (" (draining)" if listing.get("draining") else "")
    ]
    for worker in workers:
        name = worker.get("name") or "-"
        lines.append(
            f"  {worker['worker_id']} [{worker['state']}] name={name} "
            f"host={worker.get('host', '?')} pid={worker.get('pid', 0)} "
            f"capacity={worker.get('capacity', 1)} "
            f"done={worker.get('points_done', 0)} "
            f"failed={worker.get('points_failed', 0)} "
            f"leases={worker.get('leases_active', 0)} "
            f"seen={worker.get('seen_ago_s', 0.0):.1f}s ago"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report.timeline",
        description="Summarize run directories, epoch timelines, and "
        "(optionally) a cluster coordinator's worker fleet.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="run directories (containing manifest.json) or timeline "
        "JSONL files to digest",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="one line per run under the runs directory",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        help="runs root for --list (default: REPRO_RUNS_DIR or results/runs)",
    )
    parser.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help="also print the /workers fleet listing of this coordinator",
    )
    args = parser.parse_args(argv)
    if not args.list and not args.paths and not args.coordinator:
        parser.error("nothing to do: pass paths, --list, or --coordinator")
    status = 0
    sections: List[str] = []
    if args.list:
        root = Path(args.runs_dir) if args.runs_dir else obs_manifest.runs_dir()
        sections.append(list_runs(root))
    for raw in args.paths:
        path = Path(raw)
        try:
            if path.is_dir():
                sections.append(summarize_run(path))
            else:
                sections.append(
                    summarize_timeline(load_jsonl(path), label=path.stem)
                )
        except (ConfigError, OSError) as exc:
            sections.append(f"{path}: {exc}")
            status = 1
    if args.coordinator:
        try:
            sections.append(summarize_workers(args.coordinator))
        except Exception as exc:  # connection errors, non-cluster daemon
            sections.append(
                f"cluster at {args.coordinator}: unreachable "
                f"({type(exc).__name__}: {exc})"
            )
            status = 1
    print("\n".join(sections))
    return status


if __name__ == "__main__":
    sys.exit(main())
