"""Plain-text rendering of experiment results (paper-style tables)."""

from repro.report.tables import Table, format_breakdown, render_table1

__all__ = ["Table", "format_breakdown", "render_table1"]
