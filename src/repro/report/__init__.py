"""Plain-text rendering of experiment results (paper-style tables)."""

from repro.report.tables import Table, format_breakdown, render_table1
from repro.report.timeline import summarize_run, summarize_timeline

__all__ = [
    "Table",
    "format_breakdown",
    "render_table1",
    "summarize_run",
    "summarize_timeline",
]
