"""ASCII tables for experiment output.

Every benchmark prints the rows/series the corresponding paper figure
reports, via these helpers, so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction log.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.params import SystemConfig
from repro.traffic import MemCategory


class Table:
    """Minimal fixed-width table builder."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        if not columns:
            raise ConfigError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[List[str]] = []

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ConfigError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_breakdown(
    breakdown: Dict[MemCategory, float], threshold: float = 0.005
) -> str:
    """One-line rendering of a per-request memory-access breakdown."""
    parts = [
        f"{cat.label}={value:.2f}"
        for cat, value in breakdown.items()
        if value >= threshold
    ]
    return "  ".join(parts) if parts else "(no memory traffic)"


def render_table1(system: SystemConfig) -> str:
    """Render the simulated system parameters (the paper's Table I)."""
    t = Table(["Component", "Configuration"], title="Table I: simulated system")
    cpu = system.cpu
    t.add_row(
        "CPU",
        f"{cpu.num_cores} x86-64 cores, {cpu.freq_ghz:.1f} GHz, OoO "
        f"(MLP L2/LLC/mem = {cpu.mlp_l2:.0f}/{cpu.mlp_llc:.0f}/{cpu.mlp_mem:.0f})",
    )
    t.add_row(
        "L1 caches",
        f"{system.l1.size_bytes // 1024} KB {system.l1.ways}-way, "
        f"{system.l1.block_bytes} B blocks, {system.l1.latency_cycles}-cycle",
    )
    t.add_row(
        "L2 caches",
        f"{system.l2.size_bytes / 2**20:.2f} MB {system.l2.ways}-way, "
        f"{system.l2.latency_cycles}-cycle",
    )
    t.add_row(
        "LLC",
        f"shared non-inclusive victim, {system.llc.size_bytes / 2**20:.0f} MB "
        f"{system.llc.ways}-way, {system.llc.latency_cycles}-cycle, "
        f"{system.llc.replacement} replacement",
    )
    t.add_row("NoC", f"crossbar, {system.nic.noc_latency_cycles}-cycle latency")
    mem = system.memory
    t.add_row(
        "Memory",
        f"DDR4-3200, {mem.num_channels} channels x {mem.channel_peak_gbps:.1f} GB/s, "
        f"{mem.ranks_per_channel} ranks/channel, {mem.banks_per_rank} banks/rank, "
        f"{mem.efficiency:.0%} random-access efficiency",
    )
    t.add_row(
        "NIC",
        f"integrated, DDIO over {system.nic.ddio_ways} LLC ways, "
        f"{system.nic.rx_buffers_per_core} RX buffers/core, "
        f"{system.nic.packet_bytes} B packets",
    )
    return t.render()


def series_to_lines(
    name: str, xs: Iterable[object], ys: Iterable[float]
) -> List[str]:
    """Render an (x, y) series for figure-style output."""
    return [f"{name}: " + "  ".join(f"{x}={y:.2f}" for x, y in zip(xs, ys))]
