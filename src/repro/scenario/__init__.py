"""Declarative scenario DSL: TOML/JSON documents -> PointSpec grids.

The subsystem in three layers:

* :mod:`repro.scenario.points` — the flat point vocabulary and its
  validator (shared with the serve API's explicit-points jobs);
* :mod:`repro.scenario.doc` — document loading and structural
  validation (``schema_version``, named blocks, sweep tables), every
  error naming its exact key path;
* :mod:`repro.scenario.compile` — sweep expansion + reference
  resolution into a :class:`CompiledScenario` of cacheable specs.

Entry points: ``python -m repro.scenario compile|run|list-policies``,
the ``zoo`` experiment registry entry, and ``POST /jobs`` with a
``{"scenario": {...}}`` body (see DESIGN.md §13).
"""

from repro.scenario.compile import CompiledScenario, compile_scenario
from repro.scenario.doc import SCHEMA_VERSION, Scenario, load_scenario, scenario_from_dict
from repro.scenario.points import (
    POLICY_SPECS,
    ScenarioError,
    build_point,
)

__all__ = [
    "CompiledScenario",
    "POLICY_SPECS",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "build_point",
    "compile_scenario",
    "load_scenario",
    "scenario_from_dict",
]
