"""Compile a validated scenario into a PointSpec list.

Each ``[[points]]`` template is multiplied out over the cartesian
product of its sweep axes (axis order = declaration order, value order
as written, so compilation is deterministic), named block references
are resolved, and every resolved flat dict goes through
:func:`repro.scenario.points.build_point` — the same validator the
serve API uses for explicit points. The compiled specs are therefore
indistinguishable from hand-built figure specs: they carry the policy
string, participate in the point-cache fingerprint, and run through
``run_points`` / serve / cluster with the usual bit-identical
determinism guarantees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.parallel import PointSpec
from repro.scenario.doc import Scenario
from repro.scenario.points import POLICY_SPECS, build_point, fail, require


@dataclass
class CompiledScenario:
    """A scenario ready to run: specs plus result-rendering context."""

    name: str
    scale: float
    measure: float
    specs: List[PointSpec] = field(default_factory=list)

    @property
    def run_label(self) -> str:
        """Manifest run_label; ``timeline --list`` keys off the prefix."""
        return f"scenario:{self.name}"


def _resolve_workload(
    scenario: Scenario, entry: Dict[str, Any], path: str
) -> None:
    name = entry.get("workload")
    if name is None or name in ("kvs", "l3fwd"):
        return
    block = scenario.workloads.get(name)
    require(
        block is not None,
        f"{path}.workload",
        f"unknown workload {name!r}; named blocks: "
        + (", ".join(sorted(scenario.workloads)) or "(none)")
        + "; or use 'kvs'/'l3fwd' directly",
    )
    entry["workload"] = block["kind"]
    if "packet_bytes" in block and "packet_bytes" not in entry:
        entry["packet_bytes"] = block["packet_bytes"]


def _resolve_policy(
    scenario: Scenario, entry: Dict[str, Any], path: str
) -> None:
    name = entry.get("policy")
    if name is None or name in POLICY_SPECS:
        return
    block = scenario.policies.get(name)
    require(
        block is not None,
        f"{path}.policy",
        f"unknown policy {name!r}; named blocks: "
        + (", ".join(sorted(scenario.policies)) or "(none)")
        + "; or one of " + "/".join(POLICY_SPECS),
    )
    entry["policy"] = block["policy"]
    for key in ("ways", "sweeper", "nic_tx_sweep"):
        if key in block and key not in entry:
            entry[key] = block[key]


def _resolve_arrival(
    scenario: Scenario, entry: Dict[str, Any], path: str
) -> None:
    name = entry.pop("arrival", None)
    if name is None:
        return
    require(
        "burst" not in entry,
        f"{path}.arrival",
        "point sets both 'arrival' and an inline 'burst'; pick one",
    )
    block = scenario.arrivals.get(name)
    require(
        block is not None,
        f"{path}.arrival",
        f"unknown arrival {name!r}; named blocks: "
        + (", ".join(sorted(scenario.arrivals)) or "(none)"),
    )
    entry["burst"] = dict(block)


def _resolve_observer(
    scenario: Scenario, entry: Dict[str, Any], path: str
) -> None:
    name = entry.get("observer")
    if name is None or isinstance(name, dict):
        return  # absent, or already an inline observer object
    require(
        isinstance(name, str),
        f"{path}.observer",
        "must be an observer block name or an inline object",
    )
    block = scenario.observers.get(name)
    require(
        block is not None,
        f"{path}.observer",
        f"unknown observer {name!r}; named blocks: "
        + (", ".join(sorted(scenario.observers)) or "(none)"),
    )
    entry["observer"] = dict(block)


def _format_axis(value: Any) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    return str(value)


def compile_scenario(
    scenario: Scenario, settings: Optional[Any] = None
) -> CompiledScenario:
    """Expand sweeps, resolve references, and build every PointSpec.

    ``settings`` (an :class:`~repro.experiments.common.ExperimentSettings`)
    overrides the document's default ``scale``/``measure`` — this is how
    the serve API's fidelity knobs and the ``SPEC_BUILDERS`` seam apply
    to scenario-born grids. Per-point explicit ``scale``/``measure``
    values in the document still win over both.
    """
    from repro.experiments.common import DEFAULT_SCALE

    if settings is not None:
        scale = settings.scale
        measure = settings.measure_multiplier
    else:
        scale = scenario.scale if scenario.scale is not None else DEFAULT_SCALE
        measure = scenario.measure

    compiled = CompiledScenario(
        name=scenario.name, scale=scale, measure=measure
    )
    labels_seen: Dict[str, str] = {}
    for index, template in enumerate(scenario.templates):
        path = f"points[{index}]"
        sweep = template.get("sweep", {})
        axes = list(sweep.items())  # declaration order; deterministic
        combos = (
            itertools.product(*(values for _, values in axes))
            if axes
            else [()]
        )
        for combo in combos:
            entry = {k: v for k, v in template.items() if k != "sweep"}
            entry.update(zip((axis for axis, _ in axes), combo))
            base = entry.get("label") or f"point{index}"
            if combo:
                suffix = " ".join(
                    f"{axis}={_format_axis(value)}"
                    for (axis, _), value in zip(axes, combo)
                )
                entry["label"] = f"{base} {suffix}"
            else:
                entry["label"] = base
            _resolve_workload(scenario, entry, path)
            _resolve_policy(scenario, entry, path)
            _resolve_arrival(scenario, entry, path)
            _resolve_observer(scenario, entry, path)
            spec = build_point(
                entry,
                default_scale=scale,
                path=path,
                default_measure=measure,
                default_seed=scenario.seed,
            )
            clash = labels_seen.get(spec.label)
            if clash is not None:
                fail(
                    path,
                    f"duplicate point label {spec.label!r} (first produced "
                    f"by {clash}); add a 'label' or another sweep axis to "
                    "disambiguate",
                )
            labels_seen[spec.label] = path
            compiled.specs.append(spec)
    return compiled
