"""The point vocabulary: one flat dict describes one simulation point.

This is the single validator that turns a client-provided point
description (the keys of :data:`POINT_KEYS`, in the vocabulary of
:func:`repro.experiments.common.point_spec`) into a
:class:`~repro.engine.parallel.PointSpec`. Both front ends share it:

* the serve API's explicit-points jobs (``POST /jobs`` with
  ``{"points": [...]}``) — :mod:`repro.serve.jobs` wraps
  :class:`ScenarioError` into its HTTP 400;
* compiled scenario documents (:mod:`repro.scenario.compile`), where
  each sweep-expanded template resolves to exactly such a dict.

Every error message is prefixed with the document path of the offending
key (``points[2].observer``), so a 400 from a deeply nested scenario
names precisely what to fix. Unknown keys are always rejected — a typo
like ``"swepper"`` must not silently serve non-Sweeper results.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.engine.parallel import PointSpec
from repro.errors import ConfigError


class ScenarioError(ConfigError):
    """Invalid point/scenario document; names the bad key path."""


#: every key a point object may carry
POINT_KEYS = frozenset(
    (
        "workload",
        "scale",
        "buffers",
        "ways",
        "packet_bytes",
        "policy",
        "label",
        "measure",
        "sweeper",
        "queued_depth",
        "nic_tx_sweep",
        "seed",
        "observer",
        "burst",
    )
)

#: knobs an ``"observer"`` sub-object may carry (the ObserverConfig
#: fields); named in the error so clients can discover the vocabulary.
OBSERVER_KEYS = frozenset(
    ("sets", "ways", "period", "jitter", "probe_seed", "mi_bins")
)

#: knobs a ``"burst"`` sub-object may carry (the BurstProfile fields).
BURST_KEYS = frozenset(("low", "high", "window", "seed"))

#: every accepted ``"policy"`` spec string (paper baselines + the
#: repro.nic.zoo policies); kept literal so the error message and the
#: docs never drift from what ``make_policy`` accepts.
POLICY_SPECS = ("dma", "ddio", "ideal", "occamy", "rdca")


def fail(path: str, message: str) -> None:
    raise ScenarioError(f"{path}: {message}" if path else message)


def require(condition: bool, path: str, message: str) -> None:
    if not condition:
        fail(path, message)


def _number(
    entry: Dict[str, Any], key: str, default: float, path: str
) -> float:
    value = entry.get(key, default)
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{path}.{key}" if path else key,
        "must be a number",
    )
    return float(value)


def _int_field(entry: Dict[str, Any], key: str, default: int, path: str) -> int:
    value = entry.get(key, default)
    require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{path}.{key}" if path else key,
        "must be an integer",
    )
    return value


def _bool_field(
    entry: Dict[str, Any], key: str, default: bool, path: str
) -> bool:
    value = entry.get(key, default)
    require(
        isinstance(value, bool),
        f"{path}.{key}" if path else key,
        "must be a boolean",
    )
    return value


def check_keys(
    entry: Dict[str, Any], allowed: frozenset, path: str, what: str
) -> None:
    """Reject unknown keys, naming both the typo(s) and the vocabulary."""
    unknown = sorted(set(entry) - allowed)
    require(
        not unknown,
        path,
        f"unknown {what} key(s): "
        + ", ".join(repr(k) for k in unknown)
        + "; allowed: "
        + ", ".join(sorted(allowed)),
    )


def build_observer(entry: Any, path: str = "observer") -> Any:
    """Validate an ``"observer"`` sub-object into an ObserverConfig."""
    from repro.sidechannel import ObserverConfig

    require(isinstance(entry, dict), path, "must be an object")
    check_keys(entry, OBSERVER_KEYS, path, "observer")
    ways = entry.get("ways")
    if ways is not None:
        require(
            isinstance(ways, list)
            and all(
                isinstance(w, int) and not isinstance(w, bool) for w in ways
            ),
            f"{path}.ways",
            "must be a list of integers",
        )
        ways = tuple(ways)
    try:
        return ObserverConfig(
            sets=_int_field(entry, "sets", 16, path),
            ways=ways,
            period=_int_field(entry, "period", 8, path),
            jitter=_int_field(entry, "jitter", 0, path),
            probe_seed=_int_field(entry, "probe_seed", 7, path),
            mi_bins=_int_field(entry, "mi_bins", 4, path),
        )
    except ScenarioError:
        raise
    except ConfigError as exc:
        raise ScenarioError(f"{path}: invalid observer config: {exc}") from exc


def build_burst(entry: Any, path: str = "burst") -> Any:
    """Validate a ``"burst"`` sub-object into a BurstProfile."""
    from repro.nic.arrivals import BurstProfile

    require(isinstance(entry, dict), path, "must be an object")
    check_keys(entry, BURST_KEYS, path, "burst")
    try:
        return BurstProfile(
            low=_int_field(entry, "low", 1, path),
            high=_int_field(entry, "high", 33, path),
            window=_int_field(entry, "window", 24, path),
            seed=_int_field(entry, "seed", 5, path),
        )
    except ScenarioError:
        raise
    except ConfigError as exc:
        raise ScenarioError(f"{path}: invalid burst profile: {exc}") from exc


def build_point(
    entry: Dict[str, Any],
    default_scale: float,
    path: str = "point",
    default_measure: float = 1.0,
    default_seed: int = 42,
) -> PointSpec:
    """One point description -> a picklable, cacheable PointSpec.

    The compiled spec carries everything that identifies the simulation
    (the policy string included), so it participates in the point-cache
    fingerprint exactly like a hand-built figure spec.
    """
    from repro.experiments.common import (
        ExperimentSettings,
        kvs_system,
        kvs_workload,
        l3fwd_workload,
        point_spec,
    )

    require(isinstance(entry, dict), path, "each point must be an object")
    check_keys(entry, POINT_KEYS, path, "point")
    workload_kind = entry.get("workload", "kvs")
    require(
        workload_kind in ("kvs", "l3fwd"),
        f"{path}.workload",
        f"must be 'kvs' or 'l3fwd', got {workload_kind!r}",
    )
    scale = _number(entry, "scale", default_scale, path)
    require(0 < scale <= 1, f"{path}.scale", "must be in (0, 1]")
    buffers = int(_number(entry, "buffers", 512, path))
    ways = int(_number(entry, "ways", 2, path))
    packet_bytes = int(_number(entry, "packet_bytes", 1024, path))
    policy = entry.get("policy", "ddio")
    require(
        policy in POLICY_SPECS,
        f"{path}.policy",
        "must be one of " + "/".join(POLICY_SPECS) + f", got {policy!r}",
    )
    label = entry.get("label") or (
        f"{workload_kind}/{packet_bytes}B/{buffers} bufs/{policy}{ways}"
    )
    require(isinstance(label, str), f"{path}.label", "must be a string")
    measure = _number(entry, "measure", default_measure, path)
    require(measure > 0, f"{path}.measure", "must be > 0")
    system = kvs_system(scale, buffers, ways, packet_bytes)
    if workload_kind == "kvs":
        workload = kvs_workload(scale, packet_bytes)
    else:
        workload = l3fwd_workload(packet_bytes)
    settings = ExperimentSettings(scale=scale, measure_multiplier=measure)
    observer = None
    if entry.get("observer") is not None:
        observer = build_observer(entry["observer"], path=f"{path}.observer")
    burst = None
    if entry.get("burst") is not None:
        burst = build_burst(entry["burst"], path=f"{path}.burst")
    return point_spec(
        label,
        system,
        workload,
        policy,
        sweeper=_bool_field(entry, "sweeper", False, path),
        queued_depth=int(_number(entry, "queued_depth", 1, path)),
        settings=settings,
        nic_tx_sweep=_bool_field(entry, "nic_tx_sweep", False, path),
        seed=int(_number(entry, "seed", default_seed, path)),
        observer=observer,
        burst=burst,
    )
