"""Scenario documents: load TOML/JSON, check the schema, validate paths.

A scenario is one declarative document describing a grid of simulation
points. Its shape (``schema_version = 1``)::

    schema_version = 1
    name = "policy-zoo"          # becomes run_label "scenario:<name>"
    scale = 0.1                  # optional defaults for every point
    measure = 1.0
    seed = 42

    [workloads.mica]             # named blocks, referenced from points
    kind = "kvs"
    packet_bytes = 1024

    [policies.swept]
    policy = "ddio"
    ways = 4
    sweeper = true

    [arrivals.diurnal]           # BurstProfile fields (repro.nic.arrivals)
    low = 1
    high = 33
    window = 48
    seed = 9

    [observers.probe]            # ObserverConfig fields (repro.sidechannel)
    sets = 16
    period = 8

    [[points]]                   # a template; sweep axes multiply it out
    workload = "mica"
    policy = "swept"
    arrival = "diurnal"
    buffers = 512
    label = "mica diurnal"
    [points.sweep]
    ways = [2, 4, 6]
    queued_depth = [1, 16]

Validation is structural and total: every unknown key anywhere raises
:class:`~repro.scenario.points.ScenarioError` naming the exact key path
(``points[0].sweep.wayz``), which the serve layer renders as HTTP 400.
Reference resolution and sweep expansion live in
:mod:`repro.scenario.compile`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.scenario.points import (
    BURST_KEYS,
    OBSERVER_KEYS,
    POINT_KEYS,
    POLICY_SPECS,
    ScenarioError,
    build_burst,
    build_observer,
    check_keys,
    fail,
    require,
)

try:  # stdlib on Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - py3.10
    try:  # same parser, backport package (CI installs it for 3.10)
        import tomli as tomllib  # type: ignore[no-redef]
    except ImportError:  # TOML degrades to JSON below
        tomllib = None  # type: ignore[assignment]

#: the one schema this parser understands; bumped on breaking changes
SCHEMA_VERSION = 1

TOP_KEYS = frozenset(
    (
        "schema_version",
        "name",
        "scale",
        "measure",
        "seed",
        "workloads",
        "policies",
        "arrivals",
        "observers",
        "points",
    )
)
WORKLOAD_BLOCK_KEYS = frozenset(("kind", "packet_bytes"))
POLICY_BLOCK_KEYS = frozenset(("policy", "ways", "sweeper", "nic_tx_sweep"))

#: keys a [[points]] template may carry: the flat point vocabulary
#: (minus the sub-objects that arrive via named blocks) plus the
#: block references and the sweep table.
TEMPLATE_KEYS = POINT_KEYS | frozenset(("arrival", "sweep"))

#: axes a sweep table may multiply out: everything but label/sweep and
#: the inline "burst" object (sweep arrivals/observers by block *name*).
SWEEP_KEYS = TEMPLATE_KEYS - frozenset(("label", "sweep", "burst"))


def _scalar(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool))


@dataclass
class Scenario:
    """A structurally validated scenario document (refs not yet resolved)."""

    name: str
    scale: Optional[float] = None
    measure: float = 1.0
    seed: int = 42
    workloads: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    policies: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    arrivals: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    observers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    templates: List[Dict[str, Any]] = field(default_factory=list)


def _named_section(
    data: Dict[str, Any], section: str
) -> Dict[str, Dict[str, Any]]:
    blocks = data.get(section, {})
    require(isinstance(blocks, dict), section, "must be a table of blocks")
    for name, block in blocks.items():
        require(
            isinstance(block, dict), f"{section}.{name}", "must be a table"
        )
    return blocks


def _validate_workload_block(name: str, block: Dict[str, Any]) -> None:
    path = f"workloads.{name}"
    check_keys(block, WORKLOAD_BLOCK_KEYS, path, "workload")
    kind = block.get("kind")
    require(
        kind in ("kvs", "l3fwd"),
        f"{path}.kind",
        f"must be 'kvs' or 'l3fwd', got {kind!r}",
    )
    if "packet_bytes" in block:
        require(
            isinstance(block["packet_bytes"], int)
            and not isinstance(block["packet_bytes"], bool)
            and block["packet_bytes"] > 0,
            f"{path}.packet_bytes",
            "must be a positive integer",
        )


def _validate_policy_block(name: str, block: Dict[str, Any]) -> None:
    path = f"policies.{name}"
    check_keys(block, POLICY_BLOCK_KEYS, path, "policy")
    policy = block.get("policy")
    require(
        policy in POLICY_SPECS,
        f"{path}.policy",
        "must be one of " + "/".join(POLICY_SPECS) + f", got {policy!r}",
    )
    if "ways" in block:
        require(
            isinstance(block["ways"], int)
            and not isinstance(block["ways"], bool)
            and block["ways"] > 0,
            f"{path}.ways",
            "must be a positive integer",
        )
    for key in ("sweeper", "nic_tx_sweep"):
        if key in block:
            require(
                isinstance(block[key], bool),
                f"{path}.{key}",
                "must be a boolean",
            )


def _validate_template(index: int, template: Any) -> None:
    path = f"points[{index}]"
    require(isinstance(template, dict), path, "must be a table")
    check_keys(template, TEMPLATE_KEYS, path, "point")
    sweep = template.get("sweep", {})
    require(isinstance(sweep, dict), f"{path}.sweep", "must be a table")
    for axis, values in sweep.items():
        axis_path = f"{path}.sweep.{axis}"
        require(
            axis in SWEEP_KEYS,
            axis_path,
            "unknown sweep axis; allowed: " + ", ".join(sorted(SWEEP_KEYS)),
        )
        require(
            axis not in template,
            axis_path,
            "axis is also set directly on the point; pick one",
        )
        require(
            isinstance(values, list) and values,
            axis_path,
            "must be a non-empty list",
        )
        for j, value in enumerate(values):
            require(
                _scalar(value),
                f"{axis_path}[{j}]",
                "sweep values must be scalars (block names or numbers)",
            )


def scenario_from_dict(data: Any) -> Scenario:
    """Validate a raw document (parsed TOML/JSON or a request body)."""
    require(isinstance(data, dict), "scenario", "must be a table/object")
    check_keys(data, TOP_KEYS, "scenario", "scenario")

    version = data.get("schema_version")
    require(
        isinstance(version, int) and not isinstance(version, bool),
        "scenario.schema_version",
        "is required and must be an integer",
    )
    require(
        version == SCHEMA_VERSION,
        "scenario.schema_version",
        f"unsupported version {version} (this build speaks {SCHEMA_VERSION})",
    )
    name = data.get("name")
    require(
        isinstance(name, str) and name.strip(),
        "scenario.name",
        "is required and must be a non-empty string",
    )

    scale: Optional[float] = None
    if "scale" in data:
        require(
            isinstance(data["scale"], (int, float))
            and not isinstance(data["scale"], bool)
            and 0 < data["scale"] <= 1,
            "scenario.scale",
            "must be a number in (0, 1]",
        )
        scale = float(data["scale"])
    measure = data.get("measure", 1.0)
    require(
        isinstance(measure, (int, float))
        and not isinstance(measure, bool)
        and measure > 0,
        "scenario.measure",
        "must be a number > 0",
    )
    seed = data.get("seed", 42)
    require(
        isinstance(seed, int) and not isinstance(seed, bool),
        "scenario.seed",
        "must be an integer",
    )

    workloads = _named_section(data, "workloads")
    for block_name, block in workloads.items():
        _validate_workload_block(block_name, block)
    policies = _named_section(data, "policies")
    for block_name, block in policies.items():
        _validate_policy_block(block_name, block)
    arrivals = _named_section(data, "arrivals")
    for block_name, block in arrivals.items():
        build_burst(block, path=f"arrivals.{block_name}")
    observers = _named_section(data, "observers")
    for block_name, block in observers.items():
        build_observer(block, path=f"observers.{block_name}")

    templates = data.get("points")
    require(
        isinstance(templates, list) and templates,
        "scenario.points",
        "is required and must be a non-empty list of point tables",
    )
    for index, template in enumerate(templates):
        _validate_template(index, template)

    return Scenario(
        name=name.strip(),
        scale=scale,
        measure=float(measure),
        seed=seed,
        workloads=workloads,
        policies=policies,
        arrivals=arrivals,
        observers=observers,
        templates=templates,
    )


def load_scenario(path) -> Scenario:
    """Load + validate a scenario file; format chosen by suffix.

    ``.toml`` needs the stdlib ``tomllib`` (Python >= 3.11); ``.json``
    works everywhere. Anything else is an error, not a guess.
    """
    path = Path(path)
    try:
        raw_bytes = path.read_bytes()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from exc
    suffix = path.suffix.lower()
    if suffix == ".toml":
        if tomllib is None:
            raise ScenarioError(
                f"{path}: TOML scenarios need Python >= 3.11 (tomllib); "
                "convert to JSON for older interpreters"
            )
        try:
            data = tomllib.loads(raw_bytes.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ScenarioError(f"{path}: invalid TOML: {exc}") from exc
    elif suffix == ".json":
        try:
            data = json.loads(raw_bytes.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ScenarioError(f"{path}: invalid JSON: {exc}") from exc
    else:
        fail(str(path), "scenario files must end in .toml or .json")
    return scenario_from_dict(data)
