"""CLI for the scenario DSL::

    python -m repro.scenario compile examples/scenarios/policy_zoo.toml
    python -m repro.scenario run examples/scenarios/policy_zoo.toml --json
    python -m repro.scenario list-policies

``compile`` prints the expanded grid (label, policy, point-cache
fingerprint) without simulating anything — the cheap way to check what
a document means. ``run`` compiles and executes the grid through
``run_points`` (cache, manifests, REPRO_* knobs all apply) and renders
the shared result schema. ``list-policies`` prints the injection-policy
vocabulary, zoo included.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ConfigError
from repro.scenario import SCHEMA_VERSION, compile_scenario, load_scenario


def _settings(args) -> Optional[object]:
    """Fidelity overrides, mirroring the serve API's top-level knobs."""
    if args.scale is None and args.measure is None:
        return None
    from repro.experiments.common import DEFAULT_SCALE, ExperimentSettings

    return ExperimentSettings(
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
        measure_multiplier=args.measure if args.measure is not None else 1.0,
    )


def _compile(path: str, as_json: bool, settings=None) -> int:
    from repro.engine import pointcache

    compiled = compile_scenario(load_scenario(path), settings=settings)
    if as_json:
        print(
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "name": compiled.name,
                    "scale": compiled.scale,
                    "run_label": compiled.run_label,
                    "points": [
                        {
                            "label": s.label,
                            "policy": s.policy,
                            "sweeper": s.sweeper,
                            "queued_depth": s.queued_depth,
                            "seed": s.seed,
                            "measure_requests": s.measure_requests,
                            "fingerprint": pointcache.fingerprint(s),
                        }
                        for s in compiled.specs
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"scenario {compiled.name!r}: {len(compiled.specs)} points "
        f"at scale {compiled.scale} (run_label {compiled.run_label!r})"
    )
    for s in compiled.specs:
        extras = []
        if s.sweeper:
            extras.append("sweeper")
        if s.burst is not None:
            extras.append("burst")
        if s.observer is not None:
            extras.append("observer")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        print(
            f"  {s.label:44s} policy={s.policy:7s} "
            f"fp={pointcache.fingerprint(s)[:12]}{suffix}"
        )
    return 0


def _run(path: str, as_json: bool, settings=None) -> int:
    from repro.engine.parallel import run_points
    from repro.experiments.common import FigureResult

    compiled = compile_scenario(load_scenario(path), settings=settings)
    result = FigureResult(
        figure=compiled.run_label,
        title=f"scenario {compiled.name} ({len(compiled.specs)} points)",
        scale=compiled.scale,
    )
    result.points.extend(
        run_points(compiled.specs, run_label=compiled.run_label)
    )
    if as_json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    return 0


def _list_policies() -> int:
    from repro.nic.zoo import describe_policies

    print("injection policies (the 'policy' vocabulary of points):")
    for line in describe_policies():
        print(f"  {line}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description="Compile and run declarative scenario documents.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, doc in (
        ("compile", "expand a scenario into its point grid (no simulation)"),
        ("run", "compile and simulate a scenario"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("scenario", help="path to a .toml or .json scenario")
        p.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON (the shared result schema "
            "for 'run')",
        )
        p.add_argument(
            "--scale",
            type=float,
            default=None,
            help="override the document's default scale (per-point "
            "explicit values still win)",
        )
        p.add_argument(
            "--measure",
            type=float,
            default=None,
            help="override the document's default measure multiplier",
        )
    sub.add_parser(
        "list-policies", help="print the injection-policy vocabulary"
    )
    args = parser.parse_args(argv)
    try:
        if args.command == "compile":
            return _compile(args.scenario, args.json, _settings(args))
        if args.command == "run":
            return _run(args.scenario, args.json, _settings(args))
        return _list_policies()
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
