"""Three-level cache hierarchy with a non-inclusive victim LLC.

Models the paper's Table I hierarchy: per-core private L1/L2 and a shared
LLC that operates as a victim cache for L2 evictions (Skylake-style
non-inclusive design, [28] in the paper). The consequences matter for
Sweeper's story:

* A CPU read that hits the LLC copies the line into the core's L1/L2
  but leaves it resident (and still dirty) in the LLC. Consumed RX
  buffers therefore stay parked in the DDIO ways until a later NIC
  write-allocation evicts them — producing the writeback the paper
  identifies as the dominant "consumed buffer eviction" leak.
* A CPU write takes ownership: the LLC copy is invalidated and the
  dirty data lives in the private caches until it migrates back down
  as an L2 victim.
* NIC (DDIO) writes allocate only in the DDIO way mask, but in-place
  hits can refresh a line anywhere in the LLC.
* Dirty LLC evictions are the memory writebacks the paper attributes to
  RX Evct / TX Evct / Other Evct; clean L2 victims are dropped unless
  ``victim_fill_clean`` enables the §VI-C runaway-buffer behaviour.

All traffic recording happens here so that every engine sees identical
accounting.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Optional, Sequence, Tuple

from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.params import SystemConfig
from repro.traffic import (
    CPU_READ_CATEGORY,
    EVICT_CATEGORY,
    MemCategory,
    TrafficCounter,
)


class AccessLevel(IntEnum):
    """Hierarchy level that serviced an access (for latency accounting)."""

    L1 = 1
    L2 = 2
    LLC = 3
    MEM = 4


class CacheHierarchy:
    """Private L1/L2 per core plus one shared victim LLC."""

    #: cache implementation hook: the batch engine's hierarchy swaps in
    #: the struct-of-arrays cache while inheriting every cascade rule
    #: here unchanged, which is what makes the two engines equivalent by
    #: construction on the non-accelerated paths.
    CACHE_CLS = SetAssociativeCache

    def __init__(
        self,
        config: SystemConfig,
        traffic: Optional[TrafficCounter] = None,
        victim_fill_clean: bool = False,
    ) -> None:
        self.config = config
        self.num_cores = config.cpu.num_cores
        self.traffic = traffic if traffic is not None else TrafficCounter()
        cache_cls = self.CACHE_CLS
        self.l1s = [
            cache_cls(config.l1, name=f"L1[{c}]")
            for c in range(self.num_cores)
        ]
        self.l2s = [
            cache_cls(config.l2, name=f"L2[{c}]")
            for c in range(self.num_cores)
        ]
        self.llc = cache_cls(config.llc, name="LLC")
        self.ddio_way_mask: Tuple[int, ...] = tuple(range(config.nic.ddio_ways))
        self._core_fill_masks: List[Optional[Tuple[int, ...]]] = [
            None
        ] * self.num_cores
        # Whether clean L2 victims allocate in the LLC. Modern
        # non-inclusive LLCs drop most clean victims (selective fill);
        # keeping them would let NIC in-place updates pin whole rings in
        # non-DDIO ways, erasing the buffer-depth sensitivity the paper
        # measures. True enables the parking behaviour for the §VI-C
        # "runaway buffer" ablation.
        self.victim_fill_clean = victim_fill_clean

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def set_ddio_way_mask(self, ways: Sequence[int]) -> None:
        mask = tuple(ways)
        if any(w < 0 or w >= self.llc.ways for w in mask):
            raise ConfigError("DDIO way mask exceeds LLC associativity")
        self.ddio_way_mask = mask

    def set_core_fill_mask(self, core: int, ways: Optional[Sequence[int]]) -> None:
        """Restrict a core's LLC victim fills to a way subset (§VI-E)."""
        if ways is None:
            self._core_fill_masks[core] = None
            return
        mask = tuple(ways)
        if any(w < 0 or w >= self.llc.ways for w in mask):
            raise ConfigError("core fill mask exceeds LLC associativity")
        self._core_fill_masks[core] = mask

    # ------------------------------------------------------------------
    # internal fill/eviction cascade
    # ------------------------------------------------------------------

    def _writeback(self, kind: int) -> None:
        # Direct counter bump; TrafficCounter.record's validation is
        # redundant for the constant blocks=1 of the eviction path.
        self.traffic.counts[EVICT_CATEGORY[kind]] += 1

    def _victim_fill_llc(
        self, core: int, block: int, dirty: bool, kind: int
    ) -> None:
        if not dirty and not self.victim_fill_clean:
            return
        mask = self._core_fill_masks[core]
        # Victim fills draw uniformly over their allowed ways rather than
        # hunting for invalid slots, so collocated tenants do not vacuum
        # up the DDIO slots that sweeps free for the NIC.
        evicted = self.llc.insert(
            block, dirty=dirty, kind=kind, way_mask=mask, prefer_invalid=False
        )
        if evicted is not None and evicted.dirty:
            self._writeback(evicted.kind)

    def _fill_l2(self, core: int, block: int, dirty: bool, kind: int) -> None:
        evicted = self.l2s[core].insert(block, dirty=dirty, kind=kind)
        if evicted is not None:
            self._victim_fill_llc(core, evicted.block, evicted.dirty, evicted.kind)

    def _fill_l1(self, core: int, block: int, dirty: bool, kind: int) -> None:
        evicted = self.l1s[core].insert(block, dirty=dirty, kind=kind)
        if evicted is None:
            return
        # Dirty L1 victims merge into (or allocate in) the L2; clean ones
        # are silently dropped, as the L2 usually retains a copy.
        if not evicted.dirty:
            return
        l2 = self.l2s[core]
        if l2.access(evicted.block, write=True):
            return
        self._fill_l2(core, evicted.block, dirty=True, kind=evicted.kind)

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------

    def cpu_access(
        self, core: int, block: int, kind: RegionKind, write: bool
    ) -> AccessLevel:
        """One CPU load/store at block granularity.

        Stores use write-allocate / read-for-ownership: a store miss
        fetches the block from wherever it lives and dirties the L1 copy.
        """
        if self.l1s[core].access(block, write=write):
            return AccessLevel.L1
        return self._cpu_access_l1_missed(core, block, kind, write)

    def cpu_access_run(
        self,
        core: int,
        start: int,
        n: int,
        kind: RegionKind,
        write: bool,
        level_counts: dict,
    ) -> None:
        """Batched :meth:`cpu_access` over ``n`` consecutive blocks.

        The L1 is probed with one batched call; only misses take the
        per-block fill cascade. ``level_counts`` (AccessLevel -> int) is
        updated in place with the servicing level of every block.
        """
        missed = self.l1s[core].access_run(start, n, write=write)
        level_counts[AccessLevel.L1] += n - len(missed)
        if not missed:
            return
        l1_missed = self._cpu_access_l1_missed
        for block in missed:
            level_counts[l1_missed(core, block, kind, write)] += 1

    def _cpu_access_l1_missed(
        self, core: int, block: int, kind: RegionKind, write: bool
    ) -> AccessLevel:
        """L2-and-below half of :meth:`cpu_access` (L1 already missed)."""
        if self.l2s[core].access(block):
            self._fill_l1(core, block, dirty=write, kind=kind)
            return AccessLevel.L2
        llc_kind = self.llc.access_kind(block)
        if llc_kind is not None:
            if write:
                # Read-for-ownership: the store takes the line exclusively;
                # the LLC copy is invalidated and dirtiness moves up with
                # the new L1 data (any prior dirty state is subsumed by
                # the dirty L1 line that will eventually migrate back).
                self.llc.remove(block)
            # Read hits leave the line resident in the LLC (non-inclusive
            # LLC retains it); the private caches get clean copies. This
            # is what keeps consumed, dirty RX buffers parked in the DDIO
            # ways until a later NIC write-allocation evicts them — the
            # paper's consumed-buffer-eviction mechanism.
            self._fill_l2(core, block, dirty=False, kind=llc_kind)
            self._fill_l1(core, block, dirty=write, kind=llc_kind)
            return AccessLevel.LLC
        self.traffic.counts[CPU_READ_CATEGORY[kind]] += 1
        self._fill_l2(core, block, dirty=False, kind=kind)
        self._fill_l1(core, block, dirty=write, kind=kind)
        return AccessLevel.MEM

    def cpu_access_batch(
        self,
        core: int,
        blocks,
        writes,
        kind: RegionKind,
        level_counts: dict,
    ) -> int:
        """Array-driven :meth:`cpu_access` over (block, write) pairs.

        ``blocks``/``writes`` are parallel numpy arrays (arbitrary,
        non-contiguous addresses — the X-Mem tenant's access stream).
        ``level_counts`` is updated in place; returns the access count.
        """
        cpu_access = self.cpu_access
        for block, write in zip(blocks.tolist(), writes.tolist()):
            level_counts[cpu_access(core, block, kind, write)] += 1
        return len(blocks)

    def cpu_read(self, core: int, block: int, kind: RegionKind) -> AccessLevel:
        return self.cpu_access(core, block, kind, write=False)

    def cpu_write(self, core: int, block: int, kind: RegionKind) -> AccessLevel:
        return self.cpu_access(core, block, kind, write=True)

    # ------------------------------------------------------------------
    # NIC side primitives (used by the injection policies)
    # ------------------------------------------------------------------

    def invalidate_block(
        self, core_hint: int, block: int, discard_dirty: bool
    ) -> bool:
        """Drop every cached copy of ``block``.

        With ``discard_dirty=False``, a dirty copy is written back to
        memory first (CLFLUSH semantics, used by the DMA baseline on the
        TX path); with True, dirty data is silently discarded (a NIC
        full-line overwrite, or a sweep).

        Returns True if any dirty copy existed.
        """
        dirty_seen = False
        kind_seen: Optional[int] = None
        for cache in (self.l1s[core_hint], self.l2s[core_hint], self.llc):
            removed = cache.remove(block)
            if removed is not None:
                dirty, kind = removed
                if dirty:
                    dirty_seen = True
                    kind_seen = kind
        if dirty_seen and not discard_dirty:
            self._writeback(
                kind_seen if kind_seen is not None else int(RegionKind.APP)
            )
        return dirty_seen

    def dma_rx_write_run(self, core_hint: int, blocks: Sequence[int]) -> None:
        """Batched DMA RX: invalidate cached copies, packet lands in DRAM.

        One ``NIC_RX_WR`` memory write per block; dirty copies are
        superseded by the full-line NIC write (no writeback).
        """
        for block in blocks:
            self.invalidate_block(core_hint, block, discard_dirty=True)
        self.traffic.counts[MemCategory.NIC_RX_WR] += len(blocks)

    def dma_tx_read_run(self, core_hint: int, blocks: Sequence[int]) -> None:
        """Batched DMA TX: flush dirty copies, NIC reads from DRAM."""
        for block in blocks:
            self.invalidate_block(core_hint, block, discard_dirty=False)
        self.traffic.counts[MemCategory.NIC_TX_RD] += len(blocks)

    def nic_llc_write(
        self, core_hint: int, block: int, kind: RegionKind = RegionKind.RX_BUFFER
    ) -> None:
        """DDIO write-allocate of one incoming block into the LLC.

        Any private-cache copies on the consuming core are snooped out;
        their dirty data is superseded by the full-line NIC write, so no
        writeback occurs. A miss allocates inside the DDIO way mask; a
        hit updates the existing line in place wherever it resides.
        """
        self.l1s[core_hint].remove(block)
        self.l2s[core_hint].remove(block)
        evicted = self.llc.insert(
            block, dirty=True, kind=kind, way_mask=self.ddio_way_mask
        )
        if evicted is not None and evicted.dirty:
            self._writeback(evicted.kind)

    def nic_llc_write_run(
        self,
        core_hint: int,
        blocks: Sequence[int],
        kind: RegionKind = RegionKind.RX_BUFFER,
    ) -> None:
        """Batched :meth:`nic_llc_write` over one packet buffer."""
        l1_remove = self.l1s[core_hint].remove
        l2_remove = self.l2s[core_hint].remove
        llc_insert = self.llc.insert
        mask = self.ddio_way_mask
        counts = self.traffic.counts
        for block in blocks:
            l1_remove(block)
            l2_remove(block)
            evicted = llc_insert(block, True, kind, mask)
            if evicted is not None and evicted.dirty:
                counts[EVICT_CATEGORY[evicted.kind]] += 1

    def nic_probe_read(self, core_hint: int, block: int) -> bool:
        """NIC read for packet transmission; True if serviced by a cache.

        DDIO reads do not allocate in the LLC; a miss is a DRAM read
        (NIC TX Rd).
        """
        if (
            self.l1s[core_hint].contains(block)
            or self.l2s[core_hint].contains(block)
        ):
            return True
        if self.llc.access(block):
            return True
        self.traffic.record(MemCategory.NIC_TX_RD)
        return False

    def nic_probe_read_run(self, core_hint: int, blocks: Sequence[int]) -> None:
        """Batched :meth:`nic_probe_read` over one packet buffer."""
        l1_contains = self.l1s[core_hint].contains
        l2_contains = self.l2s[core_hint].contains
        llc_access = self.llc.access
        counts = self.traffic.counts
        for block in blocks:
            if l1_contains(block) or l2_contains(block) or llc_access(block):
                continue
            counts[MemCategory.NIC_TX_RD] += 1

    # ------------------------------------------------------------------
    # Sweeper
    # ------------------------------------------------------------------

    def sweep_block(self, core_hint: int, block: int) -> int:
        """Propagate a sweep message: invalidate without writeback.

        Returns the number of cache copies dropped (0-3).
        """
        dropped = 0
        if self.l1s[core_hint].sweep(block):
            dropped += 1
        if self.l2s[core_hint].sweep(block):
            dropped += 1
        if self.llc.sweep(block):
            dropped += 1
        return dropped

    def sweep_run(self, core_hint: int, blocks: Sequence[int]) -> int:
        """Batched :meth:`sweep_block` over one buffer's blocks."""
        return (
            self.l1s[core_hint].sweep_run(blocks)
            + self.l2s[core_hint].sweep_run(blocks)
            + self.llc.sweep_run(blocks)
        )

    # ------------------------------------------------------------------
    # introspection / observability
    # ------------------------------------------------------------------

    def all_caches(self) -> Tuple[SetAssociativeCache, ...]:
        return (*self.l1s, *self.l2s, self.llc)

    def stats_totals(self) -> dict:
        """Sum every :class:`CacheStats` field across all caches.

        Field-driven (``dataclasses.fields``) so counters added to
        CacheStats aggregate automatically — this is the end-of-run
        truth the epoch timeline's summed deltas must match exactly.
        """
        import dataclasses

        from repro.cache.stats import CacheStats

        totals = {f.name: 0 for f in dataclasses.fields(CacheStats)}
        for cache in self.all_caches():
            for name, value in cache.stats.as_dict().items():
                totals[name] += value
        return totals

    def publish_metrics(self, registry) -> None:
        """Publish every cache's counters plus LLC/DDIO occupancy.

        All samples are pull-collected at registry sample time; nothing
        on the access path changes.
        """
        for cache in self.all_caches():
            cache.publish_metrics(registry)
        self.traffic.publish_metrics(registry)
        occupancy = registry.gauge(
            "llc_occupancy_blocks",
            "Valid LLC lines by region kind",
            labels=("kind",),
        )
        ddio_occupancy = registry.gauge(
            "llc_ddio_occupancy_blocks",
            "Valid LLC lines resident in the DDIO way mask",
        )
        ddio_ways = registry.gauge(
            "llc_ddio_ways", "Number of LLC ways in the DDIO mask"
        )
        way_occupancy = registry.gauge(
            "llc_way_occupancy_blocks",
            "Valid LLC lines per way index (side-channel pressure view: "
            "the DDIO ways are the attack surface)",
            labels=("way",),
        )

        def collect(_registry, hier=self) -> None:
            for kind, count in hier.llc.occupancy_by_kind().items():
                occupancy.labels(kind=kind.name).set(count)
            ddio_occupancy.set(hier.llc.occupancy_in_ways(hier.ddio_way_mask))
            ddio_ways.set(len(hier.ddio_way_mask))
            for way, count in enumerate(hier.llc.occupancy_by_way()):
                way_occupancy.labels(way=str(way)).set(count)

        registry.register_collector(collect)

    def resident_anywhere(self, core_hint: int, block: int) -> bool:
        return (
            self.l1s[core_hint].contains(block)
            or self.l2s[core_hint].contains(block)
            or self.llc.contains(block)
        )

    def reset_stats(self) -> None:
        for cache in (*self.l1s, *self.l2s, self.llc):
            cache.stats.reset()
        self.traffic.reset()
