"""Struct-of-arrays cache state shared by the batch engine's backends.

:class:`SoaCache` is a drop-in replacement for
:class:`~repro.cache.set_assoc.SetAssociativeCache` whose entire mutable
state lives in preallocated numpy arrays instead of per-set dicts:

* ``tags``  — int64[num_sets * ways], block address or -1 when invalid;
* ``dirty`` / ``kind`` — uint8 per slot;
* ``stamp`` — int64 per slot, a monotonically increasing recency stamp
  (LRU caches only; see below);
* ``stats`` — int64[7], one cell per :class:`CacheStats` field;
* ``tick`` / ``lcg`` — int64[1] scalars for the recency clock and the
  random-replacement LCG.

Because every byte of state is a flat C-layout array, the native batch
kernel (:mod:`repro.engine.batchcore`, compiled from ``batchcore.c``)
can mutate it directly through ctypes pointers, while the pure-Python
methods here operate on the *same* arrays — the two backends are
interchangeable mid-simulation and bit-identical by construction of
their shared state.

LRU-equivalence contract
------------------------

The object engine keeps per-set recency as dict insertion order (oldest
first). Here recency is the per-slot ``stamp``: every recency touch
assigns ``tick`` and increments it, so valid stamps are unique and the
dict's "first key" is exactly the valid slot with the minimum stamp.
Invalid slots are found by ``tags == -1`` in way order (no mask) or
mask order, matching ``tags.index``/mask iteration in the object
implementation. The random-replacement LCG is the same 32-bit recurrence
stepped in the same places, so victim draws agree draw-for-draw.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.set_assoc import EvictedLine
from repro.cache.stats import CacheStats
from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.params import CacheParams
from repro.traffic import MemCategory, TrafficCounter

#: CacheStats field order; defines the stats array layout for the C side.
STAT_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(CacheStats)
)


class SoaCacheStats:
    """Array-backed view with the :class:`CacheStats` interface.

    The hot paths (Python or native) bump cells of the underlying int64
    array; the dataclass-compatible surface (field attributes,
    ``as_dict``, ``reset``, rate properties) is what the observability
    layer and ``stats_totals`` consume.
    """

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray) -> None:
        self.array = array

    def as_dict(self) -> dict:
        return {
            name: int(value) for name, value in zip(STAT_FIELDS, self.array)
        }

    def reset(self) -> None:
        self.array[:] = 0

    @property
    def accesses(self) -> int:
        return int(self.array[0] + self.array[1])

    @property
    def hit_rate(self) -> float:
        accesses = self.accesses
        if accesses == 0:
            return 0.0
        return int(self.array[0]) / accesses

    @property
    def miss_rate(self) -> float:
        accesses = self.accesses
        if accesses == 0:
            return 0.0
        return int(self.array[1]) / accesses

    @property
    def evictions(self) -> int:
        return int(self.array[3] + self.array[4])


def _stat_property(index: int) -> property:
    def _get(self: SoaCacheStats) -> int:
        return int(self.array[index])

    def _set(self: SoaCacheStats, value: int) -> None:
        self.array[index] = value

    return property(_get, _set)


for _index, _name in enumerate(STAT_FIELDS):
    setattr(SoaCacheStats, _name, _stat_property(_index))
del _index, _name


class ArrayCounts:
    """Mapping view over an int64[len(MemCategory)] traffic array.

    Implements exactly the dict operations :class:`TrafficCounter`
    performs on ``counts`` (index get/set, iteration in category order,
    ``items``/``values``/``keys``/``get``), so a ``TrafficCounter``
    constructed around it behaves identically to the dict-backed one
    while the native kernel bumps the array directly.
    """

    __slots__ = ("array",)

    def __init__(self, array: np.ndarray) -> None:
        self.array = array

    def __getitem__(self, category) -> int:
        return int(self.array[category])

    def __setitem__(self, category, value) -> None:
        self.array[category] = value

    def __iter__(self):
        return iter(MemCategory)

    def __len__(self) -> int:
        return len(MemCategory)

    def __contains__(self, category) -> bool:
        return category in MemCategory.__members__.values()

    def __eq__(self, other) -> bool:
        if isinstance(other, ArrayCounts):
            return bool(np.array_equal(self.array, other.array))
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def keys(self):
        return tuple(MemCategory)

    def values(self):
        return [int(v) for v in self.array]

    def items(self):
        return [(c, int(self.array[c])) for c in MemCategory]

    def get(self, category, default=0):
        return int(self.array[category])


def array_traffic_counter() -> Tuple[TrafficCounter, np.ndarray]:
    """A TrafficCounter whose counts live in a native-visible array."""
    array = np.zeros(len(MemCategory), dtype=np.int64)
    return TrafficCounter(counts=ArrayCounts(array)), array


class SoaCache:
    """Set-associative cache on struct-of-arrays state (LRU or random).

    Matches :class:`SetAssociativeCache` operation for operation; see the
    module docstring for the recency-stamp equivalence argument. The
    scalar methods here are the readable specification of (and fallback
    for) the native kernel.
    """

    def __init__(
        self, params: CacheParams, name: str = "cache", seed: int = 0x5EED
    ) -> None:
        self.params = params
        self.name = name
        self.num_sets = params.num_sets
        self.ways = params.ways
        n = self.num_sets * self.ways
        self._random_replacement = params.replacement == "random"
        self.tags = np.full(n, -1, dtype=np.int64)
        self.dirty = np.zeros(n, dtype=np.uint8)
        self.kind = np.zeros(n, dtype=np.uint8)
        self.stamp = np.full(n, -1, dtype=np.int64)
        self.tick = np.zeros(1, dtype=np.int64)
        self.lcg = np.zeros(1, dtype=np.int64)
        self.lcg[0] = (seed * 2654435761) & 0xFFFFFFFF or 1
        self.stats_array = np.zeros(len(STAT_FIELDS), dtype=np.int64)
        self.stats = SoaCacheStats(self.stats_array)
        if self._random_replacement:
            self.access = self._access_random
            self.access_kind = self._access_kind_random
            self.insert = self._insert_random
        else:
            self.access = self._access_lru
            self.access_kind = self._access_kind_lru
            self.insert = self._insert_lru

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def _slot_of(self, block: int) -> int:
        """Flat slot index of a resident block, or -1."""
        base = (block % self.num_sets) * self.ways
        for slot in range(base, base + self.ways):
            if self.tags[slot] == block:
                return slot
        return -1

    def contains(self, block: int) -> bool:
        return self._slot_of(block) >= 0

    def is_dirty(self, block: int) -> bool:
        slot = self._slot_of(block)
        if slot < 0:
            raise ConfigError(f"{self.name}: block {block} not present")
        return bool(self.dirty[slot])

    def kind_of(self, block: int) -> RegionKind:
        return RegionKind(self.kind_raw_of(block))

    def kind_raw_of(self, block: int) -> int:
        slot = self._slot_of(block)
        if slot < 0:
            raise ConfigError(f"{self.name}: block {block} not present")
        return int(self.kind[slot])

    def way_of(self, block: int) -> Optional[int]:
        slot = self._slot_of(block)
        if slot < 0:
            return None
        return slot % self.ways

    def occupancy(self) -> int:
        return int(np.count_nonzero(self.tags != -1))

    def occupancy_by_kind(self) -> Dict[RegionKind, int]:
        out = {k: 0 for k in RegionKind}
        valid = self.tags != -1
        for kind in RegionKind:
            out[kind] = int(np.count_nonzero(valid & (self.kind == kind)))
        return out

    def occupancy_in_ways(self, ways: Sequence[int]) -> int:
        valid = (self.tags != -1).reshape(self.num_sets, self.ways)
        return int(valid[:, list(ways)].sum())

    def occupancy_by_way(self) -> List[int]:
        """Valid lines per way index (length ``self.ways``)."""
        valid = (self.tags != -1).reshape(self.num_sets, self.ways)
        return [int(n) for n in valid.sum(axis=0)]

    def resident_blocks(self) -> List[int]:
        return self.tags[self.tags != -1].tolist()

    def publish_metrics(self, registry) -> None:
        """Same pull collectors as :class:`SetAssociativeCache`."""
        events = registry.counter(
            "cache_events_total",
            "Per-cache event counters (hits, misses, evictions, sweeps)",
            labels=("cache", "event"),
        )
        hit_rate = registry.gauge(
            "cache_hit_rate",
            "Cumulative hit rate since the last stats reset",
            labels=("cache",),
        )

        def collect(_registry, cache=self) -> None:
            stats = cache.stats
            for event, value in stats.as_dict().items():
                events.labels(cache=cache.name, event=event).set_total(value)
            hit_rate.labels(cache=cache.name).set(stats.hit_rate)

        registry.register_collector(collect)

    # ------------------------------------------------------------------
    # probes (``access`` is bound per replacement policy in __init__)
    # ------------------------------------------------------------------

    def _access_lru(self, block: int, write: bool = False) -> bool:
        slot = self._slot_of(block)
        if slot < 0:
            self.stats_array[1] += 1
            return False
        self.stamp[slot] = self.tick[0]
        self.tick[0] += 1
        self.stats_array[0] += 1
        if write:
            self.dirty[slot] = 1
        return True

    def _access_random(self, block: int, write: bool = False) -> bool:
        slot = self._slot_of(block)
        if slot < 0:
            self.stats_array[1] += 1
            return False
        self.stats_array[0] += 1
        if write:
            self.dirty[slot] = 1
        return True

    def _access_kind_lru(self, block: int, write: bool = False) -> Optional[int]:
        slot = self._slot_of(block)
        if slot < 0:
            self.stats_array[1] += 1
            return None
        self.stamp[slot] = self.tick[0]
        self.tick[0] += 1
        self.stats_array[0] += 1
        if write:
            self.dirty[slot] = 1
        return int(self.kind[slot])

    def _access_kind_random(
        self, block: int, write: bool = False
    ) -> Optional[int]:
        slot = self._slot_of(block)
        if slot < 0:
            self.stats_array[1] += 1
            return None
        self.stats_array[0] += 1
        if write:
            self.dirty[slot] = 1
        return int(self.kind[slot])

    def access_run(self, start: int, n: int, write: bool = False) -> List[int]:
        """Probe ``n`` consecutive blocks; returns the missed ones.

        When the run touches each set at most once (``n <= num_sets``,
        which divisibility of the hierarchy's set counts guarantees for
        packet runs), the tag match is one batched numpy gather/compare
        over the run's sets; otherwise it falls back to scalar probes.
        """
        if n > self.num_sets:
            missed = []
            access = self.access
            for block in range(start, start + n):
                if not access(block, write=write):
                    missed.append(block)
            return missed
        blocks = np.arange(start, start + n, dtype=np.int64)
        sets = blocks % self.num_sets
        rows = self.tags.reshape(self.num_sets, self.ways)[sets]
        match = rows == blocks[:, None]
        hit_mask = match.any(axis=1)
        hit_rows = np.nonzero(hit_mask)[0]
        n_hits = len(hit_rows)
        if n_hits:
            ways_hit = match[hit_rows].argmax(axis=1)
            slots = sets[hit_rows] * self.ways + ways_hit
            if not self._random_replacement:
                tick = int(self.tick[0])
                self.stamp[slots] = np.arange(
                    tick, tick + n_hits, dtype=np.int64
                )
                self.tick[0] = tick + n_hits
            if write:
                self.dirty[slots] = 1
        self.stats_array[0] += n_hits
        self.stats_array[1] += n - n_hits
        return blocks[~hit_mask].tolist()

    # ------------------------------------------------------------------
    # fills (``insert`` is bound per replacement policy in __init__)
    # ------------------------------------------------------------------

    def _install(
        self, block: int, victim_slot: int, dirty: bool, kind: int
    ) -> Optional[EvictedLine]:
        """Shared insert epilogue: evict the victim, install the block."""
        evicted: Optional[EvictedLine] = None
        old_tag = int(self.tags[victim_slot])
        if old_tag != -1:
            old_dirty = int(self.dirty[victim_slot])
            evicted = EvictedLine(
                old_tag, bool(old_dirty), int(self.kind[victim_slot])
            )
            if old_dirty:
                self.stats_array[4] += 1
            else:
                self.stats_array[3] += 1
        self.tags[victim_slot] = block
        self.dirty[victim_slot] = 1 if dirty else 0
        self.kind[victim_slot] = kind
        if not self._random_replacement:
            self.stamp[victim_slot] = self.tick[0]
            self.tick[0] += 1
        self.stats_array[2] += 1
        return evicted

    def _insert_lru(
        self,
        block: int,
        dirty: bool,
        kind: int,
        way_mask: Optional[Sequence[int]] = None,
        prefer_invalid: bool = True,
    ) -> Optional[EvictedLine]:
        slot = self._slot_of(block)
        if slot >= 0:
            self.stamp[slot] = self.tick[0]
            self.tick[0] += 1
            if dirty:
                self.dirty[slot] = 1
            self.kind[slot] = kind
            return None
        base = (block % self.num_sets) * self.ways
        victim_slot = -1
        if way_mask is None:
            # First invalid way in way order, else minimum-stamp way.
            best = -1
            best_stamp = 0
            for slot in range(base, base + self.ways):
                if self.tags[slot] == -1:
                    victim_slot = slot
                    break
                stamp = int(self.stamp[slot])
                if best < 0 or stamp < best_stamp:
                    best, best_stamp = slot, stamp
            if victim_slot < 0:
                victim_slot = best
        else:
            best = -1
            best_stamp = 0
            for way in way_mask:
                slot = base + way
                if self.tags[slot] == -1:
                    victim_slot = slot
                    break
                stamp = int(self.stamp[slot])
                if best < 0 or stamp < best_stamp:
                    best, best_stamp = slot, stamp
            if victim_slot < 0:
                victim_slot = best
        if victim_slot < 0:
            raise ConfigError(f"{self.name}: empty way mask for insert")
        return self._install(block, victim_slot, dirty, kind)

    def _insert_random(
        self,
        block: int,
        dirty: bool,
        kind: int,
        way_mask: Optional[Sequence[int]] = None,
        prefer_invalid: bool = True,
    ) -> Optional[EvictedLine]:
        slot = self._slot_of(block)
        if slot >= 0:
            if dirty:
                self.dirty[slot] = 1
            self.kind[slot] = kind
            return None
        base = (block % self.num_sets) * self.ways
        victim_slot = -1
        if prefer_invalid:
            if way_mask is None:
                for slot in range(base, base + self.ways):
                    if self.tags[slot] == -1:
                        victim_slot = slot
                        break
            else:
                for way in way_mask:
                    if self.tags[base + way] == -1:
                        victim_slot = base + way
                        break
        if victim_slot < 0:
            lcg = (int(self.lcg[0]) * 1103515245 + 12345) & 0xFFFFFFFF
            self.lcg[0] = lcg
            if way_mask is None:
                victim_slot = base + (lcg >> 16) % self.ways
            else:
                if not way_mask:
                    raise ConfigError(
                        f"{self.name}: empty way mask for insert"
                    )
                victim_slot = base + way_mask[(lcg >> 16) % len(way_mask)]
        return self._install(block, victim_slot, dirty, kind)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def remove(self, block: int) -> Optional[Tuple[bool, int]]:
        slot = self._slot_of(block)
        if slot < 0:
            return None
        dirty = bool(self.dirty[slot])
        kind = int(self.kind[slot])
        self.tags[slot] = -1
        self.dirty[slot] = 0
        self.stamp[slot] = -1
        self.stats_array[5] += 1
        return dirty, kind

    def sweep(self, block: int) -> bool:
        removed = self.remove(block)
        if removed is None:
            return False
        self.stats_array[6] += 1
        return True

    def sweep_run(self, blocks: Sequence[int]) -> int:
        dropped = 0
        for block in blocks:
            slot = self._slot_of(block)
            if slot < 0:
                continue
            self.tags[slot] = -1
            self.dirty[slot] = 0
            self.stamp[slot] = -1
            dropped += 1
        self.stats_array[5] += dropped
        self.stats_array[6] += dropped
        return dropped

    def clear(self) -> None:
        # In place: the native kernel holds pointers to these arrays.
        self.tags[:] = -1
        self.dirty[:] = 0
        self.kind[:] = 0
        self.stamp[:] = -1
