"""Per-cache hit/miss/eviction counters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Event counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions_clean: int = 0
    evictions_dirty: int = 0
    invalidations: int = 0
    sweeps: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def evictions(self) -> int:
        return self.evictions_clean + self.evictions_dirty

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.invalidations = 0
        self.sweeps = 0
