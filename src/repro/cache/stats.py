"""Per-cache hit/miss/eviction counters."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CacheStats:
    """Event counters for one cache instance.

    Every field is a plain int bumped directly on the hot path; the
    observability layer publishes them through pull collectors (see
    :meth:`SetAssociativeCache.publish_metrics`), so adding a field here
    automatically reaches ``reset``/``as_dict`` and the metrics registry.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions_clean: int = 0
    evictions_dirty: int = 0
    invalidations: int = 0
    sweeps: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def evictions(self) -> int:
        return self.evictions_clean + self.evictions_dirty

    def as_dict(self) -> dict:
        """Field name -> value, derived from the dataclass fields."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        # Derived from the field list so a newly added counter can never
        # be missed (a hand-maintained list silently survived warmup).
        for f in fields(self):
            setattr(self, f.name, f.default)
