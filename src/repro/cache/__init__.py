"""Cache hierarchy: set-associative caches, victim LLC, sweep support."""

from repro.cache.set_assoc import EvictedLine, SetAssociativeCache
from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.cache.stats import CacheStats

__all__ = [
    "AccessLevel",
    "CacheHierarchy",
    "CacheStats",
    "EvictedLine",
    "SetAssociativeCache",
]
