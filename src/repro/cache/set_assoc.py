"""Set-associative cache with LRU replacement and way partitioning.

The cache identifies lines by *block address* (byte address >> 6). The
set index is ``block % num_sets`` and the full block address serves as
the tag, so no aliasing is possible.

Way masks implement both DDIO way restriction (NIC write-allocations are
confined to a subset of LLC ways) and the LLC partitioning of the
collocation study (§VI-E): ``insert`` chooses its victim only among the
allowed ways, while lookups always probe every way — matching real
hardware, where way partitioning restricts fills, not hits.

Lines carry a :class:`~repro.mem.layout.RegionKind` so that dirty
evictions can be attributed to RX/TX/Other traffic without an address
lookup on the hot path.

Hot-path layout
---------------

``insert``/``access`` dominate whole-simulation runtime (the per-block
bookkeeping problem the Sweeper paper's eviction-path analysis predicts),
so both are specialized per replacement policy once at construction:

* LRU recency is the *insertion order of the per-set dict* (oldest
  first): a hit pops and re-appends its entry, and the LRU victim of a
  full set is ``next(iter(set_map))`` — O(1) instead of an O(ways)
  timestamp scan.
* Random replacement of a full set draws the victim way with a single
  LCG step instead of reservoir-sampling one LCG step per allowed way.
* Invalid-way scans only run while a set still has free slots
  (``len(set_map) < ways``); steady-state full sets skip them entirely.

``access_run``/``sweep_run`` batch the contiguous packet-block loops of
the trace engine, hoisting attribute lookups and statistics updates out
of the per-block loop.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.cache.stats import CacheStats
from repro.mem.layout import RegionKind
from repro.params import CacheParams


class EvictedLine(NamedTuple):
    """A line removed from a cache to make room for another.

    ``kind`` is the raw :class:`RegionKind` integer value; hot paths keep
    it as an int to avoid enum construction overhead (IntEnum members
    compare and hash equal to their values, so lookups like
    ``EVICT_CATEGORY[kind]`` work either way).
    """

    block: int
    dirty: bool
    kind: int


class SetAssociativeCache:
    """Set-associative cache keyed by block address (LRU or random)."""

    def __init__(
        self, params: CacheParams, name: str = "cache", seed: int = 0x5EED
    ) -> None:
        self.params = params
        self.name = name
        self.num_sets = params.num_sets
        self.ways = params.ways
        self.stats = CacheStats()
        self._random_replacement = params.replacement == "random"
        # Deterministic 32-bit LCG for random victim selection; a numpy
        # Generator is far too slow for a per-insert draw.
        self._lcg = (seed * 2654435761) & 0xFFFFFFFF or 1
        n = self.num_sets * self.ways
        # Per-set tag->slot map plus flat per-slot metadata arrays. Slot
        # index is set_index * ways + way. For LRU caches the map is kept
        # in recency order, oldest entry first.
        self._maps: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tags: List[int] = [-1] * n
        self._dirty = bytearray(n)
        self._kind = bytearray(n)
        # Replacement-policy specialization, chosen once per instance.
        if self._random_replacement:
            self.access = self._access_random
            self.access_kind = self._access_kind_random
            self.insert = self._insert_random
        else:
            self.access = self._access_lru
            self.access_kind = self._access_kind_lru
            self.insert = self._insert_lru

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def contains(self, block: int) -> bool:
        return block in self._maps[block % self.num_sets]

    def is_dirty(self, block: int) -> bool:
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            raise ConfigError(f"{self.name}: block {block} not present")
        return bool(self._dirty[slot])

    def kind_of(self, block: int) -> RegionKind:
        return RegionKind(self.kind_raw_of(block))

    def kind_raw_of(self, block: int) -> int:
        """Raw integer kind of a resident block (hot-path variant)."""
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            raise ConfigError(f"{self.name}: block {block} not present")
        return self._kind[slot]

    def way_of(self, block: int) -> Optional[int]:
        """Way the block resides in, or ``None`` if absent."""
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            return None
        return slot % self.ways

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(m) for m in self._maps)

    def occupancy_by_kind(self) -> Dict[RegionKind, int]:
        out = {k: 0 for k in RegionKind}
        for m in self._maps:
            for slot in m.values():
                out[RegionKind(self._kind[slot])] += 1
        return out

    def occupancy_in_ways(self, ways: Sequence[int]) -> int:
        """Valid lines resident in a way subset (e.g. the DDIO ways)."""
        allowed = set(ways)
        n_ways = self.ways
        return sum(
            1 for m in self._maps for slot in m.values() if slot % n_ways in allowed
        )

    def occupancy_by_way(self) -> List[int]:
        """Valid lines per way index (length ``self.ways``)."""
        counts = [0] * self.ways
        n_ways = self.ways
        for m in self._maps:
            for slot in m.values():
                counts[slot % n_ways] += 1
        return counts

    def publish_metrics(self, registry) -> None:
        """Register pull collectors exposing this cache's counters.

        The hot path keeps bumping the raw :class:`CacheStats` ints; the
        collector copies them into ``cache_events_total{cache,event}``
        (one event label per stats field) and ``cache_hit_rate{cache}``
        only when the registry is sampled — an epoch boundary, never the
        per-access path.
        """
        events = registry.counter(
            "cache_events_total",
            "Per-cache event counters (hits, misses, evictions, sweeps)",
            labels=("cache", "event"),
        )
        hit_rate = registry.gauge(
            "cache_hit_rate",
            "Cumulative hit rate since the last stats reset",
            labels=("cache",),
        )

        def collect(_registry, cache=self) -> None:
            stats = cache.stats
            for event, value in stats.as_dict().items():
                events.labels(cache=cache.name, event=event).set_total(value)
            hit_rate.labels(cache=cache.name).set(stats.hit_rate)

        registry.register_collector(collect)

    def resident_blocks(self) -> List[int]:
        blocks: List[int] = []
        for m in self._maps:
            blocks.extend(m.keys())
        return blocks

    # ------------------------------------------------------------------
    # probes (``access`` is bound per replacement policy in __init__)
    # ------------------------------------------------------------------

    def _access_lru(self, block: int, write: bool = False) -> bool:
        """Probe for ``block``; on hit refresh LRU (and dirty if write).

        Returns True on hit. Records hit/miss statistics; a miss performs
        no allocation — the caller decides where the fill goes.
        """
        m = self._maps[block % self.num_sets]
        slot = m.pop(block, None)
        if slot is None:
            self.stats.misses += 1
            return False
        m[block] = slot
        self.stats.hits += 1
        if write:
            self._dirty[slot] = 1
        return True

    def _access_random(self, block: int, write: bool = False) -> bool:
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        if write:
            self._dirty[slot] = 1
        return True

    def _access_kind_lru(self, block: int, write: bool = False) -> Optional[int]:
        """:meth:`access` fused with :meth:`kind_raw_of`.

        Returns the resident line's raw kind on a hit, None on a miss;
        statistics and LRU/dirty updates match a plain ``access`` call.
        """
        m = self._maps[block % self.num_sets]
        slot = m.pop(block, None)
        if slot is None:
            self.stats.misses += 1
            return None
        m[block] = slot
        self.stats.hits += 1
        if write:
            self._dirty[slot] = 1
        return self._kind[slot]

    def _access_kind_random(self, block: int, write: bool = False) -> Optional[int]:
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if write:
            self._dirty[slot] = 1
        return self._kind[slot]

    def access_run(self, start: int, n: int, write: bool = False) -> List[int]:
        """Probe ``n`` consecutive blocks; returns the missed ones.

        Batched variant of :meth:`access` for contiguous packet buffers:
        hits refresh recency/dirty state exactly as individual calls
        would, statistics are recorded in one update, and the caller
        resolves the returned misses.
        """
        num_sets = self.num_sets
        maps = self._maps
        dirty = self._dirty
        missed: List[int] = []
        append_missed = missed.append
        if self._random_replacement:
            for block in range(start, start + n):
                slot = maps[block % num_sets].get(block)
                if slot is None:
                    append_missed(block)
                elif write:
                    dirty[slot] = 1
        else:
            for block in range(start, start + n):
                m = maps[block % num_sets]
                slot = m.pop(block, None)
                if slot is None:
                    append_missed(block)
                    continue
                m[block] = slot
                if write:
                    dirty[slot] = 1
        stats = self.stats
        stats.hits += n - len(missed)
        stats.misses += len(missed)
        return missed

    # ------------------------------------------------------------------
    # fills (``insert`` is bound per replacement policy in __init__)
    # ------------------------------------------------------------------

    def _insert_lru(
        self,
        block: int,
        dirty: bool,
        kind: int,
        way_mask: Optional[Sequence[int]] = None,
        prefer_invalid: bool = True,
    ) -> Optional[EvictedLine]:
        """Allocate ``block``, evicting the LRU line among allowed ways.

        If the block is already present it is updated in place (dirty is
        OR-ed in) regardless of the mask, as a hardware fill would hit the
        existing line. Returns the evicted line, if any. Invalid ways are
        taken first (LRU treats them as oldest regardless of
        ``prefer_invalid``).
        """
        ways = self.ways
        m = self._maps[block % self.num_sets]
        slot = m.pop(block, None)
        if slot is not None:
            m[block] = slot
            if dirty:
                self._dirty[slot] = 1
            self._kind[slot] = kind
            return None

        base = (block % self.num_sets) * ways
        tags = self._tags
        victim_slot = -1
        if len(m) < ways:
            # The set has free slots; fill the first invalid allowed way.
            if way_mask is None:
                victim_slot = tags.index(-1, base, base + ways)
            else:
                for way in way_mask:
                    if tags[base + way] == -1:
                        victim_slot = base + way
                        break
        if victim_slot < 0:
            if way_mask is None:
                # Oldest entry of the (full) set: first key in the map.
                victim_slot = m[next(iter(m))]
            else:
                # Oldest resident line among the allowed ways.
                allowed = set(way_mask)
                for slot in m.values():
                    if slot - base in allowed:
                        victim_slot = slot
                        break
                if victim_slot < 0:
                    raise ConfigError(
                        f"{self.name}: empty way mask for insert"
                    )

        # Install in victim_slot (inlined from the insert epilogue shared
        # with _insert_random; this is the hottest code in the simulator).
        stats = self.stats
        evicted: Optional[EvictedLine] = None
        old_tag = tags[victim_slot]
        if old_tag != -1:
            old_dirty = self._dirty[victim_slot]
            evicted = tuple.__new__(
                EvictedLine, (old_tag, bool(old_dirty), self._kind[victim_slot])
            )
            del m[old_tag]
            if old_dirty:
                stats.evictions_dirty += 1
            else:
                stats.evictions_clean += 1
        m[block] = victim_slot
        tags[victim_slot] = block
        self._dirty[victim_slot] = 1 if dirty else 0
        self._kind[victim_slot] = kind
        stats.insertions += 1
        return evicted

    def _insert_random(
        self,
        block: int,
        dirty: bool,
        kind: int,
        way_mask: Optional[Sequence[int]] = None,
        prefer_invalid: bool = True,
    ) -> Optional[EvictedLine]:
        """Allocate ``block``, evicting a uniform-random allowed way.

        ``prefer_invalid`` (default) takes the first invalid allowed way
        before drawing — how a fill engine targets its own invalidated
        slots (e.g. the NIC reusing swept buffers). With
        ``prefer_invalid=False`` the victim is drawn uniformly over *all*
        allowed ways, so a fill only lands on an invalid way
        proportionally — this keeps collocated tenants' victim fills from
        vacuuming up every slot a sweep frees.
        """
        ways = self.ways
        m = self._maps[block % self.num_sets]
        slot = m.get(block)
        if slot is not None:
            if dirty:
                self._dirty[slot] = 1
            self._kind[slot] = kind
            return None

        base = (block % self.num_sets) * ways
        tags = self._tags
        victim_slot = -1
        if prefer_invalid and len(m) < ways:
            if way_mask is None:
                victim_slot = tags.index(-1, base, base + ways)
            else:
                for way in way_mask:
                    if tags[base + way] == -1:
                        victim_slot = base + way
                        break
        if victim_slot < 0:
            # A full set (or prefer_invalid=False) needs one uniform
            # draw over the allowed ways; the LCG's upper bits decide.
            lcg = (self._lcg * 1103515245 + 12345) & 0xFFFFFFFF
            self._lcg = lcg
            if way_mask is None:
                victim_slot = base + (lcg >> 16) % ways
            else:
                if not way_mask:
                    raise ConfigError(
                        f"{self.name}: empty way mask for insert"
                    )
                victim_slot = base + way_mask[(lcg >> 16) % len(way_mask)]

        # Install in victim_slot (same inlined epilogue as _insert_lru).
        stats = self.stats
        evicted: Optional[EvictedLine] = None
        old_tag = tags[victim_slot]
        if old_tag != -1:
            old_dirty = self._dirty[victim_slot]
            evicted = tuple.__new__(
                EvictedLine, (old_tag, bool(old_dirty), self._kind[victim_slot])
            )
            del m[old_tag]
            if old_dirty:
                stats.evictions_dirty += 1
            else:
                stats.evictions_clean += 1
        m[block] = victim_slot
        tags[victim_slot] = block
        self._dirty[victim_slot] = 1 if dirty else 0
        self._kind[victim_slot] = kind
        stats.insertions += 1
        return evicted

    def remove(self, block: int) -> Optional[Tuple[bool, int]]:
        """Remove the block, returning its (dirty, raw kind), or None.

        Used for coherence invalidations and ownership transfers. No
        writeback is implied — the caller owns the dirty data that comes
        back.
        """
        mapping = self._maps[block % self.num_sets]
        slot = mapping.pop(block, None)
        if slot is None:
            return None
        dirty = bool(self._dirty[slot])
        kind = self._kind[slot]
        self._tags[slot] = -1
        self._dirty[slot] = 0
        self.stats.invalidations += 1
        return dirty, kind

    def sweep(self, block: int) -> bool:
        """Invalidate without writeback (the clsweep operation).

        Returns True if a line was dropped. Dirty data is discarded —
        this is the whole point of Sweeper.
        """
        removed = self.remove(block)
        if removed is None:
            return False
        self.stats.sweeps += 1
        return True

    def sweep_run(self, blocks: Sequence[int]) -> int:
        """Sweep every block of a buffer; returns lines dropped.

        Batched variant of :meth:`sweep` for contiguous packet buffers;
        statistics match the equivalent sequence of individual sweeps.
        """
        num_sets = self.num_sets
        maps = self._maps
        tags = self._tags
        dirty = self._dirty
        dropped = 0
        for block in blocks:
            slot = maps[block % num_sets].pop(block, None)
            if slot is None:
                continue
            tags[slot] = -1
            dirty[slot] = 0
            dropped += 1
        self.stats.invalidations += dropped
        self.stats.sweeps += dropped
        return dropped

    def clear(self) -> None:
        for m in self._maps:
            m.clear()
        n = self.num_sets * self.ways
        self._tags = [-1] * n
        self._dirty = bytearray(n)
        self._kind = bytearray(n)
