"""Set-associative cache with LRU replacement and way partitioning.

The cache identifies lines by *block address* (byte address >> 6). The
set index is ``block % num_sets`` and the full block address serves as
the tag, so no aliasing is possible.

Way masks implement both DDIO way restriction (NIC write-allocations are
confined to a subset of LLC ways) and the LLC partitioning of the
collocation study (§VI-E): ``insert`` chooses its victim only among the
allowed ways, while lookups always probe every way — matching real
hardware, where way partitioning restricts fills, not hits.

Lines carry a :class:`~repro.mem.layout.RegionKind` so that dirty
evictions can be attributed to RX/TX/Other traffic without an address
lookup on the hot path.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.cache.stats import CacheStats
from repro.mem.layout import RegionKind
from repro.params import CacheParams


class EvictedLine(NamedTuple):
    """A line removed from a cache to make room for another.

    ``kind`` is the raw :class:`RegionKind` integer value; hot paths keep
    it as an int to avoid enum construction overhead (IntEnum members
    compare and hash equal to their values, so lookups like
    ``EVICT_CATEGORY[kind]`` work either way).
    """

    block: int
    dirty: bool
    kind: int


class SetAssociativeCache:
    """LRU set-associative cache keyed by block address."""

    def __init__(
        self, params: CacheParams, name: str = "cache", seed: int = 0x5EED
    ) -> None:
        self.params = params
        self.name = name
        self.num_sets = params.num_sets
        self.ways = params.ways
        self.stats = CacheStats()
        self._random_replacement = params.replacement == "random"
        # Deterministic 32-bit LCG for random victim selection; a numpy
        # Generator is far too slow for a per-insert draw.
        self._lcg = (seed * 2654435761) & 0xFFFFFFFF or 1
        n = self.num_sets * self.ways
        # Per-set tag->slot map plus flat per-slot metadata arrays. Slot
        # index is set_index * ways + way.
        self._maps: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tags: List[int] = [-1] * n
        self._dirty = bytearray(n)
        self._kind = bytearray(n)
        self._stamp: List[int] = [0] * n
        self._clock = 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def set_index(self, block: int) -> int:
        return block % self.num_sets

    def contains(self, block: int) -> bool:
        return block in self._maps[block % self.num_sets]

    def is_dirty(self, block: int) -> bool:
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            raise ConfigError(f"{self.name}: block {block} not present")
        return bool(self._dirty[slot])

    def kind_of(self, block: int) -> RegionKind:
        return RegionKind(self.kind_raw_of(block))

    def kind_raw_of(self, block: int) -> int:
        """Raw integer kind of a resident block (hot-path variant)."""
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            raise ConfigError(f"{self.name}: block {block} not present")
        return self._kind[slot]

    def way_of(self, block: int) -> Optional[int]:
        """Way the block resides in, or ``None`` if absent."""
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            return None
        return slot % self.ways

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(m) for m in self._maps)

    def occupancy_by_kind(self) -> Dict[RegionKind, int]:
        out = {k: 0 for k in RegionKind}
        for m in self._maps:
            for slot in m.values():
                out[RegionKind(self._kind[slot])] += 1
        return out

    def resident_blocks(self) -> List[int]:
        blocks: List[int] = []
        for m in self._maps:
            blocks.extend(m.keys())
        return blocks

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def access(self, block: int, write: bool = False) -> bool:
        """Probe for ``block``; on hit refresh LRU (and dirty if write).

        Returns True on hit. Records hit/miss statistics; a miss performs
        no allocation — the caller decides where the fill goes.
        """
        slot = self._maps[block % self.num_sets].get(block)
        if slot is None:
            self.stats.misses += 1
            return False
        self.stats.hits += 1
        self._stamp[slot] = self._clock
        self._clock += 1
        if write:
            self._dirty[slot] = 1
        return True

    def insert(
        self,
        block: int,
        dirty: bool,
        kind: int,
        way_mask: Optional[Sequence[int]] = None,
        prefer_invalid: bool = True,
    ) -> Optional[EvictedLine]:
        """Allocate ``block``, evicting a victim among the allowed ways.

        If the block is already present it is updated in place (dirty is
        OR-ed in) regardless of the mask, as a hardware fill would hit the
        existing line. Returns the evicted line, if any. Victim choice is
        LRU or uniform-random per the configured replacement policy.

        ``prefer_invalid`` (default) takes the first invalid way before
        considering occupied ones — how a fill engine targets its own
        invalidated slots (e.g. the NIC reusing swept buffers). With
        ``prefer_invalid=False`` under random replacement, the victim is
        drawn uniformly over *all* allowed ways, so a fill only lands on
        an invalid way proportionally — this keeps collocated tenants'
        victim fills from vacuuming up every slot a sweep frees.
        (LRU treats invalid ways as oldest either way.)
        """
        mapping = self._maps[block % self.num_sets]
        slot = mapping.get(block)
        if slot is not None:
            self._stamp[slot] = self._clock
            self._clock += 1
            if dirty:
                self._dirty[slot] = 1
            self._kind[slot] = kind
            return None

        base = (block % self.num_sets) * self.ways
        tags = self._tags
        stamps = self._stamp
        ways = range(self.ways) if way_mask is None else way_mask
        victim_slot = -1
        if self._random_replacement:
            candidates = 0
            lcg = self._lcg
            for way in ways:
                s = base + way
                if prefer_invalid and tags[s] == -1:
                    victim_slot = s
                    break
                # Reservoir-sample one allowed way with the LCG stream.
                candidates += 1
                lcg = (lcg * 1103515245 + 12345) & 0xFFFFFFFF
                if victim_slot < 0 or lcg % candidates == 0:
                    victim_slot = s
            self._lcg = lcg
        else:
            victim_stamp = None
            for way in ways:
                s = base + way
                if tags[s] == -1:
                    victim_slot = s
                    break
                if victim_stamp is None or stamps[s] < victim_stamp:
                    victim_slot = s
                    victim_stamp = stamps[s]
        if victim_slot < 0:
            raise ConfigError(f"{self.name}: empty way mask for insert")

        evicted: Optional[EvictedLine] = None
        old_tag = tags[victim_slot]
        if old_tag != -1:
            old_dirty = self._dirty[victim_slot]
            evicted = EvictedLine(old_tag, bool(old_dirty), self._kind[victim_slot])
            del mapping[old_tag]
            if old_dirty:
                self.stats.evictions_dirty += 1
            else:
                self.stats.evictions_clean += 1

        mapping[block] = victim_slot
        tags[victim_slot] = block
        self._dirty[victim_slot] = 1 if dirty else 0
        self._kind[victim_slot] = kind
        stamps[victim_slot] = self._clock
        self._clock += 1
        self.stats.insertions += 1
        return evicted

    def remove(self, block: int) -> Optional[Tuple[bool, int]]:
        """Remove the block, returning its (dirty, raw kind), or None.

        Used for coherence invalidations and ownership transfers. No
        writeback is implied — the caller owns the dirty data that comes
        back.
        """
        mapping = self._maps[block % self.num_sets]
        slot = mapping.pop(block, None)
        if slot is None:
            return None
        dirty = bool(self._dirty[slot])
        kind = self._kind[slot]
        self._tags[slot] = -1
        self._dirty[slot] = 0
        self.stats.invalidations += 1
        return dirty, kind

    def sweep(self, block: int) -> bool:
        """Invalidate without writeback (the clsweep operation).

        Returns True if a line was dropped. Dirty data is discarded —
        this is the whole point of Sweeper.
        """
        removed = self.remove(block)
        if removed is None:
            return False
        self.stats.sweeps += 1
        return True

    def clear(self) -> None:
        for m in self._maps:
            m.clear()
        n = self.num_sets * self.ways
        self._tags = [-1] * n
        self._dirty = bytearray(n)
        self._kind = bytearray(n)
        self._stamp = [0] * n
