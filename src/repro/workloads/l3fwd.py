"""L3 forwarder network function workload.

Models the paper's DPDK-derived L3fwd port: per packet, the CPU reads
the packet, probes the forwarding table, and transmits the (copied)
packet. Two table provisioning points from the appendix:

* ``num_rules=16384`` — the table barely fits the private L2, used in
  §IV-B/§VI-C to increase cache pressure;
* ``num_rules=128`` — L1-resident, used in §VI-E so that all LLC and
  memory pressure from the NF is due to packet RX/TX alone.

The default TX path copies the packet (``zero_copy=False``), matching
the paper's evaluated configuration; ``zero_copy=True`` models the
receive-to-transmit NF pattern of §V-D, where the RX buffer itself is
handed to the NIC and only the NIC-driven sweep applies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.mem.layout import AddressSpace, RegionKind
from repro.params import CACHE_BLOCK_BYTES
from repro.workloads.base import RequestOps, Workload


@dataclass(frozen=True)
class L3fwdParams:
    """Forwarding-table provisioning."""

    num_rules: int = 16384
    rule_bytes: int = 64
    lookups_per_packet: int = 2
    packet_blocks: int = 16
    zero_copy: bool = False

    def __post_init__(self) -> None:
        if self.num_rules <= 0 or self.lookups_per_packet <= 0:
            raise ConfigError("rules and lookups must be positive")
        if self.packet_blocks <= 0:
            raise ConfigError("packet_blocks must be positive")

    @property
    def table_bytes(self) -> int:
        blocks = -(-self.num_rules * self.rule_bytes // CACHE_BLOCK_BYTES)
        return blocks * CACHE_BLOCK_BYTES

    def l1_resident(self) -> "L3fwdParams":
        """The §VI-E variant whose dataset fits in the L1 cache."""
        return replace(self, num_rules=128, lookups_per_packet=1)


class L3fwdWorkload(Workload):
    """Per-packet forwarding with a shared rule table."""

    name = "L3FWD"
    # Calibrated against Figure 2a's ~45 Mrps ceiling on 24 cores: the
    # Scale-Out-NUMA-ported forwarder spends ~1.7k cycles per packet on
    # protocol handling, header rewrite, and the packet copy.
    base_cycles = 700.0
    cycles_per_block = 10.0

    def __init__(self, params: Optional[L3fwdParams] = None) -> None:
        self.params = params if params is not None else L3fwdParams()
        self._built = False

    def build(
        self,
        space: AddressSpace,
        num_cores: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        p = self.params
        self._rng = rng if rng is not None else np.random.default_rng(13)
        self._table = space.allocate("l3fwd_table", p.table_bytes, RegionKind.APP)
        self._table_blocks = self._table.num_blocks
        self._lookup_batch = np.empty(0, dtype=np.int64)
        self._pos = 0
        self._built = True

    def _next_lookup_block(self) -> int:
        if self._pos >= len(self._lookup_batch):
            self._lookup_batch = self._rng.integers(
                0, self._table_blocks, size=8192, dtype=np.int64
            )
            self._pos = 0
        block = self._table.start_block + int(self._lookup_batch[self._pos])
        self._pos += 1
        return block

    def request(self, core: int) -> RequestOps:
        if not self._built:
            raise ConfigError("L3fwdWorkload.build() was never called")
        p = self.params
        reads = [self._next_lookup_block() for _ in range(p.lookups_per_packet)]
        # Zero-copy NFs transmit the RX buffer itself: no TX copy blocks.
        response = 0 if p.zero_copy else p.packet_blocks
        return RequestOps(app_reads=reads, response_blocks=response)
