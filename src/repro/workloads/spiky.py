"""Spiky-service KVS microbenchmark (§VI-F, Figure 10).

A KVS where each request, with small probability, suffers an extra
processing delay drawn uniformly from [1, 100] µs, causing temporal
queue buildups — functionally equivalent to packet arrival bursts. Used
to demonstrate that shallow buffering trades throughput and drop
resilience, and that Sweeper removes the penalty of deep buffers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nic.arrivals import SpikeSampler
from repro.workloads.kvs import KvsParams, KvsWorkload


class SpikyKvsWorkload(KvsWorkload):
    """KVS with occasional long service-time spikes."""

    name = "SpikyKVS"

    def __init__(
        self,
        params: Optional[KvsParams] = None,
        spike_probability: float = 0.001,
        spike_low_us: float = 1.0,
        spike_high_us: float = 100.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(params)
        self._spikes = SpikeSampler(
            probability=spike_probability,
            low_us=spike_low_us,
            high_us=spike_high_us,
            rng=rng if rng is not None else np.random.default_rng(23),
        )

    def cache_key(self) -> str:
        s = self._spikes
        return (
            f"{type(self).__name__}({self.params!r}, "
            f"spike_probability={s.probability!r}, "
            f"spike_low_us={s.low_us!r}, spike_high_us={s.high_us!r})"
        )

    def extra_delay_us(self) -> float:
        return self._spikes.sample_extra_delay_us()

    def mean_extra_delay_us(self) -> float:
        return self._spikes.mean_extra_delay_us()
