"""MICA-shaped key-value store workload.

Models the memory behaviour of the paper's MICA KVS port (appendix):
2.4 M key-value pairs, 1 M hash buckets, a 256 MB circular log, zipf-0.99
key popularity, and a write-heavy 5/95 GET/SET mix. Item size (512 B or
1 KB) determines both the log footprint touched per operation and —
matched by the experiment configs — the network packet size.

Per request:

* one bucket probe (a 64 B read in the bucket array, hash-distributed);
* GET — read the item's blocks from its current log position; the
  response carries the item (``response_blocks`` = item blocks);
* SET — write the item's blocks. By default values are fixed-size and
  updated *in place* at the key's current log position (the HERD/MICA
  fast path for same-size values), so zipf-hot items stay cache-resident
  and only the cold tail reaches memory — this matches the app-side
  memory traffic the paper's Figure 1b bandwidth/throughput ratios imply
  (~10 blocks/request). ``update_in_place=False`` switches to log-head
  appends (streaming writes) for ablation. The response is a one-block
  ack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.mem.layout import AddressSpace, RegionKind
from repro.params import CACHE_BLOCK_BYTES, MiB
from repro.workloads.base import RequestOps, Workload
from repro.workloads.zipf import ZipfGenerator


@dataclass(frozen=True)
class KvsParams:
    """MICA-style store provisioning (paper appendix defaults)."""

    num_keys: int = 2_400_000
    num_buckets: int = 1_000_000
    log_bytes: int = 256 * MiB
    item_bytes: int = 1024
    get_fraction: float = 0.05
    zipf_skew: float = 0.99
    update_in_place: bool = True

    def __post_init__(self) -> None:
        if self.num_keys <= 0 or self.num_buckets <= 0:
            raise ConfigError("key and bucket counts must be positive")
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ConfigError("get_fraction must be in [0, 1]")
        if self.item_bytes <= 0 or self.log_bytes <= 0:
            raise ConfigError("item and log sizes must be positive")
        if self.item_blocks > self.log_blocks:
            raise ConfigError("log cannot hold a single item")

    @property
    def item_blocks(self) -> int:
        return (self.item_bytes + CACHE_BLOCK_BYTES - 1) // CACHE_BLOCK_BYTES

    @property
    def log_blocks(self) -> int:
        return self.log_bytes // CACHE_BLOCK_BYTES

    def scaled(self, factor: float) -> "KvsParams":
        """Shrink the dataset with the machine (see SystemConfig.scaled)."""
        if not 0.0 < factor <= 1.0:
            raise ConfigError("scale factor must be in (0, 1]")
        if factor == 1.0:
            return self
        return replace(
            self,
            num_keys=max(1024, round(self.num_keys * factor)),
            num_buckets=max(256, round(self.num_buckets * factor)),
            log_bytes=max(MiB, round(self.log_bytes * factor)),
        )


class KvsWorkload(Workload):
    """Request generator reproducing MICA's memory traffic shape."""

    name = "KVS"
    base_cycles = 350.0
    cycles_per_block = 8.0

    def __init__(self, params: Optional[KvsParams] = None) -> None:
        self.params = params if params is not None else KvsParams()
        self._built = False
        self._log_head = 0
        self.gets = 0
        self.sets = 0

    def build(
        self,
        space: AddressSpace,
        num_cores: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        p = self.params
        rng = rng if rng is not None else np.random.default_rng(11)
        self._rng = rng
        self._buckets = space.allocate(
            "kvs_buckets", p.num_buckets * CACHE_BLOCK_BYTES, RegionKind.APP
        )
        self._log = space.allocate("kvs_log", p.log_bytes, RegionKind.APP)
        self._zipf = ZipfGenerator(p.num_keys, p.zipf_skew, rng=rng)
        # Populate: every key gets an initial log position, as if the
        # store was warmed by inserting all keys once.
        slots = p.log_blocks // p.item_blocks
        if slots <= 0:
            raise ConfigError("log cannot hold a single item")
        positions = rng.integers(0, slots, size=p.num_keys, dtype=np.int64)
        self._key_offset = positions * p.item_blocks
        # Key -> bucket mapping: a fixed random hash.
        self._key_bucket = rng.integers(
            0, p.num_buckets, size=p.num_keys, dtype=np.int64
        )
        self._log_head = 0
        self._op_batch = np.empty(0)
        self._op_pos = 0
        self._built = True

    def _next_is_get(self) -> bool:
        if self._op_pos >= len(self._op_batch):
            self._op_batch = self._rng.random(8192)
            self._op_pos = 0
        is_get = bool(self._op_batch[self._op_pos] < self.params.get_fraction)
        self._op_pos += 1
        return is_get

    def _append_to_log(self, key: int) -> int:
        """Advance the circular log head by one item; returns its base block."""
        p = self.params
        if self._log_head + p.item_blocks > p.log_blocks:
            self._log_head = 0
        start = self._log_head
        self._log_head += p.item_blocks
        self._key_offset[key] = start
        return self._log.start_block + start

    def request(self, core: int) -> RequestOps:
        if not self._built:
            raise ConfigError("KvsWorkload.build() was never called")
        p = self.params
        key = self._zipf.sample()
        bucket_block = self._buckets.start_block + int(self._key_bucket[key])
        # Item blocks are contiguous, so they travel as (start, n) runs
        # and take the engines' batched access path.
        if self._next_is_get():
            self.gets += 1
            base = self._log.start_block + int(self._key_offset[key])
            return RequestOps(
                app_reads=[bucket_block],
                read_runs=[(base, p.item_blocks)],
                response_blocks=p.item_blocks,
            )
        self.sets += 1
        if p.update_in_place:
            base = self._log.start_block + int(self._key_offset[key])
        else:
            base = self._append_to_log(key)
        return RequestOps(
            app_reads=[bucket_block],
            write_runs=[(base, p.item_blocks)],
            response_blocks=1,
        )
