"""Zipfian key-popularity sampling (the paper uses zipf 0.99).

Sampling uses an exact inverse-CDF over the full key universe, vectorized
with numpy. Keys are drawn in batches and handed out one at a time so the
per-request cost is a single array index.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError


class ZipfGenerator:
    """Exact Zipf(s) sampler over ``num_items`` ranked items.

    Rank r (0-based) has probability proportional to 1/(r+1)^s. Item
    identities are shuffled so that popular keys are spread over the
    key space, as a hash-distributed store would see them.
    """

    def __init__(
        self,
        num_items: int,
        skew: float = 0.99,
        rng: Optional[np.random.Generator] = None,
        batch_size: int = 65536,
        shuffle: bool = True,
    ) -> None:
        if num_items <= 0:
            raise ConfigError("num_items must be positive")
        if skew < 0:
            raise ConfigError("zipf skew must be non-negative")
        self.num_items = num_items
        self.skew = skew
        self._rng = rng if rng is not None else np.random.default_rng(7)
        self._batch_size = batch_size
        weights = 1.0 / np.power(
            np.arange(1, num_items + 1, dtype=np.float64), skew
        )
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if shuffle:
            self._perm = self._rng.permutation(num_items)
        else:
            self._perm = np.arange(num_items)
        self._batch = np.empty(0, dtype=np.int64)
        self._pos = 0

    def _refill(self) -> None:
        u = self._rng.random(self._batch_size)
        ranks = np.searchsorted(self._cdf, u, side="left")
        self._batch = self._perm[ranks]
        self._pos = 0

    def sample(self) -> int:
        """Draw one item id."""
        if self._pos >= len(self._batch):
            self._refill()
        item = int(self._batch[self._pos])
        self._pos += 1
        return item

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` item ids at once."""
        if count < 0:
            raise ConfigError("count must be non-negative")
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self._perm[ranks]

    def probability_of_rank(self, rank: int) -> float:
        """P(draw == the item of popularity rank ``rank``)."""
        if not 0 <= rank < self.num_items:
            raise ConfigError("rank out of range")
        if rank == 0:
            return float(self._cdf[0])
        return float(self._cdf[rank] - self._cdf[rank - 1])
