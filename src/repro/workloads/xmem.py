"""X-Mem: the memory-intensive collocated tenant of §VI-E.

Each X-Mem process performs random accesses to a private 2 MB dataset —
larger than the aggregate private L1+L2 capacity, so its working set
lives in the LLC (or memory, once DDIO squeezes it out). The paper
reports X-Mem performance as IPC normalized to a reference
configuration; we derive IPC from the average access cost the cache
simulation measures (see ``repro.engine.analytic.xmem_ipc``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.mem.layout import AddressSpace, Region, RegionKind
from repro.params import CACHE_BLOCK_BYTES, MiB


@dataclass(frozen=True)
class XMemParams:
    """Per-process dataset provisioning."""

    dataset_bytes: int = 2 * MiB
    write_fraction: float = 0.3
    #: non-memory instructions executed per memory access
    instructions_per_access: float = 4.0

    def __post_init__(self) -> None:
        if self.dataset_bytes <= 0:
            raise ConfigError("dataset size must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")

    @property
    def dataset_blocks(self) -> int:
        return self.dataset_bytes // CACHE_BLOCK_BYTES


class XMemWorkload:
    """Random-access tenant; one private dataset per participating core."""

    name = "XMEM"

    def __init__(self, params: Optional[XMemParams] = None) -> None:
        self.params = params if params is not None else XMemParams()
        self._regions: List[Region] = []
        self._built = False

    def build(
        self,
        space: AddressSpace,
        cores: List[int],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Allocate one private dataset per core in ``cores``."""
        self._rng = rng if rng is not None else np.random.default_rng(17)
        self._cores = list(cores)
        self._regions = [
            space.allocate(
                f"xmem_dataset[{core}]",
                self.params.dataset_bytes,
                RegionKind.APP,
                owner_core=core,
            )
            for core in self._cores
        ]
        self._by_core = dict(zip(self._cores, self._regions))
        self._built = True

    def accesses(self, core: int, count: int) -> "tuple[np.ndarray, np.ndarray]":
        """``count`` random (block, is_write) accesses for one core."""
        if not self._built:
            raise ConfigError("XMemWorkload.build() was never called")
        region = self._by_core.get(core)
        if region is None:
            raise ConfigError(f"core {core} does not run X-Mem")
        offsets = self._rng.integers(
            0, region.num_blocks, size=count, dtype=np.int64
        )
        blocks = region.start_block + offsets
        writes = self._rng.random(count) < self.params.write_fraction
        return blocks, writes
