"""Workload models: MICA-shaped KVS, L3 forwarder, X-Mem, spiky KVS."""

from repro.workloads.base import RequestOps, Workload
from repro.workloads.kvs import KvsParams, KvsWorkload
from repro.workloads.l3fwd import L3fwdParams, L3fwdWorkload
from repro.workloads.xmem import XMemParams, XMemWorkload
from repro.workloads.spiky import SpikyKvsWorkload
from repro.workloads.zipf import ZipfGenerator

__all__ = [
    "KvsParams",
    "KvsWorkload",
    "L3fwdParams",
    "L3fwdWorkload",
    "RequestOps",
    "SpikyKvsWorkload",
    "Workload",
    "XMemParams",
    "XMemWorkload",
    "ZipfGenerator",
]
