"""Workload protocol shared by the trace and event engines.

A workload contributes three things to the per-request loop the engines
execute (NIC RX write → CPU packet read → application work → TX write →
NIC TX read → optional relinquish):

* its *application* memory accesses (block addresses, reads and writes);
* how many TX blocks the response occupies;
* its base CPU work in cycles (everything that is not a memory access),
  used by the analytic service-time model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.mem.layout import AddressSpace


@dataclass
class RequestOps:
    """Application-side operations of one request.

    Scattered accesses go in ``app_reads``/``app_writes``; contiguous
    spans (e.g. a KVS item's blocks) go in ``read_runs``/``write_runs``
    as ``(start_block, num_blocks)`` pairs so the engines can use their
    batched access paths. Semantically a run is identical to listing its
    blocks individually, in ascending order, after the scattered list.
    """

    app_reads: List[int] = field(default_factory=list)
    app_writes: List[int] = field(default_factory=list)
    response_blocks: int = 1
    read_runs: List[Tuple[int, int]] = field(default_factory=list)
    write_runs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def num_app_accesses(self) -> int:
        return (
            len(self.app_reads)
            + len(self.app_writes)
            + sum(n for _, n in self.read_runs)
            + sum(n for _, n in self.write_runs)
        )

    def all_read_blocks(self) -> List[int]:
        """Every read block, runs expanded (introspection/tests)."""
        out = list(self.app_reads)
        for start, n in self.read_runs:
            out.extend(range(start, start + n))
        return out

    def all_write_blocks(self) -> List[int]:
        """Every written block, runs expanded (introspection/tests)."""
        out = list(self.app_writes)
        for start, n in self.write_runs:
            out.extend(range(start, start + n))
        return out


class Workload(abc.ABC):
    """A request-driven networked application."""

    #: label used in reports
    name: str = "workload"
    #: CPU cycles of pure compute per request (no memory accesses)
    base_cycles: float = 200.0
    #: extra CPU cycles per block the request touches (copy/parse work)
    cycles_per_block: float = 6.0

    @abc.abstractmethod
    def build(
        self,
        space: AddressSpace,
        num_cores: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Allocate this workload's regions and initialize its state."""

    @abc.abstractmethod
    def request(self, core: int) -> RequestOps:
        """Generate the application accesses of the next request."""

    def reads_full_packet(self) -> bool:
        """Whether the CPU reads every block of the incoming packet."""
        return True

    def cache_key(self) -> str:
        """Deterministic identity for persistent result caching.

        Must cover everything that influences the access stream of a
        freshly built instance. The default covers the class plus its
        ``params`` dataclass; subclasses with extra constructor state
        must extend it.
        """
        return f"{type(self).__name__}({getattr(self, 'params', None)!r})"

    def extra_delay_us(self) -> float:
        """Occasional extra service delay (spiky workloads override)."""
        return 0.0

    def request_cycles(self, ops: RequestOps, packet_blocks: int) -> float:
        """Non-memory CPU work for one request, in cycles."""
        touched = ops.num_app_accesses + packet_blocks + ops.response_blocks
        return self.base_cycles + self.cycles_per_block * touched
