"""Prime+probe attacker-observer tenant (Packet Chasing style).

The observer models a collocated attacker process with no privileges
beyond running on the same socket: it owns a working set of cache-line
sized buffers that alias a *monitored* subset of LLC sets, primes the
DDIO-reachable ways of those sets with its own (clean) lines, and
periodically probes them. A probe miss means some other agent — in
steady state, overwhelmingly the NIC's DDIO write-allocations — evicted
the attacker's line: the observable leak signal. Sweeper's ``clsweep``
invalidates consumed buffers without writeback, so the NIC's next fill
lands in an invalid slot instead of evicting the attacker, which is the
mechanism this observer exists to quantify.

Determinism contract (mirrors the rest of the engine):

* the monitored sets and the probe schedule derive from ``probe_seed``
  through the same 32-bit LCG family the caches use — no global RNG;
* probes key off the *absolute* request index, so ``REPRO_EPOCH``
  chunked runs probe at identical points and stay bit-identical;
* attacker blocks are allocated strictly above every simulated region
  (``AddressSpace.total_bytes``), so they can never alias victim lines.

The observer is active only during the measure phase: it is primed right
after the post-warmup stats reset, which is also when the ground-truth
arrival baseline is taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.mem.layout import CACHE_BLOCK_BYTES, RegionKind
from repro.obs.probes import PROBE_SCHEMA_VERSION


@dataclass(frozen=True)
class ObserverConfig:
    """Attacker-observer knobs; part of a point's cache identity.

    Carried on :class:`~repro.engine.parallel.PointSpec` (``observer=``)
    rather than read from the environment so the persistent point cache
    stays sound: two runs with different observer settings must never
    share a fingerprint. ``repr(config)`` is the deterministic identity
    string appended to ``PointSpec.cache_key``.
    """

    #: number of LLC sets the attacker monitors (clamped to the LLC).
    sets: int = 16
    #: way indices to prime/probe; None = the hierarchy's DDIO way mask
    #: at activation time (the DDIO-reachable region, the default
    #: attack surface).
    ways: Optional[Tuple[int, ...]] = None
    #: requests between probes. A fixed period keeps every probe
    #: interval identical, so interval length carries zero information
    #: and the MI estimator isolates the arrival signal.
    period: int = 8
    #: optional schedule jitter: gaps drawn uniformly (seeded) from
    #: [period - jitter, period + jitter]. Off by default — deterministic
    #: CPU-driven evictions scale with interval length, so jitter couples
    #: the miss count to the interval instead of the arrivals.
    jitter: int = 0
    #: seed for monitored-set selection and the schedule jitter draw.
    probe_seed: int = 7
    #: bins per variable for the mutual-information estimator.
    mi_bins: int = 4

    def __post_init__(self) -> None:
        if self.sets < 1:
            raise ConfigError("observer sets must be >= 1")
        if self.period < 1:
            raise ConfigError("observer period must be >= 1")
        if not 0 <= self.jitter < self.period:
            raise ConfigError("observer jitter must be in [0, period)")
        if self.mi_bins < 2:
            raise ConfigError("observer mi_bins must be >= 2")
        if self.ways is not None:
            ways = tuple(self.ways)
            if not ways or any(w < 0 for w in ways):
                raise ConfigError(
                    "observer ways must be a non-empty tuple of way indices"
                )
            object.__setattr__(self, "ways", ways)


def _lcg_next(state: int) -> int:
    return (state * 1103515245 + 12345) & 0xFFFFFFFF


class PrimeProbeObserver:
    """Deterministic prime+probe tenant bound to one simulation's LLC."""

    def __init__(
        self,
        cfg: ObserverConfig,
        hier,
        arrivals_fn: Callable[[], int],
    ) -> None:
        self.cfg = cfg
        self.hier = hier
        self.llc = hier.llc
        self._arrivals_fn = arrivals_fn
        self._lcg = (cfg.probe_seed * 2654435761) & 0xFFFFFFFF or 1
        self.monitored_sets = self._choose_sets(self.llc.num_sets)
        self.probe_ways: Tuple[int, ...] = ()
        self.records: List[Dict[str, object]] = []
        self.active = False
        self.total_hits = 0
        self.total_misses = 0
        self._lines: List[Tuple[int, int]] = []  # (set_index, block)
        self._next_probe = -1
        self._last_request = 0
        self._last_arrivals = 0

    # ------------------------------------------------------------------
    # seeded choices
    # ------------------------------------------------------------------

    def _choose_sets(self, num_sets: int) -> Tuple[int, ...]:
        want = min(self.cfg.sets, num_sets)
        chosen: List[int] = []
        seen = set()
        while len(chosen) < want:
            self._lcg = _lcg_next(self._lcg)
            s = (self._lcg >> 16) % num_sets
            if s not in seen:
                seen.add(s)
                chosen.append(s)
        return tuple(sorted(chosen))

    def _schedule_next(self, now: int) -> None:
        """Next probe after ``period`` requests, optionally jittered."""
        gap = self.cfg.period
        jitter = self.cfg.jitter
        if jitter:
            self._lcg = _lcg_next(self._lcg)
            gap += (self._lcg >> 16) % (2 * jitter + 1) - jitter
        self._next_probe = now + max(1, gap)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def activate(self, space, start_index: int = 0) -> None:
        """Prime the monitored region and start the probe schedule.

        Called at measure start (after the stats reset): ``space`` is the
        simulation's :class:`~repro.mem.layout.AddressSpace`, used only
        to place attacker blocks above every real region.
        """
        ways = self.cfg.ways
        if ways is None:
            ways = tuple(self.hier.ddio_way_mask)
        if any(w >= self.llc.ways for w in ways):
            raise ConfigError(
                "observer ways exceed LLC associativity "
                f"({ways} vs {self.llc.ways} ways)"
            )
        self.probe_ways = ways
        num_sets = self.llc.num_sets
        total_blocks = -(-space.total_bytes // CACHE_BLOCK_BYTES)
        base = -(-total_blocks // num_sets) * num_sets  # multiple of sets
        self._lines = [
            (s, base + j * num_sets + s)
            for s in self.monitored_sets
            for j in range(len(ways))
        ]
        self._prime(self._lines)
        self.records = []
        self.total_hits = 0
        self.total_misses = 0
        self._last_request = start_index
        self._last_arrivals = self._arrivals_fn()
        self.active = True
        self._schedule_next(start_index - 1)

    def _prime(self, lines: List[Tuple[int, int]]) -> None:
        insert = self.llc.insert
        ways = self.probe_ways
        kind = int(RegionKind.APP)
        for _set_index, block in lines:
            # Clean insert confined to the probed ways: an evicted
            # attacker line never causes a writeback, like a real
            # attacker priming with loads.
            insert(block, False, kind, ways, True)

    # ------------------------------------------------------------------
    # hot-path hook (called by TraceSimulator.run_requests)
    # ------------------------------------------------------------------

    def tick(self, request_index: int) -> None:
        if request_index >= self._next_probe:
            self._probe(request_index)

    def _probe(self, request_index: int) -> None:
        llc_access = self.llc.access
        hits = 0
        set_misses: Dict[str, int] = {}
        missed: List[Tuple[int, int]] = []
        for line in self._lines:
            if llc_access(line[1]):
                hits += 1
            else:
                key = str(line[0])
                set_misses[key] = set_misses.get(key, 0) + 1
                missed.append(line)
        # Re-prime evicted lines so every probe starts fully primed.
        if missed:
            self._prime(missed)
        arrivals = self._arrivals_fn()
        misses = len(missed)
        self.total_hits += hits
        self.total_misses += misses
        self.records.append(
            {
                "schema": PROBE_SCHEMA_VERSION,
                "probe": len(self.records),
                "request": request_index,
                "interval": request_index - self._last_request,
                "arrivals": arrivals - self._last_arrivals,
                "hits": hits,
                "misses": misses,
                "set_misses": dict(sorted(set_misses.items())),
            }
        )
        self._last_request = request_index
        self._last_arrivals = arrivals
        self._schedule_next(request_index)

    # ------------------------------------------------------------------
    # results / observability
    # ------------------------------------------------------------------

    def leak_summary(self, engine: str) -> Dict[str, object]:
        from repro.sidechannel.analysis import leak_summary

        return leak_summary(
            self.records,
            self.cfg,
            monitored_sets=len(self.monitored_sets),
            probe_ways=self.probe_ways,
            engine=engine,
        )

    def publish_metrics(self, registry) -> None:
        """Pull-collected leak-signal counters (``repro.obs`` registry)."""
        probes = registry.counter(
            "observer_probes_total", "Prime+probe rounds executed"
        )
        hits = registry.counter(
            "observer_probe_hits_total", "Probe lines found resident"
        )
        misses = registry.counter(
            "observer_probe_misses_total",
            "Probe lines evicted since the last probe (the leak signal)",
        )
        monitored = registry.gauge(
            "observer_monitored_sets", "LLC sets the observer primes"
        )

        def collect(_registry, obs=self) -> None:
            probes.set_total(len(obs.records))
            hits.set_total(obs.total_hits)
            misses.set_total(obs.total_misses)
            monitored.set(len(obs.monitored_sets))

        registry.register_collector(collect)
