"""Leak-signal analysis over probe records.

Turns the observer's per-probe hit/miss records into the quantities the
``figS*`` experiments report:

* :func:`hit_rate_trace` — per-probe hit rate (how intact the primed
  region stayed between probes);
* :func:`per_set_eviction_counts` — which monitored sets leak (the
  spatial signal Packet Chasing uses to follow ring positions);
* :func:`binned_mutual_information` — I(misses; arrivals) in bits over
  equal-width bins: how much the probe observations reveal about the
  ground-truth packet-arrival process. DMA (no LLC injection) should
  pin this near zero, DDIO should maximize it, and DDIO+Sweeper should
  land measurably below DDIO because swept (invalid) slots absorb NIC
  fills that would otherwise evict attacker lines;
* :func:`leak_summary` — the JSON-ready digest stored on
  ``TraceResult.leak`` and surfaced in result rows.

Everything here is pure integer/float arithmetic over already-recorded
data and iterates in sorted order, so two identical simulations
serialize byte-identical summaries.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def hit_rate_trace(records: Sequence[Dict[str, object]]) -> List[float]:
    """Per-probe hit rate (1.0 = primed region fully intact)."""
    out: List[float] = []
    for record in records:
        lines = int(record["hits"]) + int(record["misses"])
        out.append(float(record["hits"]) / lines if lines else 0.0)
    return out


def per_set_eviction_counts(
    records: Sequence[Dict[str, object]],
) -> Dict[str, int]:
    """Observed attacker-line evictions per monitored set (all probes)."""
    totals: Dict[str, int] = {}
    for record in records:
        for key, count in record["set_misses"].items():  # type: ignore[union-attr]
            totals[key] = totals.get(key, 0) + int(count)
    return dict(sorted(totals.items(), key=lambda kv: int(kv[0])))


def _bin_index(value: int, lo: int, hi: int, bins: int) -> int:
    """Equal-width integer binning of ``value`` in [lo, hi] to [0, bins)."""
    if hi == lo:
        return 0
    return min(bins - 1, (value - lo) * bins // (hi - lo + 1))


def binned_mutual_information(
    xs: Sequence[int], ys: Sequence[int], bins: int
) -> float:
    """I(X; Y) in bits over equal-width binned integer samples.

    The plug-in estimator over a ``bins`` x ``bins`` contingency table.
    Deterministic: bin edges derive only from each variable's observed
    range and the accumulation iterates the table in sorted order.
    """
    n = len(xs)
    if n == 0 or len(ys) != n:
        return 0.0
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi or y_lo == y_hi:
        return 0.0  # a constant variable carries no information
    joint: Dict[Tuple[int, int], int] = {}
    px: Dict[int, int] = {}
    py: Dict[int, int] = {}
    for x, y in zip(xs, ys):
        bx = _bin_index(x, x_lo, x_hi, bins)
        by = _bin_index(y, y_lo, y_hi, bins)
        joint[(bx, by)] = joint.get((bx, by), 0) + 1
        px[bx] = px.get(bx, 0) + 1
        py[by] = py.get(by, 0) + 1
    mi = 0.0
    for (bx, by), count in sorted(joint.items()):
        mi += (count / n) * math.log2(count * n / (px[bx] * py[by]))
    return max(0.0, mi)


def leak_summary(
    records: Sequence[Dict[str, object]],
    cfg,
    monitored_sets: int,
    probe_ways: Sequence[int],
    engine: str,
) -> Dict[str, object]:
    """JSON-ready leak digest for one simulated point."""
    misses = [int(r["misses"]) for r in records]
    arrivals = [int(r["arrivals"]) for r in records]
    total_hits = sum(int(r["hits"]) for r in records)
    total_misses = sum(misses)
    lines = total_hits + total_misses
    trace = hit_rate_trace(records)
    return {
        "schema": 1,
        "probes": len(records),
        "monitored_sets": monitored_sets,
        "probe_ways": list(probe_ways),
        "period": cfg.period,
        "probe_seed": cfg.probe_seed,
        "hits": total_hits,
        "misses": total_misses,
        "hit_rate": (total_hits / lines) if lines else 0.0,
        "min_hit_rate": min(trace) if trace else 0.0,
        "arrivals": sum(arrivals),
        "mi_bits": binned_mutual_information(misses, arrivals, cfg.mi_bins),
        "mi_bins": cfg.mi_bins,
        "engine": engine,
    }
