"""Side-channel observability: a prime+probe attacker-observer tenant.

Sweeper's premise is that DDIO leaves network data lingering in the LLC;
*Packet Chasing* (PAPERS.md) shows that footprint is remotely observable
through a prime+probe cache side channel. This package quantifies
whether ``clsweep``'s invalidate-without-writeback actually shrinks the
observable eviction signal:

* :mod:`repro.sidechannel.observer` — a deterministic attacker tenant
  that primes the DDIO-reachable ways of a monitored set region and
  probes on a seeded schedule interleaved with victim traffic;
* :mod:`repro.sidechannel.analysis` — leak-signal analysis: probe
  hit-rate traces, per-set eviction counts, and a binned
  mutual-information estimator between probe observations and
  ground-truth packet arrivals.

The ``figS1``/``figS2`` experiment families build on this; probe records
persist through the :mod:`repro.obs.probes` JSONL channel.
"""

from repro.sidechannel.analysis import (
    binned_mutual_information,
    hit_rate_trace,
    leak_summary,
    per_set_eviction_counts,
)
from repro.sidechannel.observer import ObserverConfig, PrimeProbeObserver

__all__ = [
    "ObserverConfig",
    "PrimeProbeObserver",
    "binned_mutual_information",
    "hit_rate_trace",
    "leak_summary",
    "per_set_eviction_counts",
]
