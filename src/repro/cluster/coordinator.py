"""Coordinator-side state of the cluster: workers, leases, pending points.

The scheduler's execution seam hands points here instead of a local
``ProcessPoolExecutor`` when the daemon runs with ``--backend cluster``
(or ``hybrid``): :meth:`ClusterCoordinator.submit` returns a plain
:class:`concurrent.futures.Future` that the existing per-job wait /
retry / timeout loop consumes unchanged. Worker agents then drive the
other side over the wire protocol (:mod:`repro.cluster.protocol`):

* ``lease`` pops up to a batch of pending points, stamps a deadline
  (``REPRO_CLUSTER_LEASE_TTL_S``), and ships the pickled specs;
* ``heartbeat`` renews deadlines while the worker is simulating;
* ``complete`` uploads pickled :class:`PointResult` objects keyed by
  the point-cache fingerprint — the coordinator stamps the uploading
  ``worker_id`` on each result (recorded per point in the run
  manifest) and fulfils the future;
* a lease whose deadline passes with no heartbeat **expires**: every
  unresolved point's future fails with :class:`LeaseExpired`, which the
  scheduler's retry machinery treats exactly like a crashed local
  worker — one attempt charged, exponential backoff, re-acquire (and
  the re-acquired point lands back in this queue for the next healthy
  worker). A late upload from a worker presumed dead is not wasted:
  the result is stored straight into the point cache, so the retry
  becomes a cache hit.

Lease state machine (DESIGN.md §10)::

    pending --lease--> leased --complete--> done
       ^                  |--fail/point-failure--> failed (charged)
       |                  |--expire (no heartbeat)--> expired (charged)
       |                  `--release (worker drain)--> requeued (free)
       `------------------------------------------------'

Sharding and fairness (DESIGN.md §15): the pending queue and the lease
table are split over ``REPRO_SCHED_SHARDS`` shards, each with its own
lock. A point lives in the shard of its fingerprint prefix
(``int(fp[:2], 16) % nshards``); a lease lives in the shard of its
first point's fingerprint, encoded into the lease id
(``lease-<shard>-<hex>``) so heartbeat/complete/fail route without a
global lock. Each shard's pending queue is a
:class:`repro.sched.policy.PolicyQueue`, so with ``wfq`` the fleet's
point dispatch is weighted-fair across tenants. Stats and metrics
aggregate across shards.

Speculative execution (DESIGN.md §15): every simulation is
bit-identical regardless of worker, so duplicating a leased point is
always safe. Once :class:`repro.sched.speculate.DurationTracker` has a
baseline, the monitor re-enqueues a duplicate of any leased point
older than the percentile-based delay (at most one duplicate per
point); whichever upload lands first resolves the future
(*first-upload-wins*) and the loser is counted as wasted work. Live
copies are reference-counted per fingerprint, so a lease expiry only
fails the future when no duplicate remains in flight.

Locking: shard locks never nest with each other, the worker-table
lock, or the scheduler lock. Futures are **never** resolved while
holding any coordinator lock — ``set_result`` runs done callbacks
inline, and the scheduler's callback takes the scheduler lock, so
resolving under a coordinator lock would deadlock against a job thread
that holds the scheduler lock while enqueuing (:meth:`submit` is
called from ``_acquire_point``).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cluster import protocol
from repro.engine import pointcache
from repro.errors import ConfigError
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry
from repro.sched.policy import PolicyQueue, make_policy
from repro.sched.speculate import DurationTracker, SpeculationConfig
from repro.sched.tenants import DEFAULT_TENANT, TenantTable, guarded_labels

#: worker states surfaced by ``GET /workers``.
WORKER_STATES = ("idle", "working", "lost", "draining")

DEFAULT_SHARDS = 4


def shard_count() -> int:
    """Lease/pending shard count from ``REPRO_SCHED_SHARDS`` (default 4)."""
    raw = os.environ.get("REPRO_SCHED_SHARDS", "").strip()
    if not raw:
        return DEFAULT_SHARDS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_SCHED_SHARDS must be an integer, got {raw!r}")
    if value < 1:
        raise ConfigError("REPRO_SCHED_SHARDS must be >= 1")
    return value


class LeaseExpired(RuntimeError):
    """A leased point's worker missed its heartbeat deadline."""


class WorkerPointError(RuntimeError):
    """A worker reported a per-point simulation failure."""


class WorkerLeaseError(RuntimeError):
    """A worker aborted a whole lease (e.g. its local pool collapsed)."""


@dataclass
class PendingPoint:
    """One live copy of an enqueued simulation: the spec plus the future
    the scheduler is waiting on. Speculation may create a second copy
    sharing the same future."""

    fingerprint: str
    spec: Any
    run_dir: Optional[str]
    future: Future
    enqueued_unix: float
    tenant: str = DEFAULT_TENANT
    claimed: bool = False  # set_running_or_notify_cancel already called
    speculative: bool = False  # a straggler duplicate, not the original
    #: global submission order; granted batches are sorted by it so a
    #: lease's points run in arrival order (batch *membership* is the
    #: policy's call, order within one worker's batch is not).
    seq: int = 0


@dataclass
class Lease:
    """A batch of points granted to one worker until a deadline."""

    lease_id: str
    worker_id: str
    entries: Dict[str, PendingPoint]  # fingerprint -> point
    granted_unix: float
    deadline_unix: float
    state: str = "active"  # active | done | failed | expired


@dataclass
class WorkerInfo:
    """One registered worker agent."""

    worker_id: str
    name: Optional[str]
    host: str
    pid: int
    capacity: int
    registered_unix: float
    last_seen_unix: float
    lost: bool = False
    draining: bool = False
    points_done: int = 0
    points_failed: int = 0
    leases_granted: int = 0
    lease_ids: set = field(default_factory=set)

    def state(self) -> str:
        if self.lost:
            return "lost"
        if self.draining:
            return "draining"
        return "working" if self.lease_ids else "idle"

    def snapshot(self, now: float) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "host": self.host,
            "pid": self.pid,
            "capacity": self.capacity,
            "state": self.state(),
            "registered_unix": self.registered_unix,
            "last_seen_unix": self.last_seen_unix,
            "seen_ago_s": max(0.0, now - self.last_seen_unix),
            "points_done": self.points_done,
            "points_failed": self.points_failed,
            "leases_granted": self.leases_granted,
            "leases_active": len(self.lease_ids),
        }


class _Shard:
    """One slice of the pending queue + lease table, with its own lock.

    ``refs`` counts live copies per fingerprint (queued or leased);
    ``speculated`` remembers fingerprints that already have a duplicate
    so a straggler is speculated at most once.
    """

    def __init__(self, index: int, queue: PolicyQueue) -> None:
        self.index = index
        self.lock = threading.Lock()
        self.queue = queue
        self.leases: Dict[str, Lease] = {}
        self.refs: Dict[str, int] = {}
        self.speculated: Set[str] = set()


class ClusterCoordinator:
    """Sharded lease table + pending queues behind the cluster backend."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        lease_ttl: Optional[float] = None,
        heartbeat: Optional[float] = None,
        batch: Optional[int] = None,
        shards: Optional[int] = None,
        policy: Optional[str] = None,
        tenants: Optional[TenantTable] = None,
        speculation: Optional[SpeculationConfig] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.lease_ttl = (
            lease_ttl if lease_ttl is not None else protocol.lease_ttl_s()
        )
        # Named heartbeat_s (not heartbeat) so the config value cannot
        # shadow the heartbeat() protocol handler below.
        self.heartbeat_s = (
            heartbeat if heartbeat is not None else protocol.heartbeat_s()
        )
        self.batch = batch if batch is not None else protocol.batch_size()
        self.poll = protocol.poll_s()
        self.tenants = tenants if tenants is not None else TenantTable.from_env()
        self.nshards = shards if shards is not None else shard_count()
        self._shards = [
            _Shard(i, make_policy(policy, self.tenants))
            for i in range(self.nshards)
        ]
        self.policy = self._shards[0].queue.name
        self.speculation = (
            speculation if speculation is not None else SpeculationConfig.from_env()
        )
        self._durations = DurationTracker()
        self._dur_lock = threading.Lock()
        self._wlock = threading.Lock()
        self._workers: Dict[str, WorkerInfo] = {}
        self._seq = itertools.count()
        self._draining = False
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._log = obs_events.get_event_log()
        self._init_metrics()

    def _init_metrics(self) -> None:
        r = self.registry
        self.m_leases_granted = r.counter(
            "cluster_leases_granted_total", "leases handed to workers"
        )
        self.m_lease_expired = r.counter(
            "cluster_lease_expired_total",
            "leases expired after a missed heartbeat (points requeued)",
        )
        self.m_points_remote = r.counter(
            "cluster_points_remote_total",
            "point results uploaded by cluster workers",
        )
        self.m_point_failures = r.counter(
            "cluster_point_failures_total",
            "per-point failures reported by workers",
        )
        self.m_points_released = r.counter(
            "cluster_points_released_total",
            "unstarted points returned by draining workers (uncharged)",
        )
        self.m_registered = r.counter(
            "cluster_workers_registered_total", "worker registrations accepted"
        )
        self.m_late_results = r.counter(
            "cluster_late_results_total",
            "uploads that arrived after their lease expired (cached anyway)",
        )
        self.m_speculative = r.counter(
            "cluster_speculative_leases_total",
            "straggler points re-enqueued as speculative duplicates",
        )
        self.m_spec_wins = r.counter(
            "cluster_speculative_wins_total",
            "futures resolved by a speculative duplicate's upload",
        )
        self.m_spec_wasted = r.counter(
            "cluster_speculative_wasted_total",
            "duplicate uploads discarded because another copy already won",
        )
        self._g_pending = r.gauge(
            "cluster_pending_points", "points waiting for a lease"
        )
        self._g_shard_pending = r.gauge(
            "cluster_shard_pending_points",
            "points waiting for a lease, by shard",
            labels=("shard",),
        )
        self._g_tenant_pending = r.gauge(
            "cluster_tenant_pending_points",
            "points waiting for a lease, by tenant",
            labels=("tenant",),
        )
        self._g_leases = r.gauge(
            "cluster_leases_active", "leases currently outstanding"
        )
        self._g_workers = r.gauge(
            "cluster_workers", "registered workers by state", labels=("state",)
        )
        r.register_collector(self._collect)

    def _collect(self, _registry: MetricsRegistry) -> None:
        pending = 0
        active = 0
        by_tenant: Dict[str, int] = {}
        for shard in self._shards:
            with shard.lock:
                shard_pending = len(shard.queue)
                for tenant, count in shard.queue.tenants_queued().items():
                    by_tenant[tenant] = by_tenant.get(tenant, 0) + count
                active += sum(
                    1 for l in shard.leases.values() if l.state == "active"
                )
            pending += shard_pending
            self._g_shard_pending.labels(shard=str(shard.index)).set(
                shard_pending
            )
        with self._wlock:
            states = {state: 0 for state in WORKER_STATES}
            for worker in self._workers.values():
                states[worker.state()] += 1
        self._g_pending.set(pending)
        self._g_leases.set(active)
        for tenant, count in by_tenant.items():
            guarded_labels(self._g_tenant_pending, tenant=tenant).set(count)
        for state, count in states.items():
            self._g_workers.labels(state=state).set(count)

    # -- sharding helpers -----------------------------------------------

    def _shard_of(self, fingerprint: str) -> _Shard:
        """Fingerprint-prefix shard (fingerprints are sha256 hexdigests)."""
        try:
            index = int(fingerprint[:2], 16) % self.nshards
        except (TypeError, ValueError):
            index = 0
        return self._shards[index]

    def _lease_shard(self, lease_id: str) -> Optional[_Shard]:
        """The shard encoded in ``lease-<shard>-<hex>`` (None = unroutable)."""
        parts = lease_id.split("-")
        if len(parts) == 3 and parts[0] == "lease":
            try:
                index = int(parts[1])
            except ValueError:
                return None
            if 0 <= index < self.nshards:
                return self._shards[index]
        return None

    def _add_copy(self, fingerprint: str) -> None:
        """Count a new live copy (caller holds the fp-shard lock)."""
        shard = self._shard_of(fingerprint)
        shard.refs[fingerprint] = shard.refs.get(fingerprint, 0) + 1

    def _retire_copy(self, fingerprint: str) -> int:
        """Retire one live copy; returns how many copies remain.

        Takes the fingerprint's shard lock itself — callers must not
        hold it (shard locks never nest).
        """
        shard = self._shard_of(fingerprint)
        with shard.lock:
            remaining = shard.refs.get(fingerprint, 1) - 1
            if remaining <= 0:
                shard.refs.pop(fingerprint, None)
                shard.speculated.discard(fingerprint)
                return 0
            shard.refs[fingerprint] = remaining
            return remaining

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the lease-expiry/speculation monitor thread (idempotent)."""
        with self._wlock:
            if self._monitor is not None:
                return
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-monitor", daemon=True
            )
        self._monitor.start()

    def stop(self) -> None:
        self._stop.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=5)

    def drain(self) -> None:
        """Tell the fleet (via lease/heartbeat replies) to wind down."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def _monitor_loop(self) -> None:
        tick = max(0.05, min(0.5, self.lease_ttl / 5.0))
        while not self._stop.wait(tick):
            self.expire_stale()
            self.speculate_stragglers()

    # -- scheduler side (the execution backend seam) --------------------

    def submit(
        self, spec, run_dir: Optional[str], tenant: str = DEFAULT_TENANT
    ) -> Future:
        """Enqueue one point; the future resolves when a worker delivers.

        Called by the scheduler with *its* lock held — this method only
        touches one shard and never resolves a future.
        """
        future: Future = Future()
        fingerprint = pointcache.fingerprint(spec)
        entry = PendingPoint(
            fingerprint=fingerprint,
            spec=spec,
            run_dir=run_dir,
            future=future,
            enqueued_unix=time.time(),
            tenant=tenant,
            seq=next(self._seq),
        )
        shard = self._shard_of(fingerprint)
        with shard.lock:
            shard.queue.push(entry, tenant=tenant, cost=1.0)
            shard.refs[fingerprint] = shard.refs.get(fingerprint, 0) + 1
        return future

    def pending_count(self) -> int:
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.queue)
        return total

    # -- worker-facing protocol handlers --------------------------------

    def register(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/register``."""
        body = protocol.check_version(payload)
        salt = body.get("code_salt")
        protocol.require(
            isinstance(salt, str) and bool(salt),
            "'code_salt' must be a non-empty string",
        )
        if salt != pointcache.code_salt():
            raise protocol.SaltMismatch(
                "worker runs a different source tree than the coordinator "
                f"(salt {salt[:12]}... != {pointcache.code_salt()[:12]}...); "
                "results would not be bit-identical — update the worker"
            )
        capacity = body.get("capacity", 1)
        protocol.require(
            isinstance(capacity, int) and capacity >= 1,
            "'capacity' must be an integer >= 1",
        )
        now = time.time()
        worker = WorkerInfo(
            worker_id=f"w-{uuid.uuid4().hex[:10]}",
            name=body.get("name") or None,
            host=str(body.get("host", "?")),
            pid=int(body.get("pid", 0) or 0),
            capacity=capacity,
            registered_unix=now,
            last_seen_unix=now,
        )
        with self._wlock:
            self._workers[worker.worker_id] = worker
        self.m_registered.inc()
        self._log.info(
            "cluster.worker.register",
            worker=worker.worker_id,
            name=worker.name,
            host=worker.host,
            pid=worker.pid,
            capacity=capacity,
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "worker_id": worker.worker_id,
            "lease_ttl_s": self.lease_ttl,
            "heartbeat_s": self.heartbeat_s,
            "batch": self.batch,
            "poll_s": self.poll,
        }

    def _touch(self, worker_id: str) -> WorkerInfo:
        """Look up a worker and refresh its liveness (worker lock held)."""
        worker = self._workers.get(worker_id)
        if worker is None:
            raise protocol.UnknownWorker(worker_id)
        worker.last_seen_unix = time.time()
        worker.lost = False
        return worker

    def lease(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/lease``: grant up to a batch of points.

        Each grant slot picks the globally next point in policy order
        by comparing every shard queue's :meth:`peek_key` — sharding is
        a concurrency detail and must not change *which* points are
        granted relative to an unsharded queue. Between peek and pop a
        racing grant may steal the head, which is benign: whatever the
        pop actually yields is still a valid next candidate. A grant
        may pull from several shards; the lease itself lives in the
        shard of its first point's fingerprint.
        """
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        capacity = body.get("capacity", 1)
        protocol.require(
            isinstance(capacity, int) and capacity >= 1,
            "'capacity' must be an integer >= 1",
        )
        with self._wlock:
            worker = self._touch(worker_id)
        want = min(self.batch, capacity)
        granted: List[PendingPoint] = []
        while len(granted) < want:
            best_shard = None
            best_key = None
            for shard in self._shards:
                with shard.lock:
                    key = shard.queue.peek_key()
                if key is not None and (best_key is None or key < best_key):
                    best_key = key
                    best_shard = shard
            if best_shard is None:
                break
            with best_shard.lock:
                entry = best_shard.queue.pop()
                if entry is None:
                    continue
                if entry.future.done():
                    # Cancelled or already resolved (e.g. the other
                    # copy won) while queued: retire this copy.
                    remaining = best_shard.refs.get(entry.fingerprint, 1) - 1
                    if remaining <= 0:
                        best_shard.refs.pop(entry.fingerprint, None)
                        best_shard.speculated.discard(entry.fingerprint)
                    else:
                        best_shard.refs[entry.fingerprint] = remaining
                    continue
                if not entry.claimed:
                    if not entry.future.set_running_or_notify_cancel():
                        # cancelled by the scheduler's timeout
                        remaining = best_shard.refs.get(entry.fingerprint, 1) - 1
                        if remaining <= 0:
                            best_shard.refs.pop(entry.fingerprint, None)
                            best_shard.speculated.discard(entry.fingerprint)
                        else:
                            best_shard.refs[entry.fingerprint] = remaining
                        continue
                    entry.claimed = True
                granted.append(entry)
        granted.sort(key=lambda e: e.seq)
        if not granted:
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "lease_id": None,
                "points": [],
                "draining": self._draining,
                "poll_s": self.poll,
            }
        now = time.time()
        home = self._shard_of(granted[0].fingerprint)
        lease = Lease(
            lease_id=f"lease-{home.index}-{uuid.uuid4().hex[:10]}",
            worker_id=worker_id,
            entries={e.fingerprint: e for e in granted},
            granted_unix=now,
            deadline_unix=now + self.lease_ttl,
        )
        with home.lock:
            home.leases[lease.lease_id] = lease
        with self._wlock:
            worker.lease_ids.add(lease.lease_id)
            worker.leases_granted += 1
        self.m_leases_granted.inc()
        self._log.info(
            "cluster.lease.grant",
            lease=lease.lease_id,
            worker=worker_id,
            points=len(granted),
            speculative=sum(1 for e in granted if e.speculative),
            ttl_s=self.lease_ttl,
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "lease_id": lease.lease_id,
            "deadline_unix": lease.deadline_unix,
            "ttl_s": self.lease_ttl,
            "heartbeat_s": self.heartbeat_s,
            "draining": self._draining,
            "points": [
                {
                    "fingerprint": e.fingerprint,
                    "label": e.spec.label,
                    "tenant": e.tenant,
                    "speculative": e.speculative,
                    "spec": protocol.encode_payload(e.spec),
                }
                for e in granted
            ],
        }

    def heartbeat(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/heartbeat``: renew lease deadlines."""
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        lease_ids = protocol.string_list(body, "lease_ids")
        with self._wlock:
            self._touch(worker_id)
        renewed: List[str] = []
        gone: List[str] = []
        now = time.time()
        for lease_id in lease_ids:
            shard = self._lease_shard(lease_id)
            if shard is None:
                gone.append(lease_id)
                continue
            with shard.lock:
                lease = shard.leases.get(lease_id)
                if (
                    lease is None
                    or lease.worker_id != worker_id
                    or lease.state != "active"
                ):
                    gone.append(lease_id)
                    continue
                lease.deadline_unix = now + self.lease_ttl
                renewed.append(lease_id)
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "renewed": renewed,
            "expired": gone,
            "draining": self._draining,
        }

    def complete(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/complete``: results / failures / releases.

        First-upload-wins: a result whose future another copy already
        resolved is counted as a speculative duplicate (``duplicates``
        in the reply, ``cluster_speculative_wasted_total``), not an
        error — the worker did real, bit-identical work that simply
        lost the race. A failure whose fingerprint still has another
        live copy in flight does *not* fail the future: the surviving
        duplicate may yet deliver.
        """
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        lease_id = body.get("lease_id")
        protocol.require(
            isinstance(lease_id, str) and bool(lease_id),
            "'lease_id' must be a non-empty string",
        )
        results = body.get("results", [])
        failures = body.get("failures", [])
        released = protocol.string_list(body, "released")
        protocol.require(
            isinstance(results, list) and isinstance(failures, list),
            "'results' and 'failures' must be lists",
        )
        with self._wlock:
            worker = self._touch(worker_id)

        to_resolve: List[Tuple[PendingPoint, Any]] = []
        to_fail: List[Tuple[PendingPoint, str]] = []
        late_results: List[Tuple[str, Any]] = []
        requeue: List[PendingPoint] = []
        retired: List[PendingPoint] = []
        duplicates = 0
        spec_wins = 0
        survivors = 0
        points_done = 0
        points_failed = 0
        now = time.time()
        durations: List[float] = []

        shard = self._lease_shard(lease_id)
        lease: Optional[Lease] = None
        if shard is not None:
            with shard.lock:
                lease = shard.leases.get(lease_id)
                lease_live = (
                    lease is not None
                    and lease.worker_id == worker_id
                    and lease.state == "active"
                )
                entries = lease.entries if lease_live else {}
                for item in results:
                    protocol.require(
                        isinstance(item, dict)
                        and isinstance(item.get("fingerprint"), str)
                        and isinstance(item.get("payload"), str),
                        "each result needs string 'fingerprint' and 'payload'",
                    )
                    result = protocol.decode_payload(item["payload"])
                    result.worker_id = worker_id
                    fp = item["fingerprint"]
                    entry = entries.get(fp)
                    if entry is not None and not entry.future.done():
                        to_resolve.append((entry, result))
                        retired.append(entry)
                        durations.append(now - lease.granted_unix)
                        if entry.speculative:
                            spec_wins += 1
                    elif entry is not None:
                        # The other copy already won the race.
                        duplicates += 1
                        retired.append(entry)
                    else:
                        # Lease expired or unknown: the scheduler has
                        # moved on, but the simulation is real — cache
                        # it so the retry becomes a cache hit.
                        late_results.append((fp, result))
                    points_done += 1
                for item in failures:
                    protocol.require(
                        isinstance(item, dict)
                        and isinstance(item.get("fingerprint"), str)
                        and isinstance(item.get("error"), str),
                        "each failure needs string 'fingerprint' and 'error'",
                    )
                    entry = entries.get(item["fingerprint"])
                    points_failed += 1
                    if entry is not None:
                        retired.append(entry)
                        if not entry.future.done():
                            to_fail.append((entry, item["error"]))
                for fp in released:
                    entry = entries.get(fp)
                    if entry is not None and not entry.future.done():
                        requeue.append(entry)
                if lease_live:
                    lease.state = "failed" if to_fail else "done"
                    lease.entries = {}
        else:
            lease_live = False
            for item in results:
                protocol.require(
                    isinstance(item, dict)
                    and isinstance(item.get("fingerprint"), str)
                    and isinstance(item.get("payload"), str),
                    "each result needs string 'fingerprint' and 'payload'",
                )
                result = protocol.decode_payload(item["payload"])
                result.worker_id = worker_id
                late_results.append((item["fingerprint"], result))
                points_done += 1
            points_failed += len(failures)

        # Retire the consumed copies (takes per-fingerprint shard
        # locks — the lease-shard lock is released above). A failure
        # whose fingerprint still has a live copy is downgraded to a
        # survivor: the duplicate in flight may still deliver.
        still_alive: Set[str] = set()
        for entry in retired:
            if self._retire_copy(entry.fingerprint) > 0:
                still_alive.add(entry.fingerprint)
        kept_fail: List[Tuple[PendingPoint, str]] = []
        for entry, error in to_fail:
            if entry.fingerprint in still_alive:
                survivors += 1
            else:
                kept_fail.append((entry, error))
        to_fail = kept_fail
        for entry in requeue:
            # Returned unstarted by a draining worker: requeued in
            # policy order, no attempt charged, same future, same copy
            # (refs unchanged).
            entry_shard = self._shard_of(entry.fingerprint)
            with entry_shard.lock:
                entry_shard.queue.push(entry, tenant=entry.tenant, cost=1.0)

        with self._wlock:
            worker.points_done += points_done
            worker.points_failed += points_failed
            if lease_live:
                worker.lease_ids.discard(lease_id)
        if durations:
            with self._dur_lock:
                for seconds in durations:
                    self._durations.record(seconds)

        # Outside the locks: resolve futures (runs scheduler callbacks).
        resolved = 0
        for entry, result in to_resolve:
            try:
                entry.future.set_result(result)
                resolved += 1
            except InvalidStateError:
                # Concurrent first-upload-wins race with another lease's
                # complete(): the other copy landed first.
                duplicates += 1
                if entry.speculative:
                    spec_wins -= 1
        for entry, error in to_fail:
            try:
                entry.future.set_exception(
                    WorkerPointError(f"{error} (worker {worker_id})")
                )
            except InvalidStateError:
                pass
        if late_results and pointcache.cache_enabled():
            for fp, result in late_results:
                try:
                    pointcache.store(fp, result)
                except Exception:
                    pass  # a failed store is only a lost cache entry
        if late_results:
            self.m_late_results.inc(len(late_results))
        if resolved:
            self.m_points_remote.inc(resolved)
        if to_fail:
            self.m_point_failures.inc(len(to_fail))
        if requeue:
            self.m_points_released.inc(len(requeue))
        if duplicates:
            self.m_spec_wasted.inc(duplicates)
        if spec_wins > 0:
            self.m_spec_wins.inc(spec_wins)
        self._log.info(
            "cluster.lease.complete",
            lease=lease_id,
            worker=worker_id,
            results=len(results),
            failures=len(failures),
            released=len(released),
            late=len(late_results),
            duplicates=duplicates,
            accepted=lease_live,
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "accepted": lease_live,
            "resolved": resolved,
            "late": len(late_results),
            "duplicates": duplicates,
        }

    def fail(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/fail``: abort a whole lease."""
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        lease_id = body.get("lease_id")
        error = body.get("error", "worker aborted the lease")
        protocol.require(
            isinstance(lease_id, str) and bool(lease_id),
            "'lease_id' must be a non-empty string",
        )
        with self._wlock:
            worker = self._touch(worker_id)
        candidates: List[PendingPoint] = []
        shard = self._lease_shard(lease_id)
        if shard is not None:
            with shard.lock:
                lease = shard.leases.get(lease_id)
                if (
                    lease is not None
                    and lease.worker_id == worker_id
                    and lease.state == "active"
                ):
                    candidates = list(lease.entries.values())
                    lease.state = "failed"
                    lease.entries = {}
        to_fail: List[PendingPoint] = []
        for entry in candidates:
            remaining = self._retire_copy(entry.fingerprint)
            if not entry.future.done() and remaining == 0:
                to_fail.append(entry)
        with self._wlock:
            if candidates:
                worker.lease_ids.discard(lease_id)
                worker.points_failed += len(to_fail)
        for entry in to_fail:
            try:
                entry.future.set_exception(
                    WorkerLeaseError(f"{error} (worker {worker_id})")
                )
            except InvalidStateError:
                pass
        if to_fail:
            self.m_point_failures.inc(len(to_fail))
        self._log.warning(
            "cluster.lease.fail",
            lease=lease_id,
            worker=worker_id,
            points=len(to_fail),
            error=str(error),
        )
        return {"protocol": protocol.PROTOCOL_VERSION, "failed": len(to_fail)}

    # -- expiry + speculation -------------------------------------------

    def expire_stale(self, now: Optional[float] = None) -> int:
        """Expire leases past their deadline; returns how many expired.

        Each unresolved point *without a live duplicate* fails with
        :class:`LeaseExpired`, which the scheduler's per-point retry
        loop converts into a charged attempt + re-enqueue. A point
        whose speculative duplicate is still in flight survives the
        expiry untouched — the duplicate is the retry.
        """
        now = time.time() if now is None else now
        expired: List[Lease] = []
        candidates: List[PendingPoint] = []
        lost_workers: Dict[str, str] = {}
        for shard in self._shards:
            with shard.lock:
                for lease in shard.leases.values():
                    if lease.state != "active" or lease.deadline_unix > now:
                        continue
                    lease.state = "expired"
                    expired.append(lease)
                    candidates.extend(lease.entries.values())
                    lease.entries = {}
                    lost_workers[lease.worker_id] = lease.lease_id
        if lost_workers:
            with self._wlock:
                for worker_id, _lease_id in lost_workers.items():
                    worker = self._workers.get(worker_id)
                    if worker is not None:
                        worker.lost = True
                for lease in expired:
                    worker = self._workers.get(lease.worker_id)
                    if worker is not None:
                        worker.lease_ids.discard(lease.lease_id)
        to_fail: List[PendingPoint] = []
        for entry in candidates:
            remaining = self._retire_copy(entry.fingerprint)
            if not entry.future.done() and remaining == 0:
                to_fail.append(entry)
        for lease in expired:
            self.m_lease_expired.inc()
            self._log.warning(
                "cluster.lease.expired",
                lease=lease.lease_id,
                worker=lease.worker_id,
                overdue_s=round(now - lease.deadline_unix, 3),
            )
        for entry in to_fail:
            try:
                entry.future.set_exception(
                    LeaseExpired(
                        f"lease deadline missed for point "
                        f"{entry.spec.label!r}; worker presumed dead"
                    )
                )
            except InvalidStateError:
                pass
        return len(expired)

    def speculate_stragglers(self, now: Optional[float] = None) -> int:
        """Re-enqueue duplicates of straggling leased points.

        A leased point older than the percentile-based delay (see
        :mod:`repro.sched.speculate`) gets one duplicate pushed back
        into its pending shard, pre-claimed and sharing the same
        future, so the next idle worker races the straggler. Returns
        how many duplicates were enqueued.
        """
        with self._dur_lock:
            delay = self._durations.delay_s(self.speculation)
        if delay is None:
            return 0
        now = time.time() if now is None else now
        candidates: List[PendingPoint] = []
        for shard in self._shards:
            with shard.lock:
                for lease in shard.leases.values():
                    if lease.state != "active":
                        continue
                    if now - lease.granted_unix <= delay:
                        continue
                    candidates.extend(
                        e
                        for e in lease.entries.values()
                        if not e.speculative and not e.future.done()
                    )
        launched = 0
        for entry in candidates:
            shard = self._shard_of(entry.fingerprint)
            with shard.lock:
                if (
                    entry.fingerprint in shard.speculated
                    or entry.fingerprint not in shard.refs
                    or entry.future.done()
                ):
                    continue
                duplicate = PendingPoint(
                    fingerprint=entry.fingerprint,
                    spec=entry.spec,
                    run_dir=entry.run_dir,
                    future=entry.future,
                    enqueued_unix=now,
                    tenant=entry.tenant,
                    claimed=True,  # the original already claimed it
                    speculative=True,
                    seq=next(self._seq),
                )
                shard.queue.push(
                    duplicate, tenant=duplicate.tenant, cost=1.0
                )
                shard.refs[entry.fingerprint] += 1
                shard.speculated.add(entry.fingerprint)
            launched += 1
            self._log.info(
                "cluster.point.speculate",
                label=entry.spec.label,
                tenant=entry.tenant,
                age_s=round(now - entry.enqueued_unix, 3),
                delay_s=round(delay, 3),
            )
        if launched:
            self.m_speculative.inc(launched)
        return launched

    # -- introspection ---------------------------------------------------

    @property
    def _leases(self) -> Dict[str, Lease]:
        """All leases merged across shards (tests / debugging only)."""
        merged: Dict[str, Lease] = {}
        for shard in self._shards:
            with shard.lock:
                merged.update(shard.leases)
        return merged

    def workers_snapshot(self) -> List[Dict[str, Any]]:
        """Fleet listing for ``GET /workers`` (registration order)."""
        now = time.time()
        with self._wlock:
            workers = list(self._workers.values())
        return [w.snapshot(now) for w in workers]

    def stats(self) -> Dict[str, Any]:
        pending = 0
        active = 0
        shards: List[Dict[str, Any]] = []
        tenants: Dict[str, int] = {}
        for shard in self._shards:
            with shard.lock:
                shard_pending = len(shard.queue)
                shard_active = sum(
                    1 for l in shard.leases.values() if l.state == "active"
                )
                for tenant, count in shard.queue.tenants_queued().items():
                    tenants[tenant] = tenants.get(tenant, 0) + count
            pending += shard_pending
            active += shard_active
            shards.append(
                {
                    "shard": shard.index,
                    "pending_points": shard_pending,
                    "active_leases": shard_active,
                }
            )
        with self._wlock:
            workers = len(self._workers)
        with self._dur_lock:
            samples = len(self._durations)
            delay = self._durations.delay_s(self.speculation)
        return {
            "pending_points": pending,
            "active_leases": active,
            "workers": workers,
            "draining": self._draining,
            "policy": self.policy,
            "shards": shards,
            "pending_by_tenant": tenants,
            "speculation": {
                "enabled": self.speculation.enabled,
                "samples": samples,
                "delay_s": delay,
            },
        }
