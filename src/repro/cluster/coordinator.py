"""Coordinator-side state of the cluster: workers, leases, pending points.

The scheduler's execution seam hands points here instead of a local
``ProcessPoolExecutor`` when the daemon runs with ``--backend cluster``
(or ``hybrid``): :meth:`ClusterCoordinator.submit` returns a plain
:class:`concurrent.futures.Future` that the existing per-job wait /
retry / timeout loop consumes unchanged. Worker agents then drive the
other side over the wire protocol (:mod:`repro.cluster.protocol`):

* ``lease`` pops up to a batch of pending points, stamps a deadline
  (``REPRO_CLUSTER_LEASE_TTL_S``), and ships the pickled specs;
* ``heartbeat`` renews deadlines while the worker is simulating;
* ``complete`` uploads pickled :class:`PointResult` objects keyed by
  the point-cache fingerprint — the coordinator stamps the uploading
  ``worker_id`` on each result (recorded per point in the run
  manifest) and fulfils the future;
* a lease whose deadline passes with no heartbeat **expires**: every
  unresolved point's future fails with :class:`LeaseExpired`, which the
  scheduler's retry machinery treats exactly like a crashed local
  worker — one attempt charged, exponential backoff, re-acquire (and
  the re-acquired point lands back in this queue for the next healthy
  worker). A late upload from a worker presumed dead is not wasted:
  the result is stored straight into the point cache, so the retry
  becomes a cache hit.

Lease state machine (DESIGN.md §10)::

    pending --lease--> leased --complete--> done
       ^                  |--fail/point-failure--> failed (charged)
       |                  |--expire (no heartbeat)--> expired (charged)
       |                  `--release (worker drain)--> requeued (free)
       `------------------------------------------------'

Locking: the coordinator has one lock for its tables. Futures are
**never** resolved while holding it — ``set_result`` runs done
callbacks inline, and the scheduler's callback takes the scheduler
lock, so resolving under the coordinator lock would deadlock against a
job thread that holds the scheduler lock while enqueuing
(:meth:`submit` is called from ``_acquire_point``).
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.cluster import protocol
from repro.engine import pointcache
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry

#: worker states surfaced by ``GET /workers``.
WORKER_STATES = ("idle", "working", "lost", "draining")


class LeaseExpired(RuntimeError):
    """A leased point's worker missed its heartbeat deadline."""


class WorkerPointError(RuntimeError):
    """A worker reported a per-point simulation failure."""


class WorkerLeaseError(RuntimeError):
    """A worker aborted a whole lease (e.g. its local pool collapsed)."""


@dataclass
class PendingPoint:
    """One enqueued simulation: the spec plus the future the scheduler
    is waiting on."""

    fingerprint: str
    spec: Any
    run_dir: Optional[str]
    future: Future
    enqueued_unix: float
    claimed: bool = False  # set_running_or_notify_cancel already called


@dataclass
class Lease:
    """A batch of points granted to one worker until a deadline."""

    lease_id: str
    worker_id: str
    entries: Dict[str, PendingPoint]  # fingerprint -> point
    granted_unix: float
    deadline_unix: float
    state: str = "active"  # active | done | failed | expired


@dataclass
class WorkerInfo:
    """One registered worker agent."""

    worker_id: str
    name: Optional[str]
    host: str
    pid: int
    capacity: int
    registered_unix: float
    last_seen_unix: float
    lost: bool = False
    draining: bool = False
    points_done: int = 0
    points_failed: int = 0
    leases_granted: int = 0
    lease_ids: set = field(default_factory=set)

    def state(self) -> str:
        if self.lost:
            return "lost"
        if self.draining:
            return "draining"
        return "working" if self.lease_ids else "idle"

    def snapshot(self, now: float) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "name": self.name,
            "host": self.host,
            "pid": self.pid,
            "capacity": self.capacity,
            "state": self.state(),
            "registered_unix": self.registered_unix,
            "last_seen_unix": self.last_seen_unix,
            "seen_ago_s": max(0.0, now - self.last_seen_unix),
            "points_done": self.points_done,
            "points_failed": self.points_failed,
            "leases_granted": self.leases_granted,
            "leases_active": len(self.lease_ids),
        }


class ClusterCoordinator:
    """Lease table + pending queue behind the scheduler's cluster backend."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        lease_ttl: Optional[float] = None,
        heartbeat: Optional[float] = None,
        batch: Optional[int] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.lease_ttl = (
            lease_ttl if lease_ttl is not None else protocol.lease_ttl_s()
        )
        # Named heartbeat_s (not heartbeat) so the config value cannot
        # shadow the heartbeat() protocol handler below.
        self.heartbeat_s = (
            heartbeat if heartbeat is not None else protocol.heartbeat_s()
        )
        self.batch = batch if batch is not None else protocol.batch_size()
        self.poll = protocol.poll_s()
        self._lock = threading.Lock()
        self._pending: Deque[PendingPoint] = deque()
        self._workers: Dict[str, WorkerInfo] = {}
        self._leases: Dict[str, Lease] = {}
        self._draining = False
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._log = obs_events.get_event_log()
        self._init_metrics()

    def _init_metrics(self) -> None:
        r = self.registry
        self.m_leases_granted = r.counter(
            "cluster_leases_granted_total", "leases handed to workers"
        )
        self.m_lease_expired = r.counter(
            "cluster_lease_expired_total",
            "leases expired after a missed heartbeat (points requeued)",
        )
        self.m_points_remote = r.counter(
            "cluster_points_remote_total",
            "point results uploaded by cluster workers",
        )
        self.m_point_failures = r.counter(
            "cluster_point_failures_total",
            "per-point failures reported by workers",
        )
        self.m_points_released = r.counter(
            "cluster_points_released_total",
            "unstarted points returned by draining workers (uncharged)",
        )
        self.m_registered = r.counter(
            "cluster_workers_registered_total", "worker registrations accepted"
        )
        self.m_late_results = r.counter(
            "cluster_late_results_total",
            "uploads that arrived after their lease expired (cached anyway)",
        )
        self._g_pending = r.gauge(
            "cluster_pending_points", "points waiting for a lease"
        )
        self._g_leases = r.gauge(
            "cluster_leases_active", "leases currently outstanding"
        )
        self._g_workers = r.gauge(
            "cluster_workers", "registered workers by state", labels=("state",)
        )
        r.register_collector(self._collect)

    def _collect(self, _registry: MetricsRegistry) -> None:
        with self._lock:
            pending = len(self._pending)
            active = sum(
                1 for l in self._leases.values() if l.state == "active"
            )
            states = {state: 0 for state in WORKER_STATES}
            for worker in self._workers.values():
                states[worker.state()] += 1
        self._g_pending.set(pending)
        self._g_leases.set(active)
        for state, count in states.items():
            self._g_workers.labels(state=state).set(count)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the lease-expiry monitor thread (idempotent)."""
        with self._lock:
            if self._monitor is not None:
                return
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-monitor", daemon=True
            )
        self._monitor.start()

    def stop(self) -> None:
        self._stop.set()
        monitor = self._monitor
        if monitor is not None:
            monitor.join(timeout=5)

    def drain(self) -> None:
        """Tell the fleet (via lease/heartbeat replies) to wind down."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def _monitor_loop(self) -> None:
        tick = max(0.05, min(0.5, self.lease_ttl / 5.0))
        while not self._stop.wait(tick):
            self.expire_stale()

    # -- scheduler side (the execution backend seam) --------------------

    def submit(self, spec, run_dir: Optional[str]) -> Future:
        """Enqueue one point; the future resolves when a worker delivers.

        Called by the scheduler with *its* lock held — this method only
        touches coordinator state and never resolves a future.
        """
        future: Future = Future()
        entry = PendingPoint(
            fingerprint=pointcache.fingerprint(spec),
            spec=spec,
            run_dir=run_dir,
            future=future,
            enqueued_unix=time.time(),
        )
        with self._lock:
            self._pending.append(entry)
        return future

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- worker-facing protocol handlers --------------------------------

    def register(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/register``."""
        body = protocol.check_version(payload)
        salt = body.get("code_salt")
        protocol.require(
            isinstance(salt, str) and bool(salt),
            "'code_salt' must be a non-empty string",
        )
        if salt != pointcache.code_salt():
            raise protocol.SaltMismatch(
                "worker runs a different source tree than the coordinator "
                f"(salt {salt[:12]}... != {pointcache.code_salt()[:12]}...); "
                "results would not be bit-identical — update the worker"
            )
        capacity = body.get("capacity", 1)
        protocol.require(
            isinstance(capacity, int) and capacity >= 1,
            "'capacity' must be an integer >= 1",
        )
        now = time.time()
        worker = WorkerInfo(
            worker_id=f"w-{uuid.uuid4().hex[:10]}",
            name=body.get("name") or None,
            host=str(body.get("host", "?")),
            pid=int(body.get("pid", 0) or 0),
            capacity=capacity,
            registered_unix=now,
            last_seen_unix=now,
        )
        with self._lock:
            self._workers[worker.worker_id] = worker
        self.m_registered.inc()
        self._log.info(
            "cluster.worker.register",
            worker=worker.worker_id,
            name=worker.name,
            host=worker.host,
            pid=worker.pid,
            capacity=capacity,
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "worker_id": worker.worker_id,
            "lease_ttl_s": self.lease_ttl,
            "heartbeat_s": self.heartbeat_s,
            "batch": self.batch,
            "poll_s": self.poll,
        }

    def _touch(self, worker_id: str) -> WorkerInfo:
        """Look up a worker and refresh its liveness (lock held)."""
        worker = self._workers.get(worker_id)
        if worker is None:
            raise protocol.UnknownWorker(worker_id)
        worker.last_seen_unix = time.time()
        worker.lost = False
        return worker

    def lease(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/lease``: grant up to a batch of points."""
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        capacity = body.get("capacity", 1)
        protocol.require(
            isinstance(capacity, int) and capacity >= 1,
            "'capacity' must be an integer >= 1",
        )
        granted: List[PendingPoint] = []
        with self._lock:
            worker = self._touch(worker_id)
            want = min(self.batch, capacity)
            while self._pending and len(granted) < want:
                entry = self._pending.popleft()
                if entry.future.done():
                    continue  # cancelled or resolved while queued
                if not entry.claimed:
                    if not entry.future.set_running_or_notify_cancel():
                        continue  # cancelled by the scheduler's timeout
                    entry.claimed = True
                granted.append(entry)
            if not granted:
                return {
                    "protocol": protocol.PROTOCOL_VERSION,
                    "lease_id": None,
                    "points": [],
                    "draining": self._draining,
                    "poll_s": self.poll,
                }
            now = time.time()
            lease = Lease(
                lease_id=f"lease-{uuid.uuid4().hex[:10]}",
                worker_id=worker_id,
                entries={e.fingerprint: e for e in granted},
                granted_unix=now,
                deadline_unix=now + self.lease_ttl,
            )
            self._leases[lease.lease_id] = lease
            worker.lease_ids.add(lease.lease_id)
            worker.leases_granted += 1
        self.m_leases_granted.inc()
        self._log.info(
            "cluster.lease.grant",
            lease=lease.lease_id,
            worker=worker_id,
            points=len(granted),
            ttl_s=self.lease_ttl,
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "lease_id": lease.lease_id,
            "deadline_unix": lease.deadline_unix,
            "ttl_s": self.lease_ttl,
            "heartbeat_s": self.heartbeat_s,
            "draining": self._draining,
            "points": [
                {
                    "fingerprint": e.fingerprint,
                    "label": e.spec.label,
                    "spec": protocol.encode_payload(e.spec),
                }
                for e in granted
            ],
        }

    def heartbeat(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/heartbeat``: renew lease deadlines."""
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        lease_ids = protocol.string_list(body, "lease_ids")
        renewed: List[str] = []
        gone: List[str] = []
        with self._lock:
            self._touch(worker_id)
            now = time.time()
            for lease_id in lease_ids:
                lease = self._leases.get(lease_id)
                if (
                    lease is None
                    or lease.worker_id != worker_id
                    or lease.state != "active"
                ):
                    gone.append(lease_id)
                    continue
                lease.deadline_unix = now + self.lease_ttl
                renewed.append(lease_id)
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "renewed": renewed,
            "expired": gone,
            "draining": self._draining,
        }

    def complete(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/complete``: results / failures / releases."""
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        lease_id = body.get("lease_id")
        protocol.require(
            isinstance(lease_id, str) and bool(lease_id),
            "'lease_id' must be a non-empty string",
        )
        results = body.get("results", [])
        failures = body.get("failures", [])
        released = protocol.string_list(body, "released")
        protocol.require(
            isinstance(results, list) and isinstance(failures, list),
            "'results' and 'failures' must be lists",
        )

        to_resolve: List[Tuple[PendingPoint, Any]] = []
        to_fail: List[Tuple[PendingPoint, str]] = []
        late_results: List[Tuple[str, Any]] = []
        requeue: List[PendingPoint] = []
        with self._lock:
            worker = self._touch(worker_id)
            lease = self._leases.get(lease_id)
            lease_live = (
                lease is not None
                and lease.worker_id == worker_id
                and lease.state == "active"
            )
            entries = lease.entries if lease_live else {}
            for item in results:
                protocol.require(
                    isinstance(item, dict)
                    and isinstance(item.get("fingerprint"), str)
                    and isinstance(item.get("payload"), str),
                    "each result needs string 'fingerprint' and 'payload'",
                )
                result = protocol.decode_payload(item["payload"])
                result.worker_id = worker_id
                fp = item["fingerprint"]
                entry = entries.get(fp)
                if entry is not None and not entry.future.done():
                    to_resolve.append((entry, result))
                else:
                    # Lease expired (or a duplicate): the scheduler has
                    # moved on, but the simulation is real — cache it so
                    # the retry becomes a cache hit instead of a rerun.
                    late_results.append((fp, result))
                worker.points_done += 1
            for item in failures:
                protocol.require(
                    isinstance(item, dict)
                    and isinstance(item.get("fingerprint"), str)
                    and isinstance(item.get("error"), str),
                    "each failure needs string 'fingerprint' and 'error'",
                )
                entry = entries.get(item["fingerprint"])
                worker.points_failed += 1
                if entry is not None and not entry.future.done():
                    to_fail.append((entry, item["error"]))
            for fp in released:
                entry = entries.get(fp)
                if entry is not None and not entry.future.done():
                    requeue.append(entry)
            if lease_live:
                lease.state = "failed" if to_fail else "done"
                lease.entries = {}
                worker.lease_ids.discard(lease_id)
            for entry in requeue:
                # Returned unstarted by a draining worker: back to the
                # front of the queue, no attempt charged, same future.
                self._pending.appendleft(entry)

        # Outside the lock: resolve futures (runs scheduler callbacks).
        for entry, result in to_resolve:
            try:
                entry.future.set_result(result)
            except InvalidStateError:
                late_results.append((entry.fingerprint, result))
        for entry, error in to_fail:
            try:
                entry.future.set_exception(
                    WorkerPointError(f"{error} (worker {worker_id})")
                )
            except InvalidStateError:
                pass
        if late_results and pointcache.cache_enabled():
            for fp, result in late_results:
                try:
                    pointcache.store(fp, result)
                except Exception:
                    pass  # a failed store is only a lost cache entry
        if late_results:
            self.m_late_results.inc(len(late_results))
        if to_resolve:
            self.m_points_remote.inc(len(to_resolve))
        if to_fail:
            self.m_point_failures.inc(len(to_fail))
        if requeue:
            self.m_points_released.inc(len(requeue))
        self._log.info(
            "cluster.lease.complete",
            lease=lease_id,
            worker=worker_id,
            results=len(results),
            failures=len(failures),
            released=len(released),
            late=len(late_results),
            accepted=lease_live,
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "accepted": lease_live,
            "resolved": len(to_resolve),
            "late": len(late_results),
        }

    def fail(self, payload: Any) -> Dict[str, Any]:
        """Handle ``POST /cluster/fail``: abort a whole lease."""
        body = protocol.check_version(payload)
        worker_id = protocol.worker_id_of(body)
        lease_id = body.get("lease_id")
        error = body.get("error", "worker aborted the lease")
        protocol.require(
            isinstance(lease_id, str) and bool(lease_id),
            "'lease_id' must be a non-empty string",
        )
        to_fail: List[PendingPoint] = []
        with self._lock:
            worker = self._touch(worker_id)
            lease = self._leases.get(lease_id)
            if (
                lease is not None
                and lease.worker_id == worker_id
                and lease.state == "active"
            ):
                to_fail = [
                    e for e in lease.entries.values() if not e.future.done()
                ]
                lease.state = "failed"
                lease.entries = {}
                worker.lease_ids.discard(lease_id)
                worker.points_failed += len(to_fail)
        for entry in to_fail:
            try:
                entry.future.set_exception(
                    WorkerLeaseError(f"{error} (worker {worker_id})")
                )
            except InvalidStateError:
                pass
        if to_fail:
            self.m_point_failures.inc(len(to_fail))
        self._log.warning(
            "cluster.lease.fail",
            lease=lease_id,
            worker=worker_id,
            points=len(to_fail),
            error=str(error),
        )
        return {"protocol": protocol.PROTOCOL_VERSION, "failed": len(to_fail)}

    # -- expiry ---------------------------------------------------------

    def expire_stale(self, now: Optional[float] = None) -> int:
        """Expire leases past their deadline; returns how many expired.

        Each unresolved point fails with :class:`LeaseExpired`, which
        the scheduler's per-point retry loop converts into a charged
        attempt + re-enqueue — the "requeue" of the lease state machine.
        """
        now = time.time() if now is None else now
        expired: List[Lease] = []
        to_fail: List[PendingPoint] = []
        with self._lock:
            for lease in self._leases.values():
                if lease.state != "active" or lease.deadline_unix > now:
                    continue
                lease.state = "expired"
                expired.append(lease)
                to_fail.extend(
                    e for e in lease.entries.values() if not e.future.done()
                )
                lease.entries = {}
                worker = self._workers.get(lease.worker_id)
                if worker is not None:
                    worker.lease_ids.discard(lease.lease_id)
                    worker.lost = True
        for lease in expired:
            self.m_lease_expired.inc()
            self._log.warning(
                "cluster.lease.expired",
                lease=lease.lease_id,
                worker=lease.worker_id,
                overdue_s=round(now - lease.deadline_unix, 3),
            )
        for entry in to_fail:
            try:
                entry.future.set_exception(
                    LeaseExpired(
                        f"lease deadline missed for point "
                        f"{entry.spec.label!r}; worker presumed dead"
                    )
                )
            except InvalidStateError:
                pass
        return len(expired)

    # -- introspection ---------------------------------------------------

    def workers_snapshot(self) -> List[Dict[str, Any]]:
        """Fleet listing for ``GET /workers`` (registration order)."""
        now = time.time()
        with self._lock:
            workers = list(self._workers.values())
        return [w.snapshot(now) for w in workers]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "pending_points": len(self._pending),
                "active_leases": sum(
                    1 for l in self._leases.values() if l.state == "active"
                ),
                "workers": len(self._workers),
                "draining": self._draining,
            }
