"""Versioned JSON wire schema for the cluster work-lease protocol.

The coordinator (the ``repro.serve`` daemon running with
``--backend cluster|hybrid``) and ``python -m repro.cluster.worker``
agents speak five messages, all JSON over the daemon's existing HTTP
server (DESIGN.md §10):

========  =======================  ===================================
Method    Path                     Meaning
========  =======================  ===================================
POST      /cluster/register        join the fleet; returns worker_id +
                                   the coordinator's lease/heartbeat
                                   configuration
POST      /cluster/lease           pull a batch of pending points
POST      /cluster/heartbeat       renew the deadlines of held leases
POST      /cluster/complete        upload results / per-point failures
                                   / released (unstarted) points
POST      /cluster/fail            abort a whole lease with one error
========  =======================  ===================================

Every body carries ``protocol: PROTOCOL_VERSION``; a version the
coordinator does not speak is rejected up front rather than
half-parsed. Adding reply fields is compatible within a version:
leased points carry ``tenant`` and ``speculative`` (informational —
workers simulate duplicates exactly like originals), and the
``complete`` reply carries ``duplicates``, the number of uploads that
lost a first-upload-wins race against another copy of the same point
(DESIGN.md §15). Old workers simply ignore the extra fields. Registration also carries the worker's
:func:`repro.engine.pointcache.code_salt`: results are only
bit-identical to a local run when coordinator and worker run the exact
same source tree, so a salt mismatch is a hard 409 — never a silently
wrong figure.

Point specs and results travel as base64-encoded pickles
(:func:`encode_payload` / :func:`decode_payload`) keyed by the point
cache fingerprint, which both sides recompute and verify. Pickle is
acceptable here for the same reason it is in the process pool: the
fleet is one trust domain running one code version (enforced by the
salt check) — the cluster protocol is an extension of the executor
seam, not a public API.

Fleet-tuning knobs (all read by the **coordinator**, which pushes the
values to workers in the registration reply, so one place configures
the fleet):

* ``REPRO_CLUSTER_LEASE_TTL_S`` — lease deadline; a lease not
  heartbeat-renewed within this window expires and its points requeue
  (default 15);
* ``REPRO_CLUSTER_HEARTBEAT_S`` — worker heartbeat interval (default
  ``ttl / 3``);
* ``REPRO_CLUSTER_BATCH`` — max points per lease (default 4);
* ``REPRO_CLUSTER_POLL_S`` — worker idle re-poll interval when the
  queue is empty (default 0.5).
"""

from __future__ import annotations

import base64
import os
import pickle
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError

#: bump on any incompatible wire change; both sides compare exactly.
PROTOCOL_VERSION = 1

DEFAULT_LEASE_TTL_S = 15.0
DEFAULT_BATCH = 4
DEFAULT_POLL_S = 0.5

#: environment flag a worker *process* sets so an injected
#: ``worker_crash`` fault hard-kills the agent even when it simulates
#: in-process (see :mod:`repro.engine.faults`).
WORKER_ENV_FLAG = "REPRO_CLUSTER_WORKER"


class ProtocolError(ConfigError):
    """A malformed or incompatible cluster message (HTTP 400)."""


class UnknownWorker(KeyError):
    """A message referenced a worker_id the coordinator does not know
    (HTTP 404; the worker should re-register)."""


class SaltMismatch(ConfigError):
    """Worker and coordinator run different source trees (HTTP 409)."""


def _positive_float(env: str, default: float) -> float:
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"{env} must be a number, got {raw!r}")
    if value <= 0:
        raise ConfigError(f"{env} must be > 0")
    return value


def lease_ttl_s() -> float:
    """Lease deadline from ``REPRO_CLUSTER_LEASE_TTL_S`` (default 15)."""
    return _positive_float("REPRO_CLUSTER_LEASE_TTL_S", DEFAULT_LEASE_TTL_S)


def heartbeat_s() -> float:
    """Heartbeat interval from ``REPRO_CLUSTER_HEARTBEAT_S``.

    Defaults to a third of the lease TTL so a worker gets two extra
    chances before its lease expires.
    """
    return _positive_float("REPRO_CLUSTER_HEARTBEAT_S", lease_ttl_s() / 3.0)


def batch_size() -> int:
    """Max points per lease from ``REPRO_CLUSTER_BATCH`` (default 4)."""
    raw = os.environ.get("REPRO_CLUSTER_BATCH", "").strip()
    if not raw:
        return DEFAULT_BATCH
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(f"REPRO_CLUSTER_BATCH must be an integer, got {raw!r}")
    if value < 1:
        raise ConfigError("REPRO_CLUSTER_BATCH must be >= 1")
    return value


def poll_s() -> float:
    """Idle re-poll interval from ``REPRO_CLUSTER_POLL_S`` (default 0.5)."""
    return _positive_float("REPRO_CLUSTER_POLL_S", DEFAULT_POLL_S)


# -- payload transport ----------------------------------------------------


def encode_payload(obj: Any) -> str:
    """Pickle ``obj`` and wrap it for a JSON string field."""
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def decode_payload(text: str) -> Any:
    """Invert :func:`encode_payload`; raises ProtocolError when mangled."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise ProtocolError(f"undecodable payload: {type(exc).__name__}: {exc}")


# -- message validation ---------------------------------------------------


def require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


def check_version(payload: Any) -> Dict[str, Any]:
    """Common envelope check for every cluster message body."""
    require(isinstance(payload, dict), "cluster message must be a JSON object")
    version = payload.get("protocol")
    require(
        version == PROTOCOL_VERSION,
        f"unsupported cluster protocol {version!r}; "
        f"this coordinator speaks {PROTOCOL_VERSION}",
    )
    return payload


def worker_id_of(payload: Dict[str, Any]) -> str:
    worker_id = payload.get("worker_id")
    require(
        isinstance(worker_id, str) and bool(worker_id),
        "'worker_id' must be a non-empty string",
    )
    return worker_id


def string_list(payload: Dict[str, Any], key: str) -> List[str]:
    value = payload.get(key, [])
    require(
        isinstance(value, list) and all(isinstance(v, str) for v in value),
        f"{key!r} must be a list of strings",
    )
    return value


# -- message builders (worker side) ---------------------------------------


def register_request(
    code_salt: str, capacity: int, host: str, pid: int, name: Optional[str] = None
) -> Dict[str, Any]:
    return {
        "protocol": PROTOCOL_VERSION,
        "code_salt": code_salt,
        "capacity": capacity,
        "host": host,
        "pid": pid,
        "name": name,
    }


def lease_request(worker_id: str, capacity: int) -> Dict[str, Any]:
    return {
        "protocol": PROTOCOL_VERSION,
        "worker_id": worker_id,
        "capacity": capacity,
    }


def heartbeat_request(worker_id: str, lease_ids: List[str]) -> Dict[str, Any]:
    return {
        "protocol": PROTOCOL_VERSION,
        "worker_id": worker_id,
        "lease_ids": list(lease_ids),
    }


def complete_request(
    worker_id: str,
    lease_id: str,
    results: List[Dict[str, str]],
    failures: Optional[List[Dict[str, str]]] = None,
    released: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """``results``: ``[{"fingerprint", "payload"}]`` (payload = pickled
    PointResult); ``failures``: ``[{"fingerprint", "error"}]``;
    ``released``: fingerprints of points the worker never started
    (drain) — requeued without charging an attempt."""
    return {
        "protocol": PROTOCOL_VERSION,
        "worker_id": worker_id,
        "lease_id": lease_id,
        "results": results,
        "failures": failures or [],
        "released": released or [],
    }


def fail_request(worker_id: str, lease_id: str, error: str) -> Dict[str, Any]:
    return {
        "protocol": PROTOCOL_VERSION,
        "worker_id": worker_id,
        "lease_id": lease_id,
        "error": error,
    }
