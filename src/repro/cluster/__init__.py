"""Distributed worker fleet for the serve daemon (DESIGN.md §10).

``python -m repro.serve --backend cluster`` turns the daemon into a
coordinator; ``python -m repro.cluster.worker`` agents lease batches of
points over a versioned JSON/HTTP protocol, simulate them with the
unchanged engine, and upload results keyed by the point-cache
fingerprint — so a fleet run is bit-identical to a serial one.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    Lease,
    LeaseExpired,
    PendingPoint,
    WorkerInfo,
    WorkerLeaseError,
    WorkerPointError,
)
from repro.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SaltMismatch,
    UnknownWorker,
)

# The agent side (ClusterClient / WorkerAgent / LocalTransport) lives in
# repro.cluster.worker and is deliberately NOT imported here: importing
# it at package-init time would make `python -m repro.cluster.worker`
# warn about the module being pre-imported.

__all__ = [
    "ClusterCoordinator",
    "Lease",
    "LeaseExpired",
    "PendingPoint",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SaltMismatch",
    "UnknownWorker",
    "WorkerInfo",
    "WorkerLeaseError",
    "WorkerPointError",
]
