"""Pull-loop worker agent: lease points, simulate, upload results.

Run one (or N) per host against a coordinator started with
``python -m repro.serve --backend cluster``::

    python -m repro.cluster.worker --coordinator http://coord:8337
    python -m repro.cluster.worker --once        # one lease, then exit

The agent registers (proving it runs the same source tree via
``pointcache.code_salt``), then loops: lease a batch of points,
simulate them with the exact engine entry point a local run uses
(:func:`repro.engine.parallel.run_cached_spec`), upload the pickled
results keyed by fingerprint, repeat. A heartbeat thread renews held
leases every ``heartbeat_s`` (pushed by the coordinator at
registration) so a healthy worker never loses a lease; a worker that
dies simply stops heartbeating and the coordinator requeues its points.

Graceful drain mirrors the daemon's SIGTERM story: the first SIGTERM /
SIGINT stops the agent at the next *point* boundary — points of the
current lease that never started are returned in the ``released`` field
of the final ``complete`` message and requeue without charging an
attempt.

Fault injection: the module sets ``REPRO_CLUSTER_WORKER=1``
(:data:`repro.cluster.protocol.WORKER_ENV_FLAG`) so an injected
``worker_crash`` (``REPRO_FAULT_SPEC``, :mod:`repro.engine.faults`)
hard-kills the agent process even when it simulates in-process — CI
uses this to kill a worker mid-lease and assert the fleet still
finishes bit-identically.

Simulation fans out over a local ``ProcessPoolExecutor`` when
``--capacity`` (default ``REPRO_WORKERS`` / CPU count) is > 1;
``--capacity 1`` stays in-process and deterministic.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster import protocol
from repro.engine import pointcache
from repro.engine.parallel import default_workers, run_cached_spec
from repro.obs import events as obs_events
from repro.serve.client import ServeClient, ServeError


def _simulate_point(spec):
    """One point, no run dir (timelines belong to the coordinator's
    run); module-level so the local ProcessPool can pickle it."""
    return run_cached_spec(spec, run_dir=None)


class ClusterClient(ServeClient):
    """:class:`ServeClient` plus the ``/cluster/*`` endpoints.

    Doubles as the agent's HTTP transport — each method takes a
    protocol message dict and returns the parsed JSON reply.
    """

    def register(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/cluster/register", payload)

    def lease(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/cluster/lease", payload)

    def heartbeat(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/cluster/heartbeat", payload)

    def complete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/cluster/complete", payload)

    def fail(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request("POST", "/cluster/fail", payload)

    def workers(self) -> List[Dict[str, Any]]:
        """``GET /workers`` — the coordinator's fleet listing."""
        return self._request("GET", "/workers")["workers"]


class LocalTransport:
    """In-process transport: the hybrid backend's embedded agent talks
    to the coordinator by direct method call, same message shapes."""

    def __init__(self, coordinator) -> None:
        self.coordinator = coordinator

    def register(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.coordinator.register(payload)

    def lease(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.coordinator.lease(payload)

    def heartbeat(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.coordinator.heartbeat(payload)

    def complete(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.coordinator.complete(payload)

    def fail(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.coordinator.fail(payload)


class WorkerAgent:
    """The lease/simulate/upload loop behind ``python -m repro.cluster.worker``."""

    def __init__(
        self,
        transport,
        capacity: Optional[int] = None,
        once: bool = False,
        name: Optional[str] = None,
        simulate=None,
    ) -> None:
        self.transport = transport
        self.capacity = capacity if capacity is not None else default_workers()
        if self.capacity < 1:
            raise protocol.ProtocolError("worker capacity must be >= 1")
        self.once = once
        self.name = name
        # Injectable for tests and the hybrid embedded agent; None means
        # the real engine (with a local pool when capacity > 1).
        self._simulate = simulate
        self._stop = threading.Event()
        self._draining = False
        self._lease_lock = threading.Lock()
        self._active_leases: set = set()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._log = obs_events.get_event_log()
        self.worker_id: Optional[str] = None
        self.heartbeat_s = protocol.heartbeat_s()
        self.poll_s = protocol.poll_s()
        self.points_done = 0
        self.points_failed = 0
        self.points_duplicate = 0
        self.leases_done = 0

    # -- lifecycle ------------------------------------------------------

    def drain(self) -> None:
        """Finish the current point, release the rest, then exit."""
        self._draining = True
        self._stop.set()

    def _register(self) -> None:
        reply = self.transport.register(
            protocol.register_request(
                code_salt=pointcache.code_salt(),
                capacity=self.capacity,
                host=socket.gethostname(),
                pid=os.getpid(),
                name=self.name,
            )
        )
        self.worker_id = reply["worker_id"]
        self.heartbeat_s = float(reply.get("heartbeat_s", self.heartbeat_s))
        self.poll_s = float(reply.get("poll_s", self.poll_s))
        self._log.info(
            "cluster.worker.registered",
            worker=self.worker_id,
            capacity=self.capacity,
            heartbeat_s=self.heartbeat_s,
        )

    def run(self) -> int:
        """Blocking agent loop; returns a process exit code."""
        self._register()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="cluster-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        try:
            while not self._stop.is_set():
                try:
                    grant = self.transport.lease(
                        protocol.lease_request(self.worker_id, self.capacity)
                    )
                except Exception as exc:
                    if not self._handle_transport_error("lease", exc):
                        return 1
                    continue
                points = grant.get("points") or []
                lease_id = grant.get("lease_id")
                if not lease_id or not points:
                    if grant.get("draining"):
                        self._log.info(
                            "cluster.worker.coordinator_draining",
                            worker=self.worker_id,
                        )
                        break
                    self._stop.wait(self.poll_s)
                    continue
                self._run_lease(lease_id, points)
                self.leases_done += 1
                if self.once:
                    break
        finally:
            self._stop.set()
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=2)
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
        self._log.info(
            "cluster.worker.exit",
            worker=self.worker_id,
            leases=self.leases_done,
            points=self.points_done,
            failed=self.points_failed,
            duplicates=self.points_duplicate,
            drained=self._draining,
        )
        return 0

    def _handle_transport_error(self, what: str, exc: Exception) -> bool:
        """Recover from a failed coordinator call; False = give up."""
        if isinstance(exc, protocol.UnknownWorker) or (
            isinstance(exc, ServeError) and exc.status == 404
        ):
            # Coordinator restarted and forgot us: re-register.
            self._log.warning(
                "cluster.worker.reregister", worker=self.worker_id, after=what
            )
            try:
                self._register()
                return True
            except Exception as register_exc:  # noqa: BLE001 - reported below
                exc = register_exc
        self._log.error(
            "cluster.worker.transport_error",
            worker=self.worker_id,
            call=what,
            error=f"{type(exc).__name__}: {exc}",
        )
        if self._stop.is_set():
            return False
        self._stop.wait(self.poll_s)
        return not self._stop.is_set()

    # -- heartbeats -----------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            with self._lease_lock:
                lease_ids = sorted(self._active_leases)
            try:
                self.transport.heartbeat(
                    protocol.heartbeat_request(self.worker_id, lease_ids)
                )
            except Exception as exc:
                # A missed heartbeat is recoverable until the lease TTL
                # runs out; keep trying rather than dying mid-lease.
                self._log.warning(
                    "cluster.worker.heartbeat_error",
                    worker=self.worker_id,
                    error=f"{type(exc).__name__}: {exc}",
                )

    # -- lease execution ------------------------------------------------

    def _decode(self, item: Dict[str, Any]) -> Tuple[str, Any]:
        fp = item.get("fingerprint")
        protocol.require(
            isinstance(fp, str) and isinstance(item.get("spec"), str),
            "lease point needs string 'fingerprint' and 'spec'",
        )
        spec = protocol.decode_payload(item["spec"])
        if pointcache.fingerprint(spec) != fp:
            raise protocol.ProtocolError(
                f"fingerprint mismatch for leased point {spec.label!r}"
            )
        return fp, spec

    def _run_lease(self, lease_id: str, points: List[Dict[str, Any]]) -> None:
        with self._lease_lock:
            self._active_leases.add(lease_id)
        results: List[Dict[str, str]] = []
        failures: List[Dict[str, str]] = []
        released: List[str] = []
        t0 = time.perf_counter()
        try:
            decoded = [self._decode(item) for item in points]
            if self.capacity > 1 and self._simulate is None:
                self._execute_pool(decoded, results, failures, released)
            else:
                self._execute_serial(decoded, results, failures, released)
        except Exception as exc:
            # A lease-level fault (undecodable point, pool setup): abort
            # the whole lease so the coordinator can fail/requeue it.
            try:
                self.transport.fail(
                    protocol.fail_request(
                        self.worker_id,
                        lease_id,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
            except Exception:
                pass  # the lease TTL is the backstop
            self._log.error(
                "cluster.worker.lease_abort",
                worker=self.worker_id,
                lease=lease_id,
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        finally:
            with self._lease_lock:
                self._active_leases.discard(lease_id)
        try:
            reply = self.transport.complete(
                protocol.complete_request(
                    self.worker_id, lease_id, results, failures, released
                )
            )
        except Exception as exc:
            self._log.error(
                "cluster.worker.upload_error",
                worker=self.worker_id,
                lease=lease_id,
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        # First-upload-wins: some of our uploads may have lost the race
        # against a speculative duplicate on another worker. That is
        # wasted work, not an error — count it so operators can see how
        # much duplication speculation costs this worker.
        duplicates = 0
        if isinstance(reply, dict):
            value = reply.get("duplicates", 0)
            duplicates = value if isinstance(value, int) else 0
        if duplicates:
            self.points_duplicate += duplicates
        self._log.info(
            "cluster.lease.done",
            worker=self.worker_id,
            lease=lease_id,
            results=len(results),
            failures=len(failures),
            released=len(released),
            duplicates=duplicates,
            wall_s=time.perf_counter() - t0,
        )

    def _execute_serial(
        self,
        decoded: List[Tuple[str, Any]],
        results: List[Dict[str, str]],
        failures: List[Dict[str, str]],
        released: List[str],
    ) -> None:
        simulate = self._simulate if self._simulate is not None else _simulate_point
        for fp, spec in decoded:
            if self._draining:
                released.append(fp)
                continue
            try:
                result = simulate(spec)
            except Exception as exc:
                self.points_failed += 1
                failures.append(
                    {
                        "fingerprint": fp,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            self.points_done += 1
            results.append(
                {
                    "fingerprint": fp,
                    "payload": protocol.encode_payload(result),
                }
            )

    def _execute_pool(
        self,
        decoded: List[Tuple[str, Any]],
        results: List[Dict[str, str]],
        failures: List[Dict[str, str]],
        released: List[str],
    ) -> None:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.capacity)
        futures: List[Tuple[Any, str, Any]] = []
        for fp, spec in decoded:
            if self._draining:
                released.append(fp)
                continue
            try:
                futures.append((self._pool.submit(_simulate_point, spec), fp, spec))
            except BrokenProcessPool:
                self._pool = None
                released.append(fp)
        for future, fp, spec in futures:
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                # The pool is gone; a fresh one is built next lease. The
                # coordinator charges these as ordinary point failures.
                self._pool = None
                self.points_failed += 1
                failures.append(
                    {
                        "fingerprint": fp,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            except Exception as exc:
                self.points_failed += 1
                failures.append(
                    {
                        "fingerprint": fp,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            else:
                self.points_done += 1
                results.append(
                    {
                        "fingerprint": fp,
                        "payload": protocol.encode_payload(result),
                    }
                )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="Worker agent for a repro.serve cluster coordinator.",
    )
    parser.add_argument(
        "--coordinator",
        default="http://127.0.0.1:8337",
        help="coordinator base URL (default %(default)s)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="points per lease and local pool size "
        "(default: REPRO_WORKERS, else the CPU count)",
    )
    parser.add_argument(
        "--name", default=None, help="human-readable name shown in /workers"
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="process exactly one lease, then exit (debugging)",
    )
    args = parser.parse_args(argv)
    # Mark this process as a cluster worker so an injected worker_crash
    # fault hard-kills it even on the in-process (capacity=1) path.
    os.environ[protocol.WORKER_ENV_FLAG] = "1"
    agent = WorkerAgent(
        ClusterClient(args.coordinator),
        capacity=args.capacity,
        once=args.once,
        name=args.name,
    )
    signal.signal(signal.SIGTERM, lambda *_: agent.drain())
    signal.signal(signal.SIGINT, lambda *_: agent.drain())
    try:
        return agent.run()
    except ServeError as exc:
        print(f"cluster worker: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
