"""Parallel execution of independent simulation points.

A figure of the paper is a grid of independent trace simulations: every
point owns its cache hierarchy, workload state, and RNG seeds, so points
share nothing and can run in separate processes. This module provides
the fan-out:

* :class:`PointSpec` — a picklable description of one grid point (the
  workload is shipped *pre-build*; the worker's simulator calls
  ``build()`` with the spec's seed, which is what makes serial and
  parallel runs bit-identical);
* :func:`run_spec` — simulate one spec (the worker entry point);
* :func:`run_points` — run a spec list, preserving order, across
  ``REPRO_WORKERS`` processes (1 = deterministic serial fallback);
* :func:`run_tasks` — the same fan-out for arbitrary picklable
  functions (used by the collocation study, whose results are not
  :class:`PointResult` objects).

Results are memoized through :mod:`repro.engine.pointcache` unless
``REPRO_NO_CACHE=1``.

Fault tolerance (DESIGN.md §9): a failing point is retried up to
``REPRO_RETRIES`` times with exponential backoff starting at
``REPRO_RETRY_BACKOFF_S``; a collapsed ``ProcessPoolExecutor`` (an
OOM-killed or crashed worker takes the whole pool down) is rebuilt and
the in-flight points retried; ``REPRO_POINT_TIMEOUT_S`` abandons
straggler attempts and reschedules them. Because a point's result is a
pure function of its spec, a retried point is bit-identical to an
undisturbed run. Points that exhaust their retries raise
:class:`PointFailure` — after the run manifest has been finalized with
``status: failed`` and per-point error records, so no exit path leaves
an orphaned, manifest-less run directory. ``REPRO_FAULT_SPEC``
(:mod:`repro.engine.faults`) injects worker crashes, point errors,
stragglers, and cache corruption deterministically to test all of this.

Observability (:mod:`repro.obs`, DESIGN.md §6): every ``run_points``
call writes a run manifest under ``results/runs/<run_id>/`` (disable
with ``REPRO_NO_MANIFEST=1``) recording full per-point config, seeds,
the code hash, host info, wall/sim time, and cache-hit provenance.
``REPRO_EPOCH=N`` makes each freshly simulated point emit an epoch
timeline JSONL next to the manifest. ``REPRO_LOG=text|json`` streams
per-point start/finish/cached events with a live ETA (plus
``point.retry`` / ``point.failed`` recovery events). ``REPRO_PROFILE=1``
emits a cProfile top-20 per simulated point through the event log, the
point label prefixed atomically (no interleaving under parallel runs).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    as_completed,
)
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.engine import faults, pointcache, snapshot
from repro.errors import ConfigError
from repro.obs import events as obs_events
from repro.obs import manifest as obs_manifest
from repro.obs.manifest import PointRecord, RunManifest
from repro.nic.arrivals import BurstProfile
from repro.obs.timeline import ObsContext, write_jsonl
from repro.params import SystemConfig
from repro.sched.policy import make_policy
from repro.sched.tenants import DEFAULT_TENANT
from repro.sidechannel.observer import ObserverConfig
from repro.workloads.base import Workload

T = TypeVar("T")

#: default attempts-after-the-first for a failing point.
DEFAULT_RETRIES = 2
#: default first-retry backoff; doubles per subsequent retry.
DEFAULT_RETRY_BACKOFF_S = 0.1

#: run directory of the most recent completed run_points call in this
#: process (None until one completes, or when manifests are disabled).
_LAST_RUN_DIR: Optional[Path] = None


class PointFailure(RuntimeError):
    """A grid point failed after exhausting its retries.

    ``errors`` maps spec-list index -> error string for every failed
    point; the run manifest (status ``failed``) records the same.
    """

    def __init__(self, message: str, errors: Dict[int, str]) -> None:
        super().__init__(message)
        self.errors = errors


def last_run_dir() -> Optional[Path]:
    """Run directory written by the most recent :func:`run_points`."""
    return _LAST_RUN_DIR


def retry_limit() -> int:
    """Retries per failing point from ``REPRO_RETRIES`` (default 2)."""
    env = os.environ.get("REPRO_RETRIES", "").strip()
    if not env:
        return DEFAULT_RETRIES
    try:
        retries = int(env)
    except ValueError:
        raise ConfigError(f"REPRO_RETRIES must be an integer, got {env!r}")
    if retries < 0:
        raise ConfigError("REPRO_RETRIES must be >= 0")
    return retries


def retry_backoff_s() -> float:
    """First-retry backoff seconds from ``REPRO_RETRY_BACKOFF_S``."""
    env = os.environ.get("REPRO_RETRY_BACKOFF_S", "").strip()
    if not env:
        return DEFAULT_RETRY_BACKOFF_S
    try:
        backoff = float(env)
    except ValueError:
        raise ConfigError(
            f"REPRO_RETRY_BACKOFF_S must be a number, got {env!r}"
        )
    if backoff < 0:
        raise ConfigError("REPRO_RETRY_BACKOFF_S must be >= 0")
    return backoff


def point_timeout_s() -> Optional[float]:
    """Straggler timeout from ``REPRO_POINT_TIMEOUT_S`` (None = off).

    A parallel attempt exceeding the timeout is abandoned (the worker
    finishes in the background; its result is discarded) and the point
    rescheduled, charging one attempt. The serial path cannot interrupt
    an in-process simulation, so the timeout only applies to workers.
    """
    env = os.environ.get("REPRO_POINT_TIMEOUT_S", "").strip()
    if not env:
        return None
    try:
        timeout = float(env)
    except ValueError:
        raise ConfigError(
            f"REPRO_POINT_TIMEOUT_S must be a number, got {env!r}"
        )
    if timeout <= 0:
        raise ConfigError("REPRO_POINT_TIMEOUT_S must be > 0")
    return timeout


def backoff_delay(backoff: float, attempt: int) -> float:
    """Exponential backoff before retry number ``attempt`` (1-based)."""
    return backoff * (2 ** max(0, attempt - 1))


@dataclass(frozen=True)
class PointSpec:
    """Everything needed to simulate one grid point in any process."""

    label: str
    system: SystemConfig
    workload: Workload
    policy: str = "ddio"
    sweeper: bool = False
    nic_tx_sweep: bool = False
    queued_depth: int = 1
    seed: int = 42
    warmup_requests: Optional[int] = None
    measure_requests: Optional[int] = None
    #: prime+probe attacker-observer config (None = off); perturbs the
    #: simulation, so it participates in the cache fingerprint.
    observer: Optional[ObserverConfig] = None
    #: seeded bursty-load profile (None = constant backlog target).
    burst: Optional[BurstProfile] = None
    #: DDIO way count applied at the warmup->measure boundary (None =
    #: the system-wide mask throughout). The measure-phase knob that
    #: lets a way-mask sweep share one warmup snapshot; see
    #: :class:`repro.engine.tracer.TraceConfig`.
    measure_ddio_ways: Optional[int] = None

    def cache_key(self) -> str:
        """Deterministic identity of the simulation's inputs.

        The label is presentation-only and deliberately excluded;
        :func:`run_cached_spec` re-stamps it on cache hits. The
        observer, burst, and measure-override lines are appended only
        when set, so every pre-existing fingerprint layout is unchanged.
        """
        key = "\n".join(
            (
                repr(self.system),
                self.workload.cache_key(),
                self.policy,
                repr(
                    (
                        self.sweeper,
                        self.nic_tx_sweep,
                        self.queued_depth,
                        self.seed,
                        self.warmup_requests,
                        self.measure_requests,
                    )
                ),
            )
        )
        if self.observer is not None:
            key += "\nobserver=" + repr(self.observer)
        if self.burst is not None:
            key += "\nburst=" + repr(self.burst)
        if self.measure_ddio_ways is not None:
            key += "\nmeasure_ddio_ways=" + repr(self.measure_ddio_ways)
        return key

    def warmup_key(self) -> str:
        """Identity of the config prefix up to end-of-warmup.

        Everything that influences simulator state through the last
        warmup request — system, workload, policy, switches, seed,
        warmup count, burst profile — and nothing that only shapes the
        measured window (measure count, measure-phase DDIO override,
        observer, label). Two specs with equal warmup keys fork their
        measured windows off one shared warm-state snapshot
        (:mod:`repro.engine.snapshot`). Any field added to this key
        must be added to :meth:`cache_key` too (the point identity
        must always subsume the warmup identity).
        """
        key = "\n".join(
            (
                repr(self.system),
                self.workload.cache_key(),
                self.policy,
                repr(
                    (
                        self.sweeper,
                        self.nic_tx_sweep,
                        self.queued_depth,
                        self.seed,
                        self.warmup_requests,
                    )
                ),
            )
        )
        if self.burst is not None:
            key += "\nburst=" + repr(self.burst)
        return key


def _timeline_filename(spec: PointSpec) -> str:
    slug = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in spec.label
    )[:80]
    return f"{slug}-{pointcache.fingerprint(spec)[:8]}.jsonl"


def run_spec(spec: PointSpec, run_dir: Optional[str] = None):
    """Simulate one spec end to end; the worker-process entry point.

    Must stay a module-level function so ProcessPoolExecutor can pickle
    it. Imports are deferred to avoid a cycle with
    ``repro.experiments.common`` (which imports this module).

    With ``REPRO_EPOCH`` set, the simulation samples an epoch timeline;
    when ``run_dir`` is given the timeline is written to
    ``<run_dir>/timelines/`` and the result's ``timeline_file`` records
    the manifest-relative path.
    """
    from repro.engine.analytic import ServiceProfile, solve_peak_throughput
    from repro.engine.tracer import TraceConfig, TraceSimulator
    from repro.experiments.common import PointResult

    log = obs_events.get_event_log()
    cfg = TraceConfig(
        system=spec.system,
        workload=spec.workload,
        policy=spec.policy,
        sweeper=spec.sweeper,
        nic_tx_sweep=spec.nic_tx_sweep,
        queued_depth=spec.queued_depth,
        seed=spec.seed,
        warmup_requests=spec.warmup_requests,
        measure_requests=spec.measure_requests,
        observer=spec.observer,
        burst=spec.burst,
        measure_ddio_ways=spec.measure_ddio_ways,
    )
    obs = ObsContext.from_env()
    profiling = os.environ.get("REPRO_PROFILE", "") == "1"
    log.debug("point.simulate", label=spec.label, pid=os.getpid())
    faults.on_point_start(spec.label)
    start = time.perf_counter()
    sim = TraceSimulator(cfg, obs=obs)
    # Warm-state snapshots (DESIGN.md §14): a snapshot miss arms the
    # on_warm capture hook; a hit skips the warmup entirely. Failures
    # anywhere on the snapshot path must never fail the point.
    warm_state = None
    warm_fp: Optional[str] = None
    on_warm = None
    if snapshot.eligible(spec):
        warm_fp = snapshot.warmup_fingerprint(spec)
        warm_state = snapshot.load_state(warm_fp, sim.engine)

        # Armed even on a hit: run() only calls on_warm after a
        # *simulated* warmup, so this also overwrites a stored state
        # that failed restore validation with a fresh capture.
        def on_warm(state, _fp=warm_fp, _engine=sim.engine):
            snapshot.store_state(_fp, _engine, state)

    if profiling:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        trace = sim.run(warm_state=warm_state, on_warm=on_warm)
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(20)
        # One atomic event, label-prefixed, instead of a bare print that
        # interleaved across REPRO_WORKERS>1 workers. force=True keeps
        # the output visible for users who never set REPRO_LOG.
        log.emit(
            "profile", force=True, label=spec.label, text=buf.getvalue()
        )
    else:
        trace = sim.run(warm_state=warm_state, on_warm=on_warm)
    elapsed = time.perf_counter() - start
    if warm_state is not None:
        if sim.warm_restored:
            snapshot.counters["restored"] += 1
            log.debug(
                "snapshot.restore",
                label=spec.label,
                fingerprint=warm_fp[:12],
                engine=sim.engine,
            )
        else:
            # PR 7-style deterministic fallback: the stored state did
            # not match this simulator (stale schema, foreign engine),
            # so the warmup was simulated normally — logged, never
            # silent, and bit-identical to the no-snapshot path.
            snapshot.counters["fallbacks"] += 1
            log.warning(
                "snapshot.fallback",
                label=spec.label,
                fingerprint=warm_fp[:12],
                engine=sim.engine,
                reason="stored state did not validate against this simulator",
            )
    timeline_file: Optional[str] = None
    if obs is not None and obs.timeline and run_dir is not None:
        rel = Path("timelines") / _timeline_filename(spec)
        write_jsonl(Path(run_dir) / rel, obs.timeline)
        timeline_file = str(rel)
    probe_file: Optional[str] = None
    if sim.observer is not None and sim.observer.records and run_dir is not None:
        rel = Path("probes") / _timeline_filename(spec)
        write_jsonl(Path(run_dir) / rel, sim.observer.records)
        probe_file = str(rel)
    profile = ServiceProfile.from_trace(trace)
    perf = solve_peak_throughput(profile, spec.system)
    return PointResult(
        label=spec.label,
        system=spec.system,
        trace=trace,
        profile=profile,
        perf=perf,
        sim_seconds=elapsed,
        timeline_file=timeline_file,
        probe_file=probe_file,
        warm_restored=bool(getattr(sim, "warm_restored", False)),
    )


def run_cached_spec(spec: PointSpec, run_dir: Optional[str] = None):
    """:func:`run_spec` through the persistent point cache."""
    if not pointcache.cache_enabled():
        return run_spec(spec, run_dir=run_dir)
    fp = pointcache.fingerprint(spec)
    cached = pointcache.load(fp, require_attrs=pointcache.RESULT_ATTRS)
    if cached is not None:
        cached.label = spec.label
        cached.from_cache = True
        # The cached pickle may reference a timeline or probe file from
        # the run that produced it (those files belong to another run
        # directory) and a cluster worker_id from the run that
        # simulated it.
        cached.timeline_file = None
        cached.probe_file = None
        cached.worker_id = None
        # Provenance of *this* run: a cache hit didn't restore anything.
        cached.warm_restored = False
        return cached
    result = run_spec(spec, run_dir=run_dir)
    pointcache.store(fp, result)
    return result


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS``, else the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ConfigError(f"REPRO_WORKERS must be an integer, got {env!r}")
        if workers < 1:
            raise ConfigError("REPRO_WORKERS must be >= 1")
        return workers
    return max(1, os.cpu_count() or 1)


def start_manifest(
    run_label: Optional[str], workers: int, tenant: str = DEFAULT_TENANT
) -> Tuple[Optional[RunManifest], Optional[Path]]:
    """Create a run manifest + run directory (None, None when disabled).

    Shared by :func:`run_points` and the ``repro.serve`` scheduler so a
    served job produces exactly the artifact a local run does.
    ``tenant`` records which tenant's submission produced the run
    (provenance; ``timeline --list`` surfaces non-default tenants).
    """
    if not obs_manifest.manifests_enabled():
        return None, None
    manifest = RunManifest.create(run_label, workers)
    manifest.code_salt = pointcache.code_salt()
    manifest.tenant = tenant
    return manifest, obs_manifest.runs_dir() / manifest.run_id


def finish_manifest(
    manifest: RunManifest,
    run_dir: Path,
    spec_list: Sequence[PointSpec],
    results: Sequence,
    wall_seconds: float,
    status: str = "done",
    errors: Optional[Dict[int, str]] = None,
    attempts: Optional[Sequence[int]] = None,
) -> None:
    """Fill in per-point records and write ``manifest.json`` atomically.

    Called on **every** exit path (success, failure, cancellation, pool
    collapse, daemon drain): ``results`` may contain ``None`` holes for
    points that never completed; ``errors`` maps spec index -> error
    string for points that failed; ``attempts`` records how many times
    each point was tried. ``status`` is the run-level outcome
    (``done | partial | failed | cancelled``).
    """
    global _LAST_RUN_DIR
    errors = errors or {}
    padded = list(results) + [None] * (len(spec_list) - len(results))
    manifest.status = status
    manifest.wall_seconds = wall_seconds
    manifest.sim_seconds_total = sum(
        r.sim_seconds for r in padded if r is not None
    )
    manifest.points = [
        _point_record(
            spec,
            result,
            pointcache.fingerprint(spec),
            error=errors.get(i),
            attempts=attempts[i] if attempts is not None else 1,
        )
        for i, (spec, result) in enumerate(zip(spec_list, padded))
    ]
    manifest.write(run_dir / "manifest.json")
    _LAST_RUN_DIR = run_dir


def _point_record(
    spec: PointSpec,
    result,
    fingerprint: str,
    error: Optional[str] = None,
    attempts: int = 1,
) -> PointRecord:
    if result is not None:
        status = "done"
    elif error is not None:
        status = "failed"
    else:
        status = "skipped"
    return PointRecord(
        label=spec.label,
        fingerprint=fingerprint,
        system=repr(spec.system),
        workload=spec.workload.cache_key(),
        policy=spec.policy,
        sweeper=spec.sweeper,
        nic_tx_sweep=spec.nic_tx_sweep,
        queued_depth=spec.queued_depth,
        seed=spec.seed,
        warmup_requests=spec.warmup_requests,
        measure_requests=spec.measure_requests,
        from_cache=result.from_cache if result is not None else False,
        sim_seconds=result.sim_seconds if result is not None else 0.0,
        timeline_file=(
            getattr(result, "timeline_file", None) if result is not None else None
        ),
        probe_file=(
            getattr(result, "probe_file", None) if result is not None else None
        ),
        observer=repr(spec.observer) if spec.observer is not None else None,
        probe_seed=(
            spec.observer.probe_seed if spec.observer is not None else None
        ),
        burst=repr(spec.burst) if spec.burst is not None else None,
        status=status,
        error=error,
        attempts=max(1, attempts),
        worker_id=getattr(result, "worker_id", None),
        warmup_fingerprint=(
            snapshot.warmup_fingerprint(spec) if spec.observer is None else None
        ),
        warm_restored=bool(getattr(result, "warm_restored", False)),
    )


def _emit_point_progress(
    log, run_label: Optional[str], done: int, total: int, result, t0: float
) -> None:
    """One atomic finish/ETA line per completed point."""
    if not log.would_emit("info"):
        return
    elapsed = time.perf_counter() - t0
    eta = (elapsed / done) * (total - done) if done else 0.0
    log.info(
        "point.finish",
        run=run_label or "-",
        label=result.label,
        cached=result.from_cache,
        sim_s=result.sim_seconds,
        done=f"{done}/{total}",
        eta_s=eta,
    )


def _run_serial(
    spec_list: Sequence[PointSpec],
    runner: Callable,
    log,
    run_label: Optional[str],
    t0: float,
    retries: int,
    backoff: float,
    results: List,
    attempts: List[int],
    errors: Dict[int, str],
) -> None:
    """In-process execution with per-point retries (fills the outputs)."""
    total = len(spec_list)
    done = 0
    for i, spec in enumerate(spec_list):
        attempt = 0
        while True:
            attempt += 1
            attempts[i] = attempt
            try:
                result = runner(spec)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempt > retries:
                    errors[i] = error
                    log.error(
                        "point.failed",
                        run=run_label or "-",
                        label=spec.label,
                        attempts=attempt,
                        error=error,
                    )
                    break
                delay = backoff_delay(backoff, attempt)
                log.warning(
                    "point.retry",
                    run=run_label or "-",
                    label=spec.label,
                    attempt=attempt,
                    backoff_s=delay,
                    error=error,
                )
                if delay:
                    time.sleep(delay)
                continue
            results[i] = result
            done += 1
            _emit_point_progress(log, run_label, done, total, result, t0)
            break


def _run_parallel(
    spec_list: Sequence[PointSpec],
    runner: Callable,
    workers: int,
    log,
    run_label: Optional[str],
    t0: float,
    retries: int,
    backoff: float,
    timeout: Optional[float],
    results: List,
    attempts: List[int],
    errors: Dict[int, str],
    holds: Optional[Dict[int, List[int]]] = None,
    policy: Optional[str] = None,
    tenant: str = DEFAULT_TENANT,
) -> None:
    """Process-pool execution with crash recovery (fills the outputs).

    Recovery semantics:

    * an attempt raising an ordinary exception is retried with
      exponential backoff until its ``retries`` budget runs out;
    * a ``BrokenProcessPool`` (worker death kills the whole pool)
      rebuilds the pool once per collapse; every in-flight point is
      charged one attempt and rescheduled;
    * a cancelled attempt (collateral of ``cancel_futures`` during a
      rebuild) is rescheduled without charge — it never ran;
    * with ``timeout`` set, an attempt running longer is abandoned (the
      worker finishes in the background, its result discarded) and the
      point rescheduled, charging one attempt.

    ``holds`` maps warmup-group leader index -> follower indices
    (:func:`repro.engine.snapshot.warmup_groups`): followers stay out
    of the ready queue until their leader terminally resolves (result
    *or* exhausted retries), so exactly one worker simulates the shared
    warmup and stores the snapshot the followers then restore. Safe
    against deadlock because a leader always resolves: it is never held
    itself, and both terminal paths release its followers.

    Dispatch order comes from the shared policy engine
    (:func:`repro.sched.policy.make_policy`): ready indices are pushed
    into a :class:`PolicyQueue` and submitted in pop order. With the
    default ``priority`` policy (all points priority 0) this is exactly
    the historical FIFO index order, so results stay bit-identical; the
    seam exists so local runs obey ``REPRO_SCHED_POLICY`` like every
    other backend. Backoff delays live outside the policy queue (a
    ``delayed`` list) — a policy orders *runnable* work, not timers.
    """
    total = len(spec_list)
    pool = ProcessPoolExecutor(max_workers=workers)
    pending: Dict[Future, int] = {}
    started: Dict[Future, float] = {}
    owner: Dict[Future, ProcessPoolExecutor] = {}
    holds = dict(holds or {})
    held = {i for followers in holds.values() for i in followers}
    queue = make_policy(policy)
    for i in range(total):
        if i not in held:
            queue.push(i, tenant=tenant)
    delayed: List[Tuple[float, int]] = []
    done_count = 0

    def release_followers(i: int) -> None:
        for j in holds.pop(i, ()):
            queue.push(j, tenant=tenant)

    def rebuild_if_current(broken: ProcessPoolExecutor) -> None:
        nonlocal pool
        if pool is not broken:
            return  # a previous collapse already rebuilt it
        log.warning(
            "pool.rebuild", run=run_label or "-", workers=workers
        )
        pool = ProcessPoolExecutor(max_workers=workers)
        broken.shutdown(wait=False, cancel_futures=True)

    def submit(i: int) -> None:
        nonlocal pool
        try:
            fut = pool.submit(runner, spec_list[i])
        except BrokenProcessPool:
            rebuild_if_current(pool)
            fut = pool.submit(runner, spec_list[i])
        attempts[i] += 1
        pending[fut] = i
        started[fut] = time.monotonic()
        owner[fut] = pool

    def reschedule(i: int, error: str, charge: bool) -> None:
        nonlocal done_count
        if not charge:
            attempts[i] -= 1  # the attempt never ran
            queue.push(i, tenant=tenant)
            return
        if attempts[i] > retries:
            errors[i] = error
            done_count += 1
            release_followers(i)  # a dead leader must not strand its group
            log.error(
                "point.failed",
                run=run_label or "-",
                label=spec_list[i].label,
                attempts=attempts[i],
                error=error,
            )
            return
        delay = backoff_delay(backoff, attempts[i])
        log.warning(
            "point.retry",
            run=run_label or "-",
            label=spec_list[i].label,
            attempt=attempts[i],
            backoff_s=delay,
            error=error,
        )
        delayed.append((time.monotonic() + delay, i))

    try:
        while done_count < total:
            now = time.monotonic()
            for entry in sorted(delayed):
                if entry[0] <= now:
                    delayed.remove(entry)
                    queue.push(entry[1], tenant=tenant)
            while len(queue):
                index = queue.pop()
                if index is None:
                    break
                submit(index)
            if not pending:
                if delayed:
                    next_due = min(nb for nb, _ in delayed)
                    time.sleep(min(0.05, max(0.0, next_due - now)))
                    continue
                if holds:
                    # Unreachable by construction (leaders always
                    # resolve), but never strand held followers.
                    for leader in list(holds):
                        release_followers(leader)
                    continue
                break  # every point resolved to a result or an error
            done, _ = futures_wait(
                list(pending), timeout=0.05, return_when=FIRST_COMPLETED
            )
            for fut in done:
                i = pending.pop(fut)
                started.pop(fut, None)
                fut_pool = owner.pop(fut, None)
                try:
                    result = fut.result()
                except CancelledError:
                    reschedule(i, "cancelled", charge=False)
                except BrokenProcessPool as exc:
                    if fut_pool is not None:
                        rebuild_if_current(fut_pool)
                    reschedule(i, f"{type(exc).__name__}: {exc}", charge=True)
                except Exception as exc:
                    reschedule(i, f"{type(exc).__name__}: {exc}", charge=True)
                else:
                    results[i] = result
                    done_count += 1
                    release_followers(i)
                    _emit_point_progress(
                        log, run_label, done_count, total, result, t0
                    )
            if timeout is not None:
                now = time.monotonic()
                stragglers = [
                    fut
                    for fut, begun in started.items()
                    if now - begun > timeout and fut in pending
                ]
                for fut in stragglers:
                    i = pending.pop(fut)
                    started.pop(fut, None)
                    owner.pop(fut, None)
                    cancelled = fut.cancel()
                    reschedule(
                        i,
                        f"TimeoutError: attempt exceeded {timeout}s"
                        + ("" if cancelled else " (worker abandoned)"),
                        charge=not cancelled,
                    )
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_points(
    specs: Iterable[PointSpec],
    max_workers: Optional[int] = None,
    run_label: Optional[str] = None,
    tenant: str = DEFAULT_TENANT,
    policy: Optional[str] = None,
) -> List:
    """Simulate every spec; results come back in spec order.

    ``max_workers`` (default: :func:`default_workers`) of 1 runs
    serially in-process, which is the deterministic reference path —
    parallel runs produce bit-identical results because each point's
    RNGs are seeded from its spec alone. Failing points are retried
    (``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF_S`` /
    ``REPRO_POINT_TIMEOUT_S``); a point that exhausts its budget raises
    :class:`PointFailure` after the manifest is finalized with
    ``status: failed``.

    ``run_label`` names the run in its manifest, event-log lines, and
    run-directory id (figure modules pass their figure id). ``tenant``
    is recorded in the manifest for provenance; ``policy`` selects the
    dispatch order for the parallel path (default:
    ``REPRO_SCHED_POLICY``, whose default preserves index order).
    """
    spec_list = list(specs)
    if not spec_list:
        return []
    # Validate the size knob up front (strict): a malformed value must
    # fail the run before any point simulates — and before a run dir is
    # created — not from store() after the first point finishes.
    pointcache.cache_max_bytes()
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(workers, len(spec_list))
    log = obs_events.get_event_log()
    manifest, run_dir = start_manifest(run_label, workers, tenant=tenant)
    t0 = time.perf_counter()
    log.info(
        "run.start",
        run=run_label or "-",
        points=len(spec_list),
        workers=workers,
        run_id=manifest.run_id if manifest else None,
    )
    runner = partial(
        run_cached_spec, run_dir=str(run_dir) if run_dir else None
    )
    total = len(spec_list)
    retries = retry_limit()
    backoff = retry_backoff_s()
    timeout = point_timeout_s()
    results: List = [None] * total
    attempts: List[int] = [0] * total
    errors: Dict[int, str] = {}
    # Warmup-sharing groups (DESIGN.md §14). The serial path needs no
    # gating: in-order execution runs each group's leader first.
    holds: Dict[int, List[int]] = {}
    if workers > 1:
        for idxs in snapshot.warmup_groups(spec_list).values():
            holds[idxs[0]] = idxs[1:]

    def finalize(status: str) -> None:
        if manifest is not None and run_dir is not None:
            finish_manifest(
                manifest,
                run_dir,
                spec_list,
                results,
                time.perf_counter() - t0,
                status=status,
                errors=errors,
                attempts=attempts,
            )

    try:
        if workers <= 1:
            _run_serial(
                spec_list, runner, log, run_label, t0,
                retries, backoff, results, attempts, errors,
            )
        else:
            _run_parallel(
                spec_list, runner, workers, log, run_label, t0,
                retries, backoff, timeout, results, attempts, errors,
                holds=holds, policy=policy, tenant=tenant,
            )
    except BaseException:
        # Unexpected abort (KeyboardInterrupt, pool setup failure, ...):
        # still leave a finalized manifest behind, never an orphan dir.
        finalize("failed")
        raise
    status = "failed" if errors else "done"
    finalize(status)
    wall = time.perf_counter() - t0
    log.info(
        "run.finish",
        run=run_label or "-",
        points=total,
        cached=sum(1 for r in results if r is not None and r.from_cache),
        warm_restored=sum(
            1
            for r in results
            if r is not None and getattr(r, "warm_restored", False)
        ),
        retried=sum(1 for a in attempts if a > 1),
        status=status,
        wall_s=wall,
        run_id=manifest.run_id if manifest else None,
    )
    if errors:
        first = min(errors)
        raise PointFailure(
            f"{len(errors)} of {total} points failed after "
            f"{retries} retries; first: point "
            f"{spec_list[first].label!r}: {errors[first]}",
            errors,
        )
    return results


def run_tasks(
    fn: Callable[..., T],
    args_list: Sequence[Tuple],
    max_workers: Optional[int] = None,
    run_label: Optional[str] = None,
) -> List[T]:
    """Fan out ``fn(*args)`` over a task list, preserving order.

    ``fn`` must be a module-level (picklable) function and every args
    tuple picklable. Not point-cached, not manifested, and not retried —
    use :func:`run_points` for standard grid points. Progress events
    still flow through the event log.
    """
    tasks = list(args_list)
    if not tasks:
        return []
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(workers, len(tasks))
    log = obs_events.get_event_log()
    t0 = time.perf_counter()
    log.info(
        "tasks.start", run=run_label or "-", tasks=len(tasks), workers=workers
    )
    if workers <= 1:
        results = []
        for i, args in enumerate(tasks):
            results.append(fn(*args))
            log.info(
                "task.finish",
                run=run_label or "-",
                done=f"{i + 1}/{len(tasks)}",
            )
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(fn, *args): i for i, args in enumerate(tasks)
        }
        ordered: List[T] = [None] * len(tasks)  # type: ignore[list-item]
        done = 0
        for future in as_completed(futures):
            index = futures[future]
            ordered[index] = future.result()
            done += 1
            log.info(
                "task.finish", run=run_label or "-", done=f"{done}/{len(tasks)}"
            )
        return ordered
