"""Parallel execution of independent simulation points.

A figure of the paper is a grid of independent trace simulations: every
point owns its cache hierarchy, workload state, and RNG seeds, so points
share nothing and can run in separate processes. This module provides
the fan-out:

* :class:`PointSpec` — a picklable description of one grid point (the
  workload is shipped *pre-build*; the worker's simulator calls
  ``build()`` with the spec's seed, which is what makes serial and
  parallel runs bit-identical);
* :func:`run_spec` — simulate one spec (the worker entry point);
* :func:`run_points` — run a spec list, preserving order, across
  ``REPRO_WORKERS`` processes (1 = deterministic serial fallback);
* :func:`run_tasks` — the same fan-out for arbitrary picklable
  functions (used by the collocation study, whose results are not
  :class:`PointResult` objects).

Results are memoized through :mod:`repro.engine.pointcache` unless
``REPRO_NO_CACHE=1``. ``REPRO_PROFILE=1`` prints a cProfile top-20 per
simulated point.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine import pointcache
from repro.errors import ConfigError
from repro.params import SystemConfig
from repro.workloads.base import Workload

T = TypeVar("T")


@dataclass(frozen=True)
class PointSpec:
    """Everything needed to simulate one grid point in any process."""

    label: str
    system: SystemConfig
    workload: Workload
    policy: str = "ddio"
    sweeper: bool = False
    nic_tx_sweep: bool = False
    queued_depth: int = 1
    seed: int = 42
    warmup_requests: Optional[int] = None
    measure_requests: Optional[int] = None

    def cache_key(self) -> str:
        """Deterministic identity of the simulation's inputs.

        The label is presentation-only and deliberately excluded;
        :func:`run_cached_spec` re-stamps it on cache hits.
        """
        return "\n".join(
            (
                repr(self.system),
                self.workload.cache_key(),
                self.policy,
                repr(
                    (
                        self.sweeper,
                        self.nic_tx_sweep,
                        self.queued_depth,
                        self.seed,
                        self.warmup_requests,
                        self.measure_requests,
                    )
                ),
            )
        )


def run_spec(spec: PointSpec):
    """Simulate one spec end to end; the worker-process entry point.

    Must stay a module-level function so ProcessPoolExecutor can pickle
    it. Imports are deferred to avoid a cycle with
    ``repro.experiments.common`` (which imports this module).
    """
    from repro.engine.analytic import ServiceProfile, solve_peak_throughput
    from repro.engine.tracer import TraceConfig, TraceSimulator
    from repro.experiments.common import PointResult

    cfg = TraceConfig(
        system=spec.system,
        workload=spec.workload,
        policy=spec.policy,
        sweeper=spec.sweeper,
        nic_tx_sweep=spec.nic_tx_sweep,
        queued_depth=spec.queued_depth,
        seed=spec.seed,
        warmup_requests=spec.warmup_requests,
        measure_requests=spec.measure_requests,
    )
    profiling = os.environ.get("REPRO_PROFILE", "") == "1"
    start = time.perf_counter()
    if profiling:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        trace = TraceSimulator(cfg).run()
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(20)
        print(f"[REPRO_PROFILE] point {spec.label!r}\n{buf.getvalue()}", flush=True)
    else:
        trace = TraceSimulator(cfg).run()
    elapsed = time.perf_counter() - start
    profile = ServiceProfile.from_trace(trace)
    perf = solve_peak_throughput(profile, spec.system)
    return PointResult(
        label=spec.label,
        system=spec.system,
        trace=trace,
        profile=profile,
        perf=perf,
        sim_seconds=elapsed,
    )


def run_cached_spec(spec: PointSpec):
    """:func:`run_spec` through the persistent point cache."""
    if not pointcache.cache_enabled():
        return run_spec(spec)
    fp = pointcache.fingerprint(spec)
    cached = pointcache.load(fp)
    if cached is not None:
        cached.label = spec.label
        cached.from_cache = True
        return cached
    result = run_spec(spec)
    pointcache.store(fp, result)
    return result


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS``, else the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ConfigError(f"REPRO_WORKERS must be an integer, got {env!r}")
        if workers < 1:
            raise ConfigError("REPRO_WORKERS must be >= 1")
        return workers
    return max(1, os.cpu_count() or 1)


def run_points(
    specs: Iterable[PointSpec], max_workers: Optional[int] = None
) -> List:
    """Simulate every spec; results come back in spec order.

    ``max_workers`` (default: :func:`default_workers`) of 1 runs
    serially in-process, which is the deterministic reference path —
    parallel runs produce bit-identical results because each point's
    RNGs are seeded from its spec alone.
    """
    spec_list = list(specs)
    if not spec_list:
        return []
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(workers, len(spec_list))
    if workers <= 1:
        return [run_cached_spec(spec) for spec in spec_list]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(run_cached_spec, spec_list, chunksize=1))


def run_tasks(
    fn: Callable[..., T],
    args_list: Sequence[Tuple],
    max_workers: Optional[int] = None,
) -> List[T]:
    """Fan out ``fn(*args)`` over a task list, preserving order.

    ``fn`` must be a module-level (picklable) function and every args
    tuple picklable. Not point-cached — use :func:`run_points` for
    standard grid points.
    """
    tasks = list(args_list)
    if not tasks:
        return []
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(workers, len(tasks))
    if workers <= 1:
        return [fn(*args) for args in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, *args) for args in tasks]
        return [f.result() for f in futures]
