"""Parallel execution of independent simulation points.

A figure of the paper is a grid of independent trace simulations: every
point owns its cache hierarchy, workload state, and RNG seeds, so points
share nothing and can run in separate processes. This module provides
the fan-out:

* :class:`PointSpec` — a picklable description of one grid point (the
  workload is shipped *pre-build*; the worker's simulator calls
  ``build()`` with the spec's seed, which is what makes serial and
  parallel runs bit-identical);
* :func:`run_spec` — simulate one spec (the worker entry point);
* :func:`run_points` — run a spec list, preserving order, across
  ``REPRO_WORKERS`` processes (1 = deterministic serial fallback);
* :func:`run_tasks` — the same fan-out for arbitrary picklable
  functions (used by the collocation study, whose results are not
  :class:`PointResult` objects).

Results are memoized through :mod:`repro.engine.pointcache` unless
``REPRO_NO_CACHE=1``.

Observability (:mod:`repro.obs`, DESIGN.md §6): every ``run_points``
call writes a run manifest under ``results/runs/<run_id>/`` (disable
with ``REPRO_NO_MANIFEST=1``) recording full per-point config, seeds,
the code hash, host info, wall/sim time, and cache-hit provenance.
``REPRO_EPOCH=N`` makes each freshly simulated point emit an epoch
timeline JSONL next to the manifest. ``REPRO_LOG=text|json`` streams
per-point start/finish/cached events with a live ETA. ``REPRO_PROFILE=1``
emits a cProfile top-20 per simulated point through the event log, the
point label prefixed atomically (no interleaving under parallel runs).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.engine import pointcache
from repro.errors import ConfigError
from repro.obs import events as obs_events
from repro.obs import manifest as obs_manifest
from repro.obs.manifest import PointRecord, RunManifest
from repro.obs.timeline import ObsContext, write_jsonl
from repro.params import SystemConfig
from repro.workloads.base import Workload

T = TypeVar("T")

#: run directory of the most recent completed run_points call in this
#: process (None until one completes, or when manifests are disabled).
_LAST_RUN_DIR: Optional[Path] = None


def last_run_dir() -> Optional[Path]:
    """Run directory written by the most recent :func:`run_points`."""
    return _LAST_RUN_DIR


@dataclass(frozen=True)
class PointSpec:
    """Everything needed to simulate one grid point in any process."""

    label: str
    system: SystemConfig
    workload: Workload
    policy: str = "ddio"
    sweeper: bool = False
    nic_tx_sweep: bool = False
    queued_depth: int = 1
    seed: int = 42
    warmup_requests: Optional[int] = None
    measure_requests: Optional[int] = None

    def cache_key(self) -> str:
        """Deterministic identity of the simulation's inputs.

        The label is presentation-only and deliberately excluded;
        :func:`run_cached_spec` re-stamps it on cache hits.
        """
        return "\n".join(
            (
                repr(self.system),
                self.workload.cache_key(),
                self.policy,
                repr(
                    (
                        self.sweeper,
                        self.nic_tx_sweep,
                        self.queued_depth,
                        self.seed,
                        self.warmup_requests,
                        self.measure_requests,
                    )
                ),
            )
        )


def _timeline_filename(spec: PointSpec) -> str:
    slug = "".join(
        c if c.isalnum() or c in "-_." else "_" for c in spec.label
    )[:80]
    return f"{slug}-{pointcache.fingerprint(spec)[:8]}.jsonl"


def run_spec(spec: PointSpec, run_dir: Optional[str] = None):
    """Simulate one spec end to end; the worker-process entry point.

    Must stay a module-level function so ProcessPoolExecutor can pickle
    it. Imports are deferred to avoid a cycle with
    ``repro.experiments.common`` (which imports this module).

    With ``REPRO_EPOCH`` set, the simulation samples an epoch timeline;
    when ``run_dir`` is given the timeline is written to
    ``<run_dir>/timelines/`` and the result's ``timeline_file`` records
    the manifest-relative path.
    """
    from repro.engine.analytic import ServiceProfile, solve_peak_throughput
    from repro.engine.tracer import TraceConfig, TraceSimulator
    from repro.experiments.common import PointResult

    log = obs_events.get_event_log()
    cfg = TraceConfig(
        system=spec.system,
        workload=spec.workload,
        policy=spec.policy,
        sweeper=spec.sweeper,
        nic_tx_sweep=spec.nic_tx_sweep,
        queued_depth=spec.queued_depth,
        seed=spec.seed,
        warmup_requests=spec.warmup_requests,
        measure_requests=spec.measure_requests,
    )
    obs = ObsContext.from_env()
    profiling = os.environ.get("REPRO_PROFILE", "") == "1"
    log.debug("point.simulate", label=spec.label, pid=os.getpid())
    start = time.perf_counter()
    if profiling:
        import cProfile
        import io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        trace = TraceSimulator(cfg, obs=obs).run()
        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("tottime").print_stats(20)
        # One atomic event, label-prefixed, instead of a bare print that
        # interleaved across REPRO_WORKERS>1 workers. force=True keeps
        # the output visible for users who never set REPRO_LOG.
        log.emit(
            "profile", force=True, label=spec.label, text=buf.getvalue()
        )
    else:
        trace = TraceSimulator(cfg, obs=obs).run()
    elapsed = time.perf_counter() - start
    timeline_file: Optional[str] = None
    if obs is not None and obs.timeline and run_dir is not None:
        rel = Path("timelines") / _timeline_filename(spec)
        write_jsonl(Path(run_dir) / rel, obs.timeline)
        timeline_file = str(rel)
    profile = ServiceProfile.from_trace(trace)
    perf = solve_peak_throughput(profile, spec.system)
    return PointResult(
        label=spec.label,
        system=spec.system,
        trace=trace,
        profile=profile,
        perf=perf,
        sim_seconds=elapsed,
        timeline_file=timeline_file,
    )


def run_cached_spec(spec: PointSpec, run_dir: Optional[str] = None):
    """:func:`run_spec` through the persistent point cache."""
    if not pointcache.cache_enabled():
        return run_spec(spec, run_dir=run_dir)
    fp = pointcache.fingerprint(spec)
    cached = pointcache.load(fp)
    if cached is not None:
        cached.label = spec.label
        cached.from_cache = True
        # The cached pickle may reference a timeline from the run that
        # produced it; that file belongs to another run directory.
        cached.timeline_file = None
        return cached
    result = run_spec(spec, run_dir=run_dir)
    pointcache.store(fp, result)
    return result


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS``, else the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ConfigError(f"REPRO_WORKERS must be an integer, got {env!r}")
        if workers < 1:
            raise ConfigError("REPRO_WORKERS must be >= 1")
        return workers
    return max(1, os.cpu_count() or 1)


def start_manifest(
    run_label: Optional[str], workers: int
) -> Tuple[Optional[RunManifest], Optional[Path]]:
    """Create a run manifest + run directory (None, None when disabled).

    Shared by :func:`run_points` and the ``repro.serve`` scheduler so a
    served job produces exactly the artifact a local run does.
    """
    if not obs_manifest.manifests_enabled():
        return None, None
    manifest = RunManifest.create(run_label, workers)
    manifest.code_salt = pointcache.code_salt()
    return manifest, obs_manifest.runs_dir() / manifest.run_id


def finish_manifest(
    manifest: RunManifest,
    run_dir: Path,
    spec_list: Sequence[PointSpec],
    results: Sequence,
    wall_seconds: float,
) -> None:
    """Fill in per-point records and write ``manifest.json`` atomically."""
    global _LAST_RUN_DIR
    manifest.wall_seconds = wall_seconds
    manifest.sim_seconds_total = sum(r.sim_seconds for r in results)
    manifest.points = [
        _point_record(spec, result, pointcache.fingerprint(spec))
        for spec, result in zip(spec_list, results)
    ]
    manifest.write(run_dir / "manifest.json")
    _LAST_RUN_DIR = run_dir


def _point_record(spec: PointSpec, result, fingerprint: str) -> PointRecord:
    return PointRecord(
        label=spec.label,
        fingerprint=fingerprint,
        system=repr(spec.system),
        workload=spec.workload.cache_key(),
        policy=spec.policy,
        sweeper=spec.sweeper,
        nic_tx_sweep=spec.nic_tx_sweep,
        queued_depth=spec.queued_depth,
        seed=spec.seed,
        warmup_requests=spec.warmup_requests,
        measure_requests=spec.measure_requests,
        from_cache=result.from_cache,
        sim_seconds=result.sim_seconds,
        timeline_file=getattr(result, "timeline_file", None),
    )


def _emit_point_progress(
    log, run_label: Optional[str], done: int, total: int, result, t0: float
) -> None:
    """One atomic finish/ETA line per completed point."""
    if not log.would_emit("info"):
        return
    elapsed = time.perf_counter() - t0
    eta = (elapsed / done) * (total - done) if done else 0.0
    log.info(
        "point.finish",
        run=run_label or "-",
        label=result.label,
        cached=result.from_cache,
        sim_s=result.sim_seconds,
        done=f"{done}/{total}",
        eta_s=eta,
    )


def run_points(
    specs: Iterable[PointSpec],
    max_workers: Optional[int] = None,
    run_label: Optional[str] = None,
) -> List:
    """Simulate every spec; results come back in spec order.

    ``max_workers`` (default: :func:`default_workers`) of 1 runs
    serially in-process, which is the deterministic reference path —
    parallel runs produce bit-identical results because each point's
    RNGs are seeded from its spec alone.

    ``run_label`` names the run in its manifest, event-log lines, and
    run-directory id (figure modules pass their figure id).
    """
    spec_list = list(specs)
    if not spec_list:
        return []
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(workers, len(spec_list))
    log = obs_events.get_event_log()
    manifest, run_dir = start_manifest(run_label, workers)
    t0 = time.perf_counter()
    log.info(
        "run.start",
        run=run_label or "-",
        points=len(spec_list),
        workers=workers,
        run_id=manifest.run_id if manifest else None,
    )
    runner = partial(
        run_cached_spec, run_dir=str(run_dir) if run_dir else None
    )
    total = len(spec_list)
    if workers <= 1:
        results: List = []
        for i, spec in enumerate(spec_list):
            result = runner(spec)
            results.append(result)
            _emit_point_progress(log, run_label, i + 1, total, result, t0)
    else:
        results = [None] * total
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(runner, spec): i
                for i, spec in enumerate(spec_list)
            }
            done = 0
            for future in as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                done += 1
                _emit_point_progress(
                    log, run_label, done, total, results[index], t0
                )
    wall = time.perf_counter() - t0
    if manifest is not None and run_dir is not None:
        finish_manifest(manifest, run_dir, spec_list, results, wall)
    log.info(
        "run.finish",
        run=run_label or "-",
        points=total,
        cached=sum(1 for r in results if r.from_cache),
        wall_s=wall,
        run_id=manifest.run_id if manifest else None,
    )
    return results


def run_tasks(
    fn: Callable[..., T],
    args_list: Sequence[Tuple],
    max_workers: Optional[int] = None,
    run_label: Optional[str] = None,
) -> List[T]:
    """Fan out ``fn(*args)`` over a task list, preserving order.

    ``fn`` must be a module-level (picklable) function and every args
    tuple picklable. Not point-cached and not manifested — use
    :func:`run_points` for standard grid points. Progress events still
    flow through the event log.
    """
    tasks = list(args_list)
    if not tasks:
        return []
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(workers, len(tasks))
    log = obs_events.get_event_log()
    t0 = time.perf_counter()
    log.info(
        "tasks.start", run=run_label or "-", tasks=len(tasks), workers=workers
    )
    if workers <= 1:
        results = []
        for i, args in enumerate(tasks):
            results.append(fn(*args))
            log.info(
                "task.finish",
                run=run_label or "-",
                done=f"{i + 1}/{len(tasks)}",
            )
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, *args) for args in tasks]
        ordered: List[T] = [None] * len(tasks)  # type: ignore[list-item]
        done = 0
        for future in as_completed(futures):
            index = futures.index(future)
            ordered[index] = future.result()
            done += 1
            log.info(
                "task.finish", run=run_label or "-", done=f"{done}/{len(tasks)}"
            )
        return ordered
