"""Discrete-event layer: finite rings, packet drops, latency sampling.

The fixed-point solver cannot see transient queue buildups, which is
precisely what §VI-F studies: a workload with occasional [1, 100] µs
service spikes overflows shallow RX rings and drops packets. This module
simulates each core as a single server with a finite FIFO ring fed by
Poisson arrivals, sampling service times as base-service plus spikes.

It also provides an empirical memory-latency sampler (per-channel FIFO
DRAM model under Poisson block accesses) backing Figure 6's CDFs as a
cross-check of the closed-form curve.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigError
from repro.mem.dram import DramSampler
from repro.params import SystemConfig


@dataclass(frozen=True)
class DropSimResult:
    """Outcome of one finite-ring run at a fixed offered load."""

    offered_mrps: float
    delivered_mrps: float
    drop_rate: float
    mean_sojourn_us: float
    p99_sojourn_us: float

    @property
    def dropped_fraction_percent(self) -> float:
        return 100.0 * self.drop_rate


class FiniteRingSimulator:
    """Per-core M/G/1/B queues under Poisson packet arrivals."""

    def __init__(
        self,
        system: SystemConfig,
        ring_entries: int,
        base_service_us: Callable[[float], float],
        spike_sampler: Optional[Callable[[], float]] = None,
        seed: int = 97,
    ) -> None:
        """``base_service_us`` maps offered Mrps to mean service time,
        letting the caller fold in load-dependent memory latency from the
        analytic model. ``spike_sampler`` returns extra delay in µs.
        """
        if ring_entries <= 0:
            raise ConfigError("ring_entries must be positive")
        self.system = system
        self.ring_entries = ring_entries
        self.base_service_us = base_service_us
        self.spike_sampler = spike_sampler
        self.seed = seed

    def run(self, offered_mrps: float, packets_per_core: int = 20000) -> DropSimResult:
        if offered_mrps <= 0:
            raise ConfigError("offered load must be positive")
        cores = self.system.cpu.num_cores
        rate_per_core = offered_mrps / cores  # packets per µs per core
        service_us = self.base_service_us(offered_mrps)
        rng = np.random.default_rng(self.seed)

        total = 0
        dropped = 0
        sojourns: list[float] = []
        for _core in range(cores):
            gaps = rng.exponential(1.0 / rate_per_core, size=packets_per_core)
            arrivals = np.cumsum(gaps)
            services = rng.exponential(service_us, size=packets_per_core)
            if self.spike_sampler is not None:
                spikes = np.fromiter(
                    (self.spike_sampler() for _ in range(packets_per_core)),
                    dtype=np.float64,
                    count=packets_per_core,
                )
                services = services + spikes
            in_flight: deque = deque()
            last_departure = 0.0
            for i in range(packets_per_core):
                now = float(arrivals[i])
                while in_flight and in_flight[0] <= now:
                    in_flight.popleft()
                total += 1
                if len(in_flight) >= self.ring_entries:
                    dropped += 1
                    continue
                start = max(now, last_departure)
                departure = start + float(services[i])
                in_flight.append(departure)
                last_departure = departure
                sojourns.append(departure - now)

        delivered = total - dropped
        duration_us = float(
            max(arrivals[-1], 1e-9)
        )  # same horizon per core by construction
        sojourn_arr = np.array(sojourns) if sojourns else np.array([0.0])
        return DropSimResult(
            offered_mrps=offered_mrps,
            delivered_mrps=delivered / duration_us / 1.0,
            drop_rate=dropped / total if total else 0.0,
            mean_sojourn_us=float(np.mean(sojourn_arr)),
            p99_sojourn_us=float(np.percentile(sojourn_arr, 99.0)),
        )

    def peak_no_drop_mrps(
        self,
        max_drop_rate: float = 1e-4,
        lo: float = 0.1,
        hi: Optional[float] = None,
        packets_per_core: int = 20000,
        iterations: int = 18,
    ) -> float:
        """Largest offered load whose drop rate stays below the target.

        The paper treats ~1e-5-range drop rates as acceptable and 1% as
        prohibitive; the default threshold sits between.
        """
        if hi is None:
            # A generous upper bound: every core fully busy on base service.
            cores = self.system.cpu.num_cores
            hi = 2.0 * cores / max(self.base_service_us(1.0), 1e-6)
        if self.run(hi, packets_per_core).drop_rate <= max_drop_rate:
            return hi
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            if self.run(mid, packets_per_core).drop_rate <= max_drop_rate:
                lo = mid
            else:
                hi = mid
        return lo


def sample_memory_latencies(
    system: SystemConfig,
    bandwidth_gbps: float,
    num_accesses: int = 50000,
    read_fraction: float = 0.6,
    seed: int = 131,
) -> np.ndarray:
    """Empirical loaded DRAM read latencies at a given bandwidth demand.

    Drives the per-channel FIFO DRAM model with Poisson block accesses
    whose aggregate rate matches ``bandwidth_gbps``; returns the observed
    read latencies in cycles. Complements the closed-form CDF of
    :meth:`repro.mem.dram.DramModel.latency_cdf`.
    """
    if bandwidth_gbps < 0:
        raise ConfigError("bandwidth must be non-negative")
    rng = np.random.default_rng(seed)
    sampler = DramSampler(system.memory, system.cpu.freq_ghz, rng=rng)
    if bandwidth_gbps == 0:
        return np.full(num_accesses, float(system.memory.idle_latency_cycles))
    # blocks per cycle across the whole memory system
    bytes_per_cycle = bandwidth_gbps / system.cpu.freq_ghz
    blocks_per_cycle = bytes_per_cycle / 64.0
    gaps = rng.exponential(1.0 / blocks_per_cycle, size=num_accesses)
    times = np.cumsum(gaps)
    blocks = rng.integers(0, 1 << 24, size=num_accesses)
    is_read = rng.random(num_accesses) < read_fraction
    for i in range(num_accesses):
        if is_read[i]:
            sampler.read(int(blocks[i]), float(times[i]))
        else:
            sampler.write(int(blocks[i]), float(times[i]))
    return np.array(sampler.read_latencies)
