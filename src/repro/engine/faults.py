"""Deterministic fault injection for exercising recovery paths.

The fault-tolerance layer (retries, pool rebuilds, point timeouts,
crash-safe manifests — DESIGN.md §9) is only trustworthy if every
recovery path can be triggered on demand, in tests and in CI.
``REPRO_FAULT_SPEC`` injects faults at well-defined hook points:

* ``worker_crash`` — hard-kill the worker process (``os._exit``) at the
  start of a matching point, so the parent observes a
  ``BrokenProcessPool``. In an in-process executor (serial runs, the
  daemon's ``REPRO_WORKERS=1`` thread mode) the crash degrades to a
  raised :class:`FaultInjected` instead of killing the host process.
* ``point_error`` — raise :class:`FaultInjected` at the start of a
  matching point (an "ordinary" worker exception).
* ``slow_point`` — sleep for the given duration at the start of a
  matching point (a straggler, for exercising ``REPRO_POINT_TIMEOUT_S``).
* ``cache_corrupt`` — truncate the persistent point-cache entry for a
  matching fingerprint immediately before it is read, so ``load`` must
  treat it as a miss.

Grammar (comma-separated directives)::

    REPRO_FAULT_SPEC="worker_crash@point=3,cache_corrupt@fp=ab12,slow_point@label=hot:0.5s"

    directive  := kind "@" selector "=" value [":" duration]
    kind       := worker_crash | point_error | slow_point | cache_corrupt
    selector   := point (Nth simulation start, 0-based)
                | label (exact point label)        [point faults]
                | fp (fingerprint prefix; may be empty = match any)
                                                   [cache_corrupt only]
    duration   := seconds, optionally suffixed "s" [slow_point only]

Every directive fires **once** per fault domain and is then spent —
that is what makes recovery deterministic: the retried attempt does not
re-hit the fault. The domain is cross-process when ``REPRO_FAULT_STATE``
names a directory (claims and the ``point=N`` sequence counter are
atomic ``O_CREAT|O_EXCL`` files in it, shared by every pool worker);
without it, claims are process-local, which is only meaningful for
serial / in-process runs.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Set, Tuple

from repro.errors import ConfigError

KINDS = ("worker_crash", "point_error", "slow_point", "cache_corrupt")

#: exit code of an injected worker crash (shows up in pool diagnostics).
CRASH_EXIT_CODE = 13


class FaultInjected(RuntimeError):
    """An injected fault fired (the recoverable, in-process flavour)."""


@dataclass(frozen=True)
class Fault:
    """One parsed ``REPRO_FAULT_SPEC`` directive."""

    index: int  # position in the spec; the once-only claim token
    kind: str
    selector: str  # "point" | "label" | "fp"
    value: str
    seconds: float = 0.0  # slow_point only


def parse_spec(text: str) -> List[Fault]:
    """Parse a ``REPRO_FAULT_SPEC`` string; raises ConfigError when malformed."""
    faults: List[Fault] = []
    for index, raw in enumerate(part.strip() for part in text.split(",")):
        if not raw:
            continue
        kind, sep, rest = raw.partition("@")
        if kind not in KINDS:
            raise ConfigError(
                f"REPRO_FAULT_SPEC: unknown fault kind {kind!r} in {raw!r}; "
                f"known: {', '.join(KINDS)}"
            )
        if not sep:
            raise ConfigError(
                f"REPRO_FAULT_SPEC: {raw!r} needs a selector, e.g. "
                f"{kind}@label=<label>"
            )
        selector, eq, value = rest.partition("=")
        if not eq:
            raise ConfigError(
                f"REPRO_FAULT_SPEC: selector in {raw!r} needs '=<value>'"
            )
        seconds = 0.0
        if kind == "slow_point":
            value, colon, duration = value.rpartition(":")
            if not colon:
                raise ConfigError(
                    f"REPRO_FAULT_SPEC: slow_point needs a duration, e.g. "
                    f"slow_point@label=hot:0.5s (got {raw!r})"
                )
            seconds = _parse_duration(duration, raw)
        allowed = ("fp",) if kind == "cache_corrupt" else ("point", "label")
        if selector not in allowed:
            raise ConfigError(
                f"REPRO_FAULT_SPEC: {kind} selector must be "
                f"{' or '.join(allowed)}, got {selector!r}"
            )
        if selector == "point":
            try:
                if int(value) < 0:
                    raise ValueError
            except ValueError:
                raise ConfigError(
                    f"REPRO_FAULT_SPEC: point selector must be an integer "
                    f">= 0, got {value!r}"
                )
        elif selector == "label" and not value:
            raise ConfigError(
                f"REPRO_FAULT_SPEC: empty label selector in {raw!r}"
            )
        faults.append(Fault(index, kind, selector, value, seconds))
    return faults


def _parse_duration(text: str, raw: str) -> float:
    try:
        seconds = float(text[:-1] if text.endswith("s") else text)
    except ValueError:
        raise ConfigError(
            f"REPRO_FAULT_SPEC: bad duration {text!r} in {raw!r}"
        )
    if seconds < 0:
        raise ConfigError(f"REPRO_FAULT_SPEC: negative duration in {raw!r}")
    return seconds


_parsed: Optional[Tuple[str, List[Fault]]] = None
_local_claims: Set[str] = set()
_local_seq = 0


def active_faults() -> List[Fault]:
    """Parsed directives from the current ``REPRO_FAULT_SPEC`` (cached)."""
    global _parsed
    raw = os.environ.get("REPRO_FAULT_SPEC", "").strip()
    if not raw:
        return []
    if _parsed is None or _parsed[0] != raw:
        _parsed = (raw, parse_spec(raw))
    return _parsed[1]


def reset() -> None:
    """Forget process-local claims and sequence state (tests)."""
    global _parsed, _local_seq
    _parsed = None
    _local_seq = 0
    _local_claims.clear()


def _state_dir() -> Optional[Path]:
    env = os.environ.get("REPRO_FAULT_STATE", "").strip()
    return Path(env) if env else None


def _claim_file(path: Path) -> bool:
    """Atomically create ``path``; True exactly once across processes."""
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _claim(token: str) -> bool:
    directory = _state_dir()
    if directory is None:
        if token in _local_claims:
            return False
        _local_claims.add(token)
        return True
    return _claim_file(directory / f"claim-{token}")


def _next_seq() -> int:
    """Claim the next global simulation-start sequence number."""
    global _local_seq
    directory = _state_dir()
    if directory is None:
        seq = _local_seq
        _local_seq += 1
        return seq
    i = 0
    while not _claim_file(directory / f"seq-{i}"):
        i += 1
    return i


def on_point_start(label: str) -> None:
    """Hook called at the start of every fresh point simulation."""
    faults = [f for f in active_faults() if f.kind != "cache_corrupt"]
    if not faults:
        return
    seq: Optional[int] = None
    if any(f.selector == "point" for f in faults):
        seq = _next_seq()
    for fault in faults:
        if fault.selector == "point" and seq != int(fault.value):
            continue
        if fault.selector == "label" and label != fault.value:
            continue
        if not _claim(str(fault.index)):
            continue
        _apply(fault, label)


def _apply(fault: Fault, label: str) -> None:
    if fault.kind == "slow_point":
        time.sleep(fault.seconds)
        return
    if fault.kind == "point_error":
        raise FaultInjected(f"point_error injected at point {label!r}")
    if fault.kind == "worker_crash":
        if (
            multiprocessing.parent_process() is not None
            or os.environ.get("REPRO_CLUSTER_WORKER") == "1"
        ):
            # A real pool worker — or a cluster worker agent, which must
            # die hard even on its in-process path so the coordinator
            # observes a missed heartbeat: exactly like an OOM kill.
            os._exit(CRASH_EXIT_CODE)
        # In-process execution: exiting would kill the test/daemon
        # process itself; degrade to a raised (retryable) error.
        raise FaultInjected(
            f"worker_crash injected at point {label!r} "
            "(in-process executor: raised instead of exiting)"
        )


def on_cache_load(fp: str, path: Path) -> None:
    """Hook called before a point-cache entry at ``path`` is read."""
    for fault in active_faults():
        if fault.kind != "cache_corrupt" or not fp.startswith(fault.value):
            continue
        if not _claim(str(fault.index)):
            continue
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            pass  # no entry to corrupt is itself a miss
