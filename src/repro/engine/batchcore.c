/* Native inner loop of the batch trace engine.
 *
 * Operates directly on the struct-of-arrays state owned by the Python
 * side (repro/cache/soa.py): every pointer below aliases a preallocated
 * numpy array, so Python introspection (occupancy, fuzz comparisons,
 * metrics collectors) always sees the live state without marshalling.
 *
 * Semantics are an exact port of repro/cache/set_assoc.py and
 * repro/cache/hierarchy.py, including:
 *   - dict-order LRU reproduced as per-slot monotonically increasing
 *     recency stamps (tick++ per touch; the dict's oldest entry is the
 *     minimum-stamp valid slot; invalid slots are claimed first in
 *     way/mask order);
 *   - the 32-bit LCG for random replacement, stepped only when a draw
 *     actually happens, in the same order as the object engine;
 *   - traffic category arithmetic: EVICT_CATEGORY[kind] == kind + 5,
 *     CPU_READ_CATEGORY[kind] == kind + 2 (RegionKind RX=0, TX=1,
 *     APP=2; MemCategory CPU_RX_RD=2..CPU_OTHER_RD=4, RX_EVCT=5..
 *     OTHER_EVCT=7), asserted against the enums by the equivalence
 *     suite.
 *
 * The equivalence suite (tests/test_batch_equivalence.py) holds this
 * file to bit-identical TraceResult output against the object engine.
 */

#include <stddef.h>
#include <stdint.h>

#define LEVEL_L1 1
#define LEVEL_L2 2
#define LEVEL_LLC 3
#define LEVEL_MEM 4

#define CAT_NIC_RX_WR 0
#define CAT_NIC_TX_RD 1

#define STAT_HITS 0
#define STAT_MISSES 1
#define STAT_INSERTIONS 2
#define STAT_EV_CLEAN 3
#define STAT_EV_DIRTY 4
#define STAT_INVALIDATIONS 5
#define STAT_SWEEPS 6

#define KIND_APP 2

typedef struct {
    int64_t num_sets;
    int64_t ways;
    int64_t is_lru;
    int64_t *tags;
    uint8_t *dirty;
    uint8_t *kind;
    int64_t *stamp;
    int64_t *tick;
    int64_t *lcg;
    int64_t *stats;
} BCache;

typedef struct {
    int64_t num_cores;
    int64_t victim_fill_clean;
    BCache *l1;         /* num_cores entries */
    BCache *l2;         /* num_cores entries */
    BCache *llc;        /* one entry */
    int64_t *traffic;   /* 8 MemCategory cells */
    int64_t *ddio_mask;     /* llc->ways capacity */
    int64_t *ddio_mask_len; /* 1 cell */
    int64_t *core_masks;    /* num_cores * llc->ways */
    int64_t *core_mask_len; /* num_cores cells; -1 means no mask */
} BHier;

/* ------------------------------------------------------------------ */
/* single-cache primitives                                             */
/* ------------------------------------------------------------------ */

static int64_t slot_of(const BCache *c, int64_t block)
{
    int64_t base = (block % c->num_sets) * c->ways;
    int64_t end = base + c->ways;
    for (int64_t s = base; s < end; s++) {
        if (c->tags[s] == block)
            return s;
    }
    return -1;
}

/* Probe; returns 1 on hit. Mirrors _access_lru/_access_random. */
static int cache_access(BCache *c, int64_t block, int write)
{
    int64_t slot = slot_of(c, block);
    if (slot < 0) {
        c->stats[STAT_MISSES]++;
        return 0;
    }
    if (c->is_lru)
        c->stamp[slot] = c->tick[0]++;
    c->stats[STAT_HITS]++;
    if (write)
        c->dirty[slot] = 1;
    return 1;
}

/* Probe returning the resident kind, or -1 on miss (access_kind). */
static int64_t cache_access_kind(BCache *c, int64_t block, int write)
{
    int64_t slot = slot_of(c, block);
    if (slot < 0) {
        c->stats[STAT_MISSES]++;
        return -1;
    }
    if (c->is_lru)
        c->stamp[slot] = c->tick[0]++;
    c->stats[STAT_HITS]++;
    if (write)
        c->dirty[slot] = 1;
    return (int64_t)c->kind[slot];
}

/* Insert; evicted line is returned through out_{block,dirty,kind}.
 * Returns 1 if a line was evicted, 0 otherwise.
 * mask == NULL means no way restriction. Mirrors _insert_lru /
 * _insert_random including prefer_invalid and the LCG draw order. */
static int cache_insert(BCache *c, int64_t block, int dirty, int64_t kind,
                        const int64_t *mask, int64_t mask_len,
                        int prefer_invalid, int64_t *out_block,
                        int *out_dirty, int64_t *out_kind)
{
    int64_t slot = slot_of(c, block);
    if (slot >= 0) {
        /* Present: refresh in place (recency for LRU only). */
        if (c->is_lru)
            c->stamp[slot] = c->tick[0]++;
        if (dirty)
            c->dirty[slot] = 1;
        c->kind[slot] = (uint8_t)kind;
        return 0;
    }

    int64_t base = (block % c->num_sets) * c->ways;
    int64_t victim = -1;
    if (c->is_lru) {
        /* First invalid way in way/mask order, else oldest stamp. */
        int64_t best = -1, best_stamp = 0;
        if (mask == NULL) {
            for (int64_t s = base; s < base + c->ways; s++) {
                if (c->tags[s] == -1) { victim = s; break; }
                if (best < 0 || c->stamp[s] < best_stamp) {
                    best = s;
                    best_stamp = c->stamp[s];
                }
            }
        } else {
            for (int64_t i = 0; i < mask_len; i++) {
                int64_t s = base + mask[i];
                if (c->tags[s] == -1) { victim = s; break; }
                if (best < 0 || c->stamp[s] < best_stamp) {
                    best = s;
                    best_stamp = c->stamp[s];
                }
            }
        }
        if (victim < 0)
            victim = best;
    } else {
        if (prefer_invalid) {
            if (mask == NULL) {
                for (int64_t s = base; s < base + c->ways; s++) {
                    if (c->tags[s] == -1) { victim = s; break; }
                }
            } else {
                for (int64_t i = 0; i < mask_len; i++) {
                    if (c->tags[base + mask[i]] == -1) {
                        victim = base + mask[i];
                        break;
                    }
                }
            }
        }
        if (victim < 0) {
            int64_t lcg =
                (c->lcg[0] * 1103515245 + 12345) & 0xFFFFFFFFLL;
            c->lcg[0] = lcg;
            if (mask == NULL)
                victim = base + (lcg >> 16) % c->ways;
            else if (mask_len > 0)
                victim = base + mask[(lcg >> 16) % mask_len];
        }
    }
    if (victim < 0)
        return -1; /* empty way mask; Python raises ConfigError */

    int evicted = 0;
    int64_t old_tag = c->tags[victim];
    if (old_tag != -1) {
        int old_dirty = c->dirty[victim];
        *out_block = old_tag;
        *out_dirty = old_dirty;
        *out_kind = (int64_t)c->kind[victim];
        evicted = 1;
        if (old_dirty)
            c->stats[STAT_EV_DIRTY]++;
        else
            c->stats[STAT_EV_CLEAN]++;
    }
    c->tags[victim] = block;
    c->dirty[victim] = dirty ? 1 : 0;
    c->kind[victim] = (uint8_t)kind;
    if (c->is_lru)
        c->stamp[victim] = c->tick[0]++;
    c->stats[STAT_INSERTIONS]++;
    return evicted;
}

/* Remove; returns 1 and fills out_{dirty,kind} if the block was there. */
static int cache_remove(BCache *c, int64_t block, int *out_dirty,
                        int64_t *out_kind)
{
    int64_t slot = slot_of(c, block);
    if (slot < 0)
        return 0;
    *out_dirty = c->dirty[slot];
    *out_kind = (int64_t)c->kind[slot];
    c->tags[slot] = -1;
    c->dirty[slot] = 0;
    c->stamp[slot] = -1;
    c->stats[STAT_INVALIDATIONS]++;
    return 1;
}

/* Sweep (invalidate without writeback); returns 1 if a line dropped. */
static int cache_sweep(BCache *c, int64_t block)
{
    int64_t slot = slot_of(c, block);
    if (slot < 0)
        return 0;
    c->tags[slot] = -1;
    c->dirty[slot] = 0;
    c->stamp[slot] = -1;
    c->stats[STAT_INVALIDATIONS]++;
    c->stats[STAT_SWEEPS]++;
    return 1;
}

/* ------------------------------------------------------------------ */
/* hierarchy cascade (port of CacheHierarchy)                          */
/* ------------------------------------------------------------------ */

static void writeback(BHier *h, int64_t kind)
{
    h->traffic[kind + 5] += 1; /* EVICT_CATEGORY[kind] */
}

static void victim_fill_llc(BHier *h, int64_t core, int64_t block,
                            int dirty, int64_t kind)
{
    if (!dirty && !h->victim_fill_clean)
        return;
    const int64_t *mask = NULL;
    int64_t mask_len = 0;
    if (h->core_mask_len[core] >= 0) {
        mask = h->core_masks + core * h->llc->ways;
        mask_len = h->core_mask_len[core];
    }
    int64_t ev_block, ev_kind;
    int ev_dirty;
    int r = cache_insert(h->llc, block, dirty, kind, mask, mask_len,
                         /*prefer_invalid=*/0, &ev_block, &ev_dirty,
                         &ev_kind);
    if (r == 1 && ev_dirty)
        writeback(h, ev_kind);
}

static void fill_l2(BHier *h, int64_t core, int64_t block, int dirty,
                    int64_t kind)
{
    int64_t ev_block, ev_kind;
    int ev_dirty;
    int r = cache_insert(&h->l2[core], block, dirty, kind, NULL, 0, 1,
                         &ev_block, &ev_dirty, &ev_kind);
    if (r == 1)
        victim_fill_llc(h, core, ev_block, ev_dirty, ev_kind);
}

static void fill_l1(BHier *h, int64_t core, int64_t block, int dirty,
                    int64_t kind)
{
    int64_t ev_block, ev_kind;
    int ev_dirty;
    int r = cache_insert(&h->l1[core], block, dirty, kind, NULL, 0, 1,
                         &ev_block, &ev_dirty, &ev_kind);
    if (r != 1)
        return;
    if (!ev_dirty)
        return;
    /* Dirty L1 victim merges into the L2 if present, else allocates. */
    if (cache_access(&h->l2[core], ev_block, /*write=*/1))
        return;
    fill_l2(h, core, ev_block, 1, ev_kind);
}

static int64_t cpu_access_l1_missed(BHier *h, int64_t core, int64_t block,
                                    int64_t kind, int write)
{
    if (cache_access(&h->l2[core], block, 0)) {
        fill_l1(h, core, block, write, kind);
        return LEVEL_L2;
    }
    int64_t llc_kind = cache_access_kind(h->llc, block, 0);
    if (llc_kind >= 0) {
        if (write) {
            int d;
            int64_t k;
            cache_remove(h->llc, block, &d, &k);
        }
        fill_l2(h, core, block, 0, llc_kind);
        fill_l1(h, core, block, write, llc_kind);
        return LEVEL_LLC;
    }
    h->traffic[kind + 2] += 1; /* CPU_READ_CATEGORY[kind] */
    fill_l2(h, core, block, 0, kind);
    fill_l1(h, core, block, write, kind);
    return LEVEL_MEM;
}

/* ------------------------------------------------------------------ */
/* exported entry points                                               */
/* ------------------------------------------------------------------ */

int64_t bc_cpu_access(BHier *h, int64_t core, int64_t block, int64_t kind,
                      int64_t write)
{
    if (cache_access(&h->l1[core], block, (int)write))
        return LEVEL_L1;
    return cpu_access_l1_missed(h, core, block, kind, (int)write);
}

/* counts: int64[5] scratch indexed by AccessLevel (0 unused). */
void bc_cpu_access_run(BHier *h, int64_t core, int64_t start, int64_t n,
                       int64_t kind, int64_t write, int64_t *counts)
{
    for (int64_t block = start; block < start + n; block++) {
        if (cache_access(&h->l1[core], block, (int)write))
            counts[LEVEL_L1] += 1;
        else
            counts[cpu_access_l1_missed(h, core, block, kind,
                                        (int)write)] += 1;
    }
}

void bc_cpu_access_batch(BHier *h, int64_t core, const int64_t *blocks,
                         const uint8_t *writes, int64_t n, int64_t kind,
                         int64_t *counts)
{
    for (int64_t i = 0; i < n; i++) {
        int64_t block = blocks[i];
        int write = writes[i] != 0;
        if (cache_access(&h->l1[core], block, write))
            counts[LEVEL_L1] += 1;
        else
            counts[cpu_access_l1_missed(h, core, block, kind, write)] += 1;
    }
}

void bc_nic_llc_write_run(BHier *h, int64_t core, int64_t start, int64_t n,
                          int64_t kind)
{
    const int64_t *mask = h->ddio_mask;
    int64_t mask_len = h->ddio_mask_len[0];
    for (int64_t block = start; block < start + n; block++) {
        int d;
        int64_t k;
        cache_remove(&h->l1[core], block, &d, &k);
        cache_remove(&h->l2[core], block, &d, &k);
        int64_t ev_block, ev_kind;
        int ev_dirty;
        int r = cache_insert(h->llc, block, 1, kind, mask, mask_len, 1,
                             &ev_block, &ev_dirty, &ev_kind);
        if (r == 1 && ev_dirty)
            writeback(h, ev_kind);
    }
}

void bc_nic_probe_read_run(BHier *h, int64_t core, int64_t start, int64_t n)
{
    for (int64_t block = start; block < start + n; block++) {
        if (slot_of(&h->l1[core], block) >= 0)
            continue;
        if (slot_of(&h->l2[core], block) >= 0)
            continue;
        if (cache_access(h->llc, block, 0))
            continue;
        h->traffic[CAT_NIC_TX_RD] += 1;
    }
}

int64_t bc_sweep_run(BHier *h, int64_t core, int64_t start, int64_t n)
{
    int64_t dropped = 0;
    BCache *l1 = &h->l1[core];
    BCache *l2 = &h->l2[core];
    /* Matches hierarchy.sweep_run: whole run per cache, cache by cache
     * (sweeps are independent per cache and per block, so the order is
     * unobservable, but keep it anyway). */
    for (int64_t block = start; block < start + n; block++)
        dropped += cache_sweep(l1, block);
    for (int64_t block = start; block < start + n; block++)
        dropped += cache_sweep(l2, block);
    for (int64_t block = start; block < start + n; block++)
        dropped += cache_sweep(h->llc, block);
    return dropped;
}

/* Port of CacheHierarchy.invalidate_block; returns dirty_seen. */
int64_t bc_invalidate_block(BHier *h, int64_t core, int64_t block,
                            int64_t discard_dirty)
{
    int dirty_seen = 0;
    int64_t kind_seen = KIND_APP;
    int d;
    int64_t k;
    if (cache_remove(&h->l1[core], block, &d, &k) && d) {
        dirty_seen = 1;
        kind_seen = k;
    }
    if (cache_remove(&h->l2[core], block, &d, &k) && d) {
        dirty_seen = 1;
        kind_seen = k;
    }
    if (cache_remove(h->llc, block, &d, &k) && d) {
        dirty_seen = 1;
        kind_seen = k;
    }
    if (dirty_seen && !discard_dirty)
        writeback(h, kind_seen);
    return dirty_seen;
}

void bc_dma_rx_write_run(BHier *h, int64_t core, int64_t start, int64_t n)
{
    for (int64_t block = start; block < start + n; block++)
        bc_invalidate_block(h, core, block, /*discard_dirty=*/1);
    h->traffic[CAT_NIC_RX_WR] += n;
}

void bc_dma_tx_read_run(BHier *h, int64_t core, int64_t start, int64_t n)
{
    for (int64_t block = start; block < start + n; block++)
        bc_invalidate_block(h, core, block, /*discard_dirty=*/0);
    h->traffic[CAT_NIC_TX_RD] += n;
}
