"""The batch trace engine: struct-of-arrays state, native inner loop.

``REPRO_ENGINE`` selects which hierarchy implementation
:class:`~repro.engine.tracer.TraceSimulator` drives:

* ``object`` (default) — the original dict-based
  :class:`~repro.cache.hierarchy.CacheHierarchy`; the semantic oracle.
* ``batch`` — :class:`BatchHierarchy` below: per-set tag/dirty/kind/LRU
  state in preallocated numpy arrays (:mod:`repro.cache.soa`), with the
  whole per-request access cascade (ring refills, packet reads, workload
  runs, TX writes, sweeps) resolved by the compiled ``batchcore.c``
  kernel in a handful of batched calls instead of ~100 per-block dict
  probes. Without a C compiler the same arrays are driven by the
  pure-Python/numpy methods of :class:`~repro.cache.soa.SoaCache`
  (``REPRO_BATCH_BACKEND`` pins a backend explicitly).

Both engines are bit-identical by contract: ``BatchHierarchy`` inherits
every cascade rule from ``CacheHierarchy`` (only the cache storage and
the hot batched entry points differ), and the equivalence suite holds
``TraceResult`` equal field-for-field across every figure harness.
Because results are identical, the engine deliberately does **not**
participate in the point-cache fingerprint — cached points are shared
across engines.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.cache.soa import ArrayCounts, SoaCache, array_traffic_counter
from repro.engine import native
from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.params import SystemConfig
from repro.traffic import TrafficCounter

#: engine names accepted by ``REPRO_ENGINE`` / ``TraceConfig.engine``.
ENGINES = ("object", "batch")

#: C return level -> AccessLevel member (index 0 unused).
_LEVELS = (None, AccessLevel.L1, AccessLevel.L2, AccessLevel.LLC, AccessLevel.MEM)


def engine_from_env() -> str:
    """Engine selected by ``REPRO_ENGINE`` (default ``object``)."""
    raw = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if not raw:
        return "object"
    if raw not in ENGINES:
        raise ConfigError(
            f"REPRO_ENGINE must be one of {ENGINES}, got {raw!r}"
        )
    return raw


def resolve_engine(engine: Optional[str] = None) -> str:
    """Validate an explicit engine choice, or fall back to the env."""
    if engine is None:
        return engine_from_env()
    if engine not in ENGINES:
        raise ConfigError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


def build_hierarchy(system: SystemConfig, engine: str) -> CacheHierarchy:
    """The hierarchy implementation behind the ``REPRO_ENGINE`` seam."""
    if engine == "batch":
        return BatchHierarchy(system)
    return CacheHierarchy(system)


def _run_bounds(blocks) -> Optional[Tuple[int, int]]:
    """(start, n) when ``blocks`` is a contiguous ascending run."""
    if isinstance(blocks, range):
        if blocks.step == 1:
            return blocks.start, len(blocks)
        return None
    n = len(blocks)
    if n == 0:
        return None
    first = blocks[0]
    if blocks[-1] - first != n - 1:
        return None
    for i, block in enumerate(blocks):
        if block != first + i:
            return None
    return first, n


class BatchHierarchy(CacheHierarchy):
    """CacheHierarchy on struct-of-arrays caches with a native hot path.

    The slow paths (scalar probes, introspection, metrics) are the
    inherited ``CacheHierarchy`` methods running over
    :class:`~repro.cache.soa.SoaCache`; when the native kernel is
    available the batched entry points are rebound to single C calls
    that mutate the same arrays.
    """

    CACHE_CLS = SoaCache

    def __init__(
        self,
        config: SystemConfig,
        traffic: Optional[TrafficCounter] = None,
        victim_fill_clean: bool = False,
    ) -> None:
        if traffic is None:
            traffic, self._traffic_array = array_traffic_counter()
        elif isinstance(traffic.counts, ArrayCounts):
            self._traffic_array = traffic.counts.array
        else:
            raise ConfigError(
                "BatchHierarchy needs an array-backed TrafficCounter "
                "(see repro.cache.soa.array_traffic_counter)"
            )
        super().__init__(
            config, traffic=traffic, victim_fill_clean=victim_fill_clean
        )
        self._kernel = native.load_kernel()
        self.backend = "native" if self._kernel is not None else "python"
        if self._kernel is not None:
            self._build_native_context()
            self._bind_native()

    # ------------------------------------------------------------------
    # native context plumbing
    # ------------------------------------------------------------------

    @property
    def victim_fill_clean(self) -> bool:
        return self._victim_fill_clean

    @victim_fill_clean.setter
    def victim_fill_clean(self, value: bool) -> None:
        self._victim_fill_clean = bool(value)
        ctx = getattr(self, "_ctx", None)
        if ctx is not None:
            ctx.victim_fill_clean = 1 if value else 0

    @staticmethod
    def _bcache(cache: SoaCache) -> "native.BCache":
        p_i64 = ctypes.POINTER(ctypes.c_int64)
        p_u8 = ctypes.POINTER(ctypes.c_uint8)
        return native.BCache(
            num_sets=cache.num_sets,
            ways=cache.ways,
            is_lru=0 if cache._random_replacement else 1,
            tags=cache.tags.ctypes.data_as(p_i64),
            dirty=cache.dirty.ctypes.data_as(p_u8),
            kind=cache.kind.ctypes.data_as(p_u8),
            stamp=cache.stamp.ctypes.data_as(p_i64),
            tick=cache.tick.ctypes.data_as(p_i64),
            lcg=cache.lcg.ctypes.data_as(p_i64),
            stats=cache.stats_array.ctypes.data_as(p_i64),
        )

    def _build_native_context(self) -> None:
        p_i64 = ctypes.POINTER(ctypes.c_int64)
        cores = self.num_cores
        llc_ways = self.llc.ways
        self._l1_structs = (native.BCache * cores)(
            *[self._bcache(c) for c in self.l1s]
        )
        self._l2_structs = (native.BCache * cores)(
            *[self._bcache(c) for c in self.l2s]
        )
        self._llc_struct = (native.BCache * 1)(self._bcache(self.llc))
        self._ddio_mask_array = np.zeros(llc_ways, dtype=np.int64)
        self._ddio_mask_len = np.zeros(1, dtype=np.int64)
        self._core_masks_array = np.zeros(cores * llc_ways, dtype=np.int64)
        self._core_mask_len = np.full(cores, -1, dtype=np.int64)
        self._ctx = native.BHier(
            num_cores=cores,
            victim_fill_clean=1 if self._victim_fill_clean else 0,
            l1=self._l1_structs,
            l2=self._l2_structs,
            llc=self._llc_struct,
            traffic=self._traffic_array.ctypes.data_as(p_i64),
            ddio_mask=self._ddio_mask_array.ctypes.data_as(p_i64),
            ddio_mask_len=self._ddio_mask_len.ctypes.data_as(p_i64),
            core_masks=self._core_masks_array.ctypes.data_as(p_i64),
            core_mask_len=self._core_mask_len.ctypes.data_as(p_i64),
        )
        self._ctx_ref = ctypes.byref(self._ctx)
        self._counts_scratch = (ctypes.c_int64 * 5)()
        self._sync_ddio_mask()
        for core in range(cores):
            self._sync_core_mask(core)

    def _sync_ddio_mask(self) -> None:
        mask = self.ddio_way_mask
        self._ddio_mask_array[: len(mask)] = mask
        self._ddio_mask_len[0] = len(mask)

    def _sync_core_mask(self, core: int) -> None:
        mask = self._core_fill_masks[core]
        if mask is None:
            self._core_mask_len[core] = -1
            return
        base = core * self.llc.ways
        self._core_masks_array[base : base + len(mask)] = mask
        self._core_mask_len[core] = len(mask)

    def set_ddio_way_mask(self, ways: Sequence[int]) -> None:
        super().set_ddio_way_mask(ways)
        if self._kernel is not None:
            self._sync_ddio_mask()

    def set_core_fill_mask(
        self, core: int, ways: Optional[Sequence[int]]
    ) -> None:
        super().set_core_fill_mask(core, ways)
        if self._kernel is not None:
            self._sync_core_mask(core)

    def _bind_native(self) -> None:
        """Shadow the batched entry points with single C calls."""
        self.cpu_access = self._cpu_access_native
        self.cpu_access_run = self._cpu_access_run_native
        self.cpu_access_batch = self._cpu_access_batch_native
        self.nic_llc_write_run = self._nic_llc_write_run_native
        self.nic_probe_read_run = self._nic_probe_read_run_native
        self.sweep_run = self._sweep_run_native
        self.invalidate_block = self._invalidate_block_native
        self.dma_rx_write_run = self._dma_rx_write_run_native
        self.dma_tx_read_run = self._dma_tx_read_run_native

    # ------------------------------------------------------------------
    # native entry points (same contracts as the CacheHierarchy methods)
    # ------------------------------------------------------------------

    def _cpu_access_native(
        self, core: int, block: int, kind: RegionKind, write: bool
    ) -> AccessLevel:
        level = self._kernel.bc_cpu_access(
            self._ctx_ref, core, block, kind, 1 if write else 0
        )
        return _LEVELS[level]

    def _flush_counts(self, level_counts: dict) -> int:
        counts = self._counts_scratch
        total = 0
        for level in (1, 2, 3, 4):
            n = counts[level]
            if n:
                level_counts[_LEVELS[level]] += n
                total += n
                counts[level] = 0
        return total

    def _cpu_access_run_native(
        self,
        core: int,
        start: int,
        n: int,
        kind: RegionKind,
        write: bool,
        level_counts: dict,
    ) -> None:
        self._kernel.bc_cpu_access_run(
            self._ctx_ref,
            core,
            start,
            n,
            kind,
            1 if write else 0,
            self._counts_scratch,
        )
        self._flush_counts(level_counts)

    def _cpu_access_batch_native(
        self, core: int, blocks, writes, kind: RegionKind, level_counts: dict
    ) -> int:
        blocks64 = np.ascontiguousarray(blocks, dtype=np.int64)
        writes8 = np.ascontiguousarray(writes, dtype=np.uint8)
        self._kernel.bc_cpu_access_batch(
            self._ctx_ref,
            core,
            blocks64.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
            writes8.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
            len(blocks64),
            kind,
            self._counts_scratch,
        )
        return self._flush_counts(level_counts)

    def _nic_llc_write_run_native(
        self,
        core_hint: int,
        blocks: Sequence[int],
        kind: RegionKind = RegionKind.RX_BUFFER,
    ) -> None:
        bounds = _run_bounds(blocks)
        if bounds is None:
            CacheHierarchy.nic_llc_write_run(self, core_hint, blocks, kind)
            return
        self._kernel.bc_nic_llc_write_run(
            self._ctx_ref, core_hint, bounds[0], bounds[1], kind
        )

    def _nic_probe_read_run_native(
        self, core_hint: int, blocks: Sequence[int]
    ) -> None:
        bounds = _run_bounds(blocks)
        if bounds is None:
            CacheHierarchy.nic_probe_read_run(self, core_hint, blocks)
            return
        self._kernel.bc_nic_probe_read_run(
            self._ctx_ref, core_hint, bounds[0], bounds[1]
        )

    def _sweep_run_native(self, core_hint: int, blocks: Sequence[int]) -> int:
        bounds = _run_bounds(blocks)
        if bounds is None:
            return CacheHierarchy.sweep_run(self, core_hint, blocks)
        return self._kernel.bc_sweep_run(
            self._ctx_ref, core_hint, bounds[0], bounds[1]
        )

    def _invalidate_block_native(
        self, core_hint: int, block: int, discard_dirty: bool
    ) -> bool:
        return bool(
            self._kernel.bc_invalidate_block(
                self._ctx_ref, core_hint, block, 1 if discard_dirty else 0
            )
        )

    def _dma_rx_write_run_native(
        self, core_hint: int, blocks: Sequence[int]
    ) -> None:
        bounds = _run_bounds(blocks)
        if bounds is None:
            CacheHierarchy.dma_rx_write_run(self, core_hint, blocks)
            return
        self._kernel.bc_dma_rx_write_run(
            self._ctx_ref, core_hint, bounds[0], bounds[1]
        )

    def _dma_tx_read_run_native(
        self, core_hint: int, blocks: Sequence[int]
    ) -> None:
        bounds = _run_bounds(blocks)
        if bounds is None:
            CacheHierarchy.dma_tx_read_run(self, core_hint, blocks)
            return
        self._kernel.bc_dma_tx_read_run(
            self._ctx_ref, core_hint, bounds[0], bounds[1]
        )
