"""Trace simulation with IAT-style dynamic DDIO way reallocation.

Wires :class:`~repro.nic.dynamic.DynamicDdioController` into the request
loop so benchmarks can compare static DDIO, dynamic reallocation, and
Sweeper under identical workloads (the §VII head-to-head).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.tracer import TraceConfig, TraceSimulator
from repro.errors import ConfigError
from repro.nic.dynamic import (
    DynamicDdioController,
    DynamicTraceHook,
    DynamicWaysConfig,
)


class DynamicWaysSimulator(TraceSimulator):
    """TraceSimulator whose DDIO way count adapts each epoch."""

    def __init__(
        self,
        cfg: TraceConfig,
        dynamic: Optional[DynamicWaysConfig] = None,
    ) -> None:
        if cfg.policy != "ddio":
            raise ConfigError("dynamic way reallocation requires DDIO")
        super().__init__(cfg)
        self.controller = DynamicDdioController(
            self.hier,
            dynamic if dynamic is not None else DynamicWaysConfig(),
            packet_blocks=cfg.system.nic.blocks_per_packet,
        )
        self._hook = DynamicTraceHook(self.controller)

    def service_one(self, core: int) -> None:
        super().service_one(core)
        self._hook.tick()

    def _reset_measurements(self) -> None:
        super()._reset_measurements()
        # The traffic counter was cleared; resync the epoch snapshot.
        self._hook = DynamicTraceHook(self.controller)

    @property
    def final_ways(self) -> int:
        return self.controller.ways
