"""Content-addressed warm-state snapshots (DESIGN.md §14).

Every grid point pays a full cache warmup before its measured window,
yet the points of one figure usually differ only in a measure-phase
knob (DDIO way mask, measure length). This module keys end-of-warmup
simulator state by a *warmup fingerprint* — a hash over only the config
fields that influence state up to the end of warmup — and stores the
pickled state in the point cache's generation directory, so a fig5
sweep over 8 way masks simulates warmup once and forks the other 7
measured windows off restored state, and a re-run after a
one-parameter edit only simulates the delta.

Determinism contract: a restored point is bit-identical to one that
re-simulated its warmup, per engine (the object and SoA engines key
separate snapshots because their native state layouts differ). The
restore is all-or-nothing — every field is validated against the live
simulator before anything is mutated, and any mismatch falls back to a
normal warmup with a logged ``snapshot.fallback`` event. Observer
points deterministically opt out (never capture, never restore): the
prime+probe observer keys probes off absolute request indices and
forces the object engine, so sharing warm state across observer specs
would complicate the carve-out for no wall-clock win. Burst points
restore exactly — the burst profile is part of the warmup fingerprint
and the mutated backlog target is part of the captured state.

Knobs: ``REPRO_SNAPSHOTS=0`` disables snapshots (default on); they are
only active when the point cache is (``REPRO_NO_CACHE`` unset).
Snapshots live under
``<cache_dir>/<generation>/snapshots/<warmup_fp>.<engine>.snap``,
count toward ``REPRO_CACHE_MAX_MB``, are pruned LRU alongside point
entries (loads refresh mtime), and are garbage-collected with their
code generation.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from hashlib import sha256
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.engine import pointcache

SNAP_SUBDIR = "snapshots"

#: process-local metrics; the cross-process metric is the manifest's
#: per-point ``warm_restored`` flag (workers don't share this dict).
counters: Dict[str, int] = {"captured": 0, "restored": 0, "fallbacks": 0}


def reset_counters() -> None:
    for key in counters:
        counters[key] = 0


def snapshots_enabled() -> bool:
    """``REPRO_SNAPSHOTS`` (default on), gated on the point cache."""
    if os.environ.get("REPRO_SNAPSHOTS", "") == "0":
        return False
    return pointcache.cache_enabled()


def eligible(spec: Any) -> bool:
    """Whether ``spec`` participates in warm-state sharing.

    Observer points opt out deterministically (see the module
    docstring); specs without a ``warmup_key`` (foreign spec types fed
    through the serve scheduler) are simply not shareable.
    """
    if not snapshots_enabled():
        return False
    if getattr(spec, "observer", None) is not None:
        return False
    return hasattr(spec, "warmup_key")


def warmup_fingerprint(spec: Any) -> str:
    """Content address of the config prefix up to end-of-warmup.

    Code-salted like :func:`repro.engine.pointcache.fingerprint`, with a
    domain separator so a warmup fingerprint can never collide with a
    point fingerprint even for a degenerate ``cache_key``.
    """
    digest = sha256()
    digest.update(pointcache.code_salt().encode())
    digest.update(b"\0warmup\0")
    digest.update(spec.warmup_key().encode())
    return digest.hexdigest()


def snapshot_path(wfp: str, engine: str) -> Path:
    return pointcache.generation_dir() / SNAP_SUBDIR / f"{wfp}.{engine}.snap"


def load_state(wfp: str, engine: str) -> Optional[Dict[str, Any]]:
    """Unpickled warm state for ``wfp``, or None on miss/corruption.

    Like :func:`pointcache.load`, anything wrong with the entry — a
    truncated pickle from a crashed writer, a foreign object, a stale
    schema — degrades to a miss; the caller warms up normally and
    overwrites it. Hits refresh mtime so pruning stays LRU.
    """
    path = snapshot_path(wfp, engine)
    try:
        with path.open("rb") as f:
            state = pickle.load(f)
    except pointcache._LOAD_ERRORS:
        return None
    if not isinstance(state, dict) or "version" not in state:
        return None
    try:
        os.utime(path)
    except OSError:
        pass
    return state


def store_state(wfp: str, engine: str, state: Dict[str, Any]) -> None:
    """Persist warm state atomically (temp file + rename).

    Readers racing a crashed writer see either a complete snapshot or a
    miss — never a partial file under the final name. The size bound is
    applied with ``strict=False``: a malformed ``REPRO_CACHE_MAX_MB``
    must not fail a point that already simulated.
    """
    path = snapshot_path(wfp, engine)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(state, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    counters["captured"] += 1
    limit = pointcache.cache_max_bytes(strict=False)
    if limit is not None:
        pointcache.prune(limit)


# -- sweep grouping -----------------------------------------------------


def warmup_groups(specs: Sequence[Any]) -> Dict[str, List[int]]:
    """Spec indices grouped by shared warmup fingerprint (size >= 2).

    Only groups that can actually share a snapshot are returned: the
    first index of each group is the *leader* that simulates the warmup
    and stores the snapshot; the rest are followers that restore it.
    """
    if not snapshots_enabled():
        return {}
    groups: Dict[str, List[int]] = {}
    for i, spec in enumerate(specs):
        if not eligible(spec):
            continue
        groups.setdefault(warmup_fingerprint(spec), []).append(i)
    return {fp: idxs for fp, idxs in groups.items() if len(idxs) > 1}


def leader_order(specs: Sequence[Any]) -> List[int]:
    """Spec indices reordered so warmup-group leaders come first.

    Used by schedulers that acquire points one at a time (the serve
    scheduler's dedup loop): starting each group's leader before its
    followers maximizes the chance the snapshot exists by the time a
    follower simulates. Order within the leaders and within the
    followers is the original spec order, so the reordering is
    deterministic.
    """
    followers = set()
    for idxs in warmup_groups(specs).values():
        followers.update(idxs[1:])
    order = [i for i in range(len(specs)) if i not in followers]
    order.extend(i for i in range(len(specs)) if i in followers)
    return order
