"""Analytic throughput model: trace statistics → peak sustainable Mrps.

The paper measures "the peak network bandwidth the CPU can effectively
handle in each system configuration". In this reproduction that peak is
the fixed point of a closed service loop:

* a request's service time is its base CPU work plus the latency of its
  cache/memory accesses (with a memory-level-parallelism divisor per
  level standing in for the out-of-order core);
* memory latency depends on DRAM utilization via the load-latency curve;
* DRAM utilization depends on throughput times the per-request memory
  traffic measured by the trace engine.

Higher per-request memory traffic therefore lowers peak throughput twice
over — more time waiting on memory *and* hotter memory — which is
exactly the paper's leak-interference mechanism. Throughput is capped at
95% core utilization, standing in for the paper's generous p99 SLO of
100x the average service time, and at the DRAM stability limit.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

from repro.cache.hierarchy import AccessLevel
from repro.engine.tracer import TraceResult
from repro.errors import ConfigError
from repro.mem.dram import MAX_STABLE_UTILIZATION, DramModel
from repro.params import CACHE_BLOCK_BYTES, SystemConfig

#: Core-utilization cap standing in for the paper's p99 latency SLO.
CORE_UTILIZATION_CAP = 0.95


@dataclass(frozen=True)
class ServiceProfile:
    """Per-request averages extracted from a steady-state trace."""

    l1_accesses: float
    l2_accesses: float
    llc_accesses: float
    mem_reads: float
    mem_blocks_total: float
    cpu_work_cycles: float

    @classmethod
    def from_trace(cls, trace: TraceResult) -> "ServiceProfile":
        levels = trace.levels_per_request()
        return cls(
            l1_accesses=levels.get(AccessLevel.L1, 0.0),
            l2_accesses=levels.get(AccessLevel.L2, 0.0),
            llc_accesses=levels.get(AccessLevel.LLC, 0.0),
            mem_reads=levels.get(AccessLevel.MEM, 0.0),
            mem_blocks_total=trace.mem_accesses_per_request(),
            cpu_work_cycles=trace.cpu_work_cycles,
        )

    def with_extra_cycles(self, cycles: float) -> "ServiceProfile":
        return dataclasses.replace(
            self, cpu_work_cycles=self.cpu_work_cycles + cycles
        )


@dataclass(frozen=True)
class PerfPoint:
    """Performance at one operating point."""

    throughput_mrps: float
    mem_bandwidth_gbps: float
    mem_utilization: float
    mem_latency_cycles: float
    mem_p99_latency_cycles: float
    service_cycles: float
    core_limited: bool

    def service_us(self, system: SystemConfig) -> float:
        """Mean request service time in microseconds."""
        return self.service_cycles / system.cpu.cycles_per_us

    def network_gbps(self, packet_bytes: int) -> float:
        """Ingress network bandwidth implied by the throughput."""
        return self.throughput_mrps * packet_bytes * 8.0 / 1000.0


def bandwidth_gbps(profile: ServiceProfile, throughput_mrps: float) -> float:
    """DRAM bandwidth demand at a given request throughput."""
    bytes_per_request = profile.mem_blocks_total * CACHE_BLOCK_BYTES
    return throughput_mrps * bytes_per_request / 1000.0


def service_cycles(
    profile: ServiceProfile, system: SystemConfig, mem_latency_cycles: float
) -> float:
    """Mean request service time at a given loaded memory latency.

    LLC hits pay a fraction (``llc_load_coupling``) of the DRAM queueing
    delay on top of the nominal LLC latency — the shared fill/writeback
    machinery couples LLC service to memory pressure.
    """
    cpu = system.cpu
    queueing = max(
        mem_latency_cycles - system.memory.idle_latency_cycles, 0.0
    )
    llc_latency = (
        system.llc.latency_cycles
        + system.nic.noc_latency_cycles
        + cpu.llc_load_coupling * queueing
    )
    return (
        profile.cpu_work_cycles
        + profile.l2_accesses * system.l2.latency_cycles / cpu.mlp_l2
        + profile.llc_accesses * llc_latency / cpu.mlp_llc
        + profile.mem_reads * mem_latency_cycles / cpu.mlp_mem
    )


def _capacity_mrps(
    profile: ServiceProfile, system: SystemConfig, throughput_mrps: float
) -> float:
    """Throughput the cores could sustain given the load at ``X``."""
    dram = DramModel(system.memory, system.cpu.freq_ghz)
    latency = dram.avg_latency_cycles(bandwidth_gbps(profile, throughput_mrps))
    cycles = service_cycles(profile, system, latency)
    per_core_mrps = system.cpu.cycles_per_us / cycles
    return CORE_UTILIZATION_CAP * system.cpu.num_cores * per_core_mrps


def perf_at_load(
    profile: ServiceProfile, system: SystemConfig, throughput_mrps: float
) -> PerfPoint:
    """Evaluate the model at an externally chosen throughput."""
    if throughput_mrps < 0:
        raise ConfigError("throughput must be non-negative")
    dram = DramModel(system.memory, system.cpu.freq_ghz)
    bw = bandwidth_gbps(profile, throughput_mrps)
    latency = dram.avg_latency_cycles(bw)
    return PerfPoint(
        throughput_mrps=throughput_mrps,
        mem_bandwidth_gbps=bw,
        mem_utilization=dram.utilization(bw),
        mem_latency_cycles=latency,
        mem_p99_latency_cycles=dram.p99_latency_cycles(bw),
        service_cycles=service_cycles(profile, system, latency),
        core_limited=False,
    )


def solve_peak_throughput(
    profile: ServiceProfile, system: SystemConfig, tol: float = 1e-6
) -> PerfPoint:
    """Peak sustainable throughput: fixed point of the service loop.

    Capacity decreases monotonically with offered load (memory only gets
    slower), so the fixed point is unique and bisection on
    ``capacity(X) - X`` converges. The DRAM stability limit bounds the
    search when traffic per request is high enough to saturate memory.
    """
    dram = DramModel(system.memory, system.cpu.freq_ghz)
    bytes_per_request = profile.mem_blocks_total * CACHE_BLOCK_BYTES
    if bytes_per_request > 0:
        x_bw_limit = (
            MAX_STABLE_UTILIZATION
            * dram.usable_bandwidth_gbps
            * 1000.0
            / bytes_per_request
        )
    else:
        x_bw_limit = float("inf")

    x_core = _capacity_mrps(profile, system, 0.0)
    hi = min(x_core, x_bw_limit)
    if _capacity_mrps(profile, system, hi) >= hi:
        # Cores saturate before memory does.
        point = perf_at_load(profile, system, hi)
        return dataclasses.replace(point, core_limited=True)

    lo = 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _capacity_mrps(profile, system, mid) >= mid:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(hi, 1.0):
            break
    return perf_at_load(profile, system, lo)


@dataclass(frozen=True)
class CollocatedPerf:
    """Joint operating point of a network tenant and an X-Mem tenant."""

    nf_throughput_mrps: float
    xmem_ipc: float
    mem_bandwidth_gbps: float
    mem_latency_cycles: float


def solve_collocated(
    nf_profile: ServiceProfile,
    xmem_level_rates: Dict[AccessLevel, float],
    xmem_blocks_per_access: float,
    system: SystemConfig,
    nf_cores: int,
    xmem_cores: int,
    instructions_per_access: float = 4.0,
    iterations: int = 100,
) -> CollocatedPerf:
    """Fixed point for the §VI-E collocation scenario.

    Both tenants share the memory channels: the NF's peak throughput and
    X-Mem's access rate each depend on the loaded memory latency, which
    depends on their combined bandwidth. Damped iteration converges
    because both demands fall monotonically as latency rises.

    ``nf_profile`` must describe only the NF's traffic (blocks/request),
    and ``xmem_blocks_per_access`` only X-Mem's — the collocation trace
    separates them by traffic category.
    """
    if nf_cores <= 0 or xmem_cores <= 0:
        raise ConfigError("collocation needs both tenants")
    dram = DramModel(system.memory, system.cpu.freq_ghz)
    latency = float(system.memory.idle_latency_cycles)
    bw_limit = MAX_STABLE_UTILIZATION * dram.usable_bandwidth_gbps
    nf_x = 0.0
    xm_rate = 0.0

    def demand(nf, xm) -> float:
        return (
            nf * nf_profile.mem_blocks_total * CACHE_BLOCK_BYTES
            + xm * xmem_blocks_per_access * CACHE_BLOCK_BYTES
        ) / 1000.0

    for _ in range(iterations):
        cycles = service_cycles(nf_profile, system, latency)
        nf_target = (
            CORE_UTILIZATION_CAP * nf_cores * system.cpu.cycles_per_us / cycles
        )
        ipc = xmem_ipc(
            xmem_level_rates,
            system,
            latency,
            instructions_per_access=instructions_per_access,
        )
        accesses_per_cycle = ipc / (instructions_per_access + 1.0)
        xm_target = xmem_cores * accesses_per_cycle * system.cpu.cycles_per_us
        # Memory stability constraint: when the tenants' combined demand
        # would overrun the channels, both are rationed proportionally —
        # the writeback/refill machinery stalls each in proportion to
        # the bandwidth it consumes. This is how consumed-buffer
        # evictions throttle an otherwise core-bound NF (§VI-E).
        bw_target = demand(nf_target, xm_target)
        if bw_target > bw_limit:
            ration = bw_limit / bw_target
            nf_target *= ration
            xm_target *= ration
        nf_x = 0.5 * (nf_x + nf_target)
        xm_rate = 0.5 * (xm_rate + xm_target)
        latency = dram.avg_latency_cycles(min(demand(nf_x, xm_rate), bw_limit))
    bw = demand(nf_x, xm_rate)
    # Effective IPC follows from the achieved (possibly rationed) access
    # rate: xm_rate accesses/us complete instructions_per_access + 1
    # instructions each across xmem_cores cores.
    effective_ipc = (
        xm_rate
        * (instructions_per_access + 1.0)
        / (xmem_cores * system.cpu.cycles_per_us)
    )
    return CollocatedPerf(
        nf_throughput_mrps=nf_x,
        xmem_ipc=effective_ipc,
        mem_bandwidth_gbps=bw,
        mem_latency_cycles=latency,
    )


def xmem_ipc(
    level_rates: Dict[AccessLevel, float],
    system: SystemConfig,
    mem_latency_cycles: float,
    instructions_per_access: float = 4.0,
    alu_ipc: float = 2.0,
    access_mlp: float = 1.6,
) -> float:
    """Instructions-per-cycle of an X-Mem tenant given its hit profile.

    ``level_rates`` are per-access fractions serviced at each level (from
    the collocation trace). Random dependent accesses overlap little, so
    a small MLP divisor applies. Absolute IPC is not meaningful — Figure
    9 normalizes — but the relative ordering tracks AMAT faithfully.
    """
    total = sum(level_rates.values())
    if total <= 0:
        raise ConfigError("level_rates must describe at least one access")
    rates = {lv: r / total for lv, r in level_rates.items()}
    queueing = max(
        mem_latency_cycles - system.memory.idle_latency_cycles, 0.0
    )
    amat = (
        rates.get(AccessLevel.L1, 0.0) * system.l1.latency_cycles
        + rates.get(AccessLevel.L2, 0.0) * system.l2.latency_cycles
        + rates.get(AccessLevel.LLC, 0.0)
        * (
            system.llc.latency_cycles
            + system.nic.noc_latency_cycles
            + system.cpu.llc_load_coupling * queueing
        )
        + rates.get(AccessLevel.MEM, 0.0) * mem_latency_cycles
    )
    cycles_per_iteration = instructions_per_access / alu_ipc + amat / access_mlp
    return (instructions_per_access + 1.0) / cycles_per_iteration
