"""On-demand build and ctypes bindings for the batch engine's C kernel.

The batch engine's hot loop lives in ``batchcore.c``, compiled lazily
into a cached shared object the first time a process asks for it. The
toolchain requirement is just a C compiler (``cc``/``gcc``/``clang``);
no third-party package is involved. When no compiler is available the
batch engine transparently falls back to the pure-Python methods that
operate on the very same struct-of-arrays state (bit-identical, slower).

Environment knobs:

* ``REPRO_BATCH_BACKEND`` — ``auto`` (default: native when it builds,
  else Python), ``native`` (fail loudly if the kernel cannot be built),
  or ``python`` (never build; use the numpy fallback).
* ``REPRO_NATIVE_DIR`` — cache directory for compiled kernels (default
  ``~/.cache/repro-native``). The library name embeds a hash of the C
  source, so editing the kernel invalidates stale builds automatically.

Compilation is race-safe across processes: each builder compiles to a
unique temp file and ``os.replace``s it into place.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from ctypes import POINTER, c_int64, c_uint8
from pathlib import Path
from typing import Optional

from repro.errors import ConfigError

_SOURCE = Path(__file__).resolve().parent / "batchcore.c"

BACKENDS = ("auto", "native", "python")


def backend_from_env() -> str:
    raw = os.environ.get("REPRO_BATCH_BACKEND", "auto").strip().lower()
    if raw not in BACKENDS:
        raise ConfigError(
            f"REPRO_BATCH_BACKEND must be one of {BACKENDS}, got {raw!r}"
        )
    return raw


def native_dir() -> Path:
    env = os.environ.get("REPRO_NATIVE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-native"


class BCache(ctypes.Structure):
    _fields_ = [
        ("num_sets", c_int64),
        ("ways", c_int64),
        ("is_lru", c_int64),
        ("tags", POINTER(c_int64)),
        ("dirty", POINTER(c_uint8)),
        ("kind", POINTER(c_uint8)),
        ("stamp", POINTER(c_int64)),
        ("tick", POINTER(c_int64)),
        ("lcg", POINTER(c_int64)),
        ("stats", POINTER(c_int64)),
    ]


class BHier(ctypes.Structure):
    _fields_ = [
        ("num_cores", c_int64),
        ("victim_fill_clean", c_int64),
        ("l1", POINTER(BCache)),
        ("l2", POINTER(BCache)),
        ("llc", POINTER(BCache)),
        ("traffic", POINTER(c_int64)),
        ("ddio_mask", POINTER(c_int64)),
        ("ddio_mask_len", POINTER(c_int64)),
        ("core_masks", POINTER(c_int64)),
        ("core_mask_len", POINTER(c_int64)),
    ]


_P = POINTER(BHier)

#: exported function name -> (argtypes, restype)
_SIGNATURES = {
    "bc_cpu_access": ([_P, c_int64, c_int64, c_int64, c_int64], c_int64),
    "bc_cpu_access_run": (
        [_P, c_int64, c_int64, c_int64, c_int64, c_int64, POINTER(c_int64)],
        None,
    ),
    "bc_cpu_access_batch": (
        [
            _P,
            c_int64,
            POINTER(c_int64),
            POINTER(c_uint8),
            c_int64,
            c_int64,
            POINTER(c_int64),
        ],
        None,
    ),
    "bc_nic_llc_write_run": (
        [_P, c_int64, c_int64, c_int64, c_int64],
        None,
    ),
    "bc_nic_probe_read_run": ([_P, c_int64, c_int64, c_int64], None),
    "bc_sweep_run": ([_P, c_int64, c_int64, c_int64], c_int64),
    "bc_invalidate_block": ([_P, c_int64, c_int64, c_int64], c_int64),
    "bc_dma_rx_write_run": ([_P, c_int64, c_int64, c_int64], None),
    "bc_dma_tx_read_run": ([_P, c_int64, c_int64, c_int64], None),
}


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _source_hash() -> str:
    return hashlib.sha256(_SOURCE.read_bytes()).hexdigest()[:16]


def build_library(source: Path = _SOURCE) -> Path:
    """Compile the kernel (if not cached) and return the .so path."""
    compiler = _find_compiler()
    if compiler is None:
        raise ConfigError("no C compiler (cc/gcc/clang) on PATH")
    out_dir = native_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    lib_path = out_dir / f"batchcore-{_source_hash()}.so"
    if lib_path.exists():
        return lib_path
    fd, tmp_name = tempfile.mkstemp(dir=out_dir, suffix=".so.tmp")
    os.close(fd)
    try:
        proc = subprocess.run(
            [
                compiler,
                "-O2",
                "-fPIC",
                "-shared",
                "-o",
                tmp_name,
                str(source),
            ],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise ConfigError(
                f"batchcore compile failed ({compiler}):\n{proc.stderr}"
            )
        os.replace(tmp_name, lib_path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return lib_path


class NativeKernel:
    """Loaded shared library with typed entry points as attributes."""

    def __init__(self, lib_path: Path) -> None:
        self.path = lib_path
        self.lib = ctypes.CDLL(str(lib_path))
        for name, (argtypes, restype) in _SIGNATURES.items():
            fn = getattr(self.lib, name)
            fn.argtypes = argtypes
            fn.restype = restype
            setattr(self, name, fn)


_kernel: Optional[NativeKernel] = None
_kernel_error: Optional[str] = None


def load_kernel() -> Optional[NativeKernel]:
    """The process-wide kernel, honouring ``REPRO_BATCH_BACKEND``.

    Returns None when the Python fallback should be used. Raises
    :class:`ConfigError` only under ``REPRO_BATCH_BACKEND=native``.
    """
    global _kernel, _kernel_error
    backend = backend_from_env()
    if backend == "python":
        return None
    if _kernel is not None:
        return _kernel
    if _kernel_error is None:
        try:
            _kernel = NativeKernel(build_library())
            return _kernel
        except (ConfigError, OSError) as exc:
            _kernel_error = str(exc)
    if backend == "native":
        raise ConfigError(
            f"REPRO_BATCH_BACKEND=native but the kernel is unavailable: "
            f"{_kernel_error}"
        )
    return None
