"""Persistent content-addressed cache of simulated point results.

Re-running a figure grid after editing only rendering or analysis code
used to re-simulate every point from scratch. This module memoizes
:class:`~repro.experiments.common.PointResult` objects on disk, keyed by
a fingerprint of everything that determines the simulation's output:

* the full system configuration (``repr`` of the frozen dataclass tree),
* the workload's :meth:`~repro.workloads.base.Workload.cache_key`,
* the injection policy, Sweeper switches, queue depth, seed, and the
  resolved warmup/measure request counts,
* a *code-version salt* — a hash over every ``.py`` file of the
  ``repro`` package — so any source change invalidates all entries.

Environment knobs:

* ``REPRO_NO_CACHE=1`` bypasses the cache entirely (no reads, no writes);
* ``REPRO_CACHE_DIR`` overrides the default ``results/.pointcache``.

Entries are pickles written atomically (temp file + rename), so parallel
workers racing on the same fingerprint are safe: last writer wins and
every reader sees a complete file.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

DEFAULT_CACHE_DIR = Path("results") / ".pointcache"

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the repro package's source; computed once per process."""
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_salt = digest.hexdigest()
    return _code_salt


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") != "1"


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else DEFAULT_CACHE_DIR


def fingerprint(spec: Any) -> str:
    """Content address of a point spec (its ``cache_key`` + code salt)."""
    digest = hashlib.sha256()
    digest.update(code_salt().encode())
    digest.update(b"\0")
    digest.update(spec.cache_key().encode())
    return digest.hexdigest()


def _entry_path(fp: str) -> Path:
    return cache_dir() / f"{fp}.pkl"


def load(fp: str) -> Optional[Any]:
    """Cached value for fingerprint ``fp``, or None.

    A corrupt or unreadable entry behaves like a miss — the caller will
    re-simulate and overwrite it.
    """
    path = _entry_path(fp)
    try:
        with path.open("rb") as f:
            return pickle.load(f)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None


def store(fp: str, value: Any) -> None:
    """Persist ``value`` under fingerprint ``fp`` (atomic replace)."""
    directory = cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, _entry_path(fp))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
