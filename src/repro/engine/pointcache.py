"""Persistent content-addressed cache of simulated point results.

Re-running a figure grid after editing only rendering or analysis code
used to re-simulate every point from scratch. This module memoizes
:class:`~repro.experiments.common.PointResult` objects on disk, keyed by
a fingerprint of everything that determines the simulation's output:

* the full system configuration (``repr`` of the frozen dataclass tree),
* the workload's :meth:`~repro.workloads.base.Workload.cache_key`,
* the injection policy, Sweeper switches, queue depth, seed, and the
  resolved warmup/measure request counts,
* a *code-version salt* — a hash over every ``.py`` and ``.c`` file of
  the ``repro`` package (the batch engine's kernel source counts as
  code) — so any source change invalidates all entries.

Environment knobs:

* ``REPRO_NO_CACHE=1`` bypasses the cache entirely (no reads, no writes);
* ``REPRO_CACHE_DIR`` overrides the default ``results/.pointcache``;
* ``REPRO_CACHE_MAX_MB`` bounds the cache's total size — every store
  prunes least-recently-used entries (by mtime; hits refresh it) until
  the cache fits.

Entries are pickles written atomically (temp file + rename), so parallel
workers racing on the same fingerprint are safe: last writer wins and
every reader sees a complete file.

Entries live in one subdirectory per code generation
(``<cache_dir>/<code_salt[:16]>/<fingerprint>.pkl``), because any source
change invalidates every prior entry: the generation that produced them
becomes unreachable garbage the moment the salt changes. Warm-state
snapshots (:mod:`repro.engine.snapshot`) live under a ``snapshots/``
subdirectory of the same generation as ``*.snap`` files and share the
size accounting, pruning, and GC lifecycle. ``python -m
repro.engine.pointcache --stats`` reports generations and sizes;
``--gc`` deletes orphaned generations and applies the size bound. GC
also collects ``*.tmp`` orphans *inside* generation dirs (crashed
writers leave their ``mkstemp`` temp files there, not at the cache
root), age-guarded by :data:`TMP_MAX_AGE_S` so a live writer's temp
file is never raced; their bytes count toward the size stats either
way.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import faults
from repro.errors import ConfigError

DEFAULT_CACHE_DIR = Path("results") / ".pointcache"

#: minimum age before an in-generation ``*.tmp`` orphan is collected;
#: anything younger may be a live writer mid-``pickle.dump``.
TMP_MAX_AGE_S = 3600.0

#: everything unpickling a damaged/foreign entry is known to raise:
#: OSError (unreadable), EOFError/UnpicklingError (truncated stream),
#: Attribute/Import (class moved or gone), Index/Key/Value/Type (corrupt
#: bytecode stream internals), UnicodeDecodeError (mangled strings),
#: MemoryError (bogus length prefix). Anything in this set is a miss.
_LOAD_ERRORS = (
    OSError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    ValueError,
    TypeError,
    MemoryError,
    pickle.UnpicklingError,
    UnicodeDecodeError,
)

#: directory-name length for one code generation (a code_salt prefix).
GENERATION_CHARS = 16

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the repro package's source; computed once per process."""
    global _code_salt
    if _code_salt is None:
        package_root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        sources = sorted(package_root.rglob("*.py")) + sorted(
            package_root.rglob("*.c")
        )
        for path in sources:
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_salt = digest.hexdigest()
    return _code_salt


def cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") != "1"


def cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else DEFAULT_CACHE_DIR


_warned_bad_max_mb = False


def cache_max_bytes(strict: bool = True) -> Optional[int]:
    """Size bound from ``REPRO_CACHE_MAX_MB`` (None = unbounded).

    ``strict=True`` (startup validation) raises :class:`ConfigError` on
    a malformed value. The store path passes ``strict=False``: a bad
    knob must not fail a point that has already fully simulated, so it
    degrades to a once-per-process warning with pruning skipped.
    """
    global _warned_bad_max_mb
    env = os.environ.get("REPRO_CACHE_MAX_MB")
    if not env:
        return None
    try:
        mb = float(env)
    except ValueError:
        mb = None
    if mb is None or mb <= 0:
        if strict:
            if mb is None:
                raise ConfigError(
                    f"REPRO_CACHE_MAX_MB must be a number, got {env!r}"
                )
            raise ConfigError("REPRO_CACHE_MAX_MB must be > 0")
        if not _warned_bad_max_mb:
            _warned_bad_max_mb = True
            from repro.obs.events import get_event_log

            get_event_log().warning(
                "pointcache.bad_max_mb",
                value=env,
                action="size pruning skipped",
            )
        return None
    return int(mb * 1024 * 1024)


def fingerprint(spec: Any) -> str:
    """Content address of a point spec (its ``cache_key`` + code salt)."""
    digest = hashlib.sha256()
    digest.update(code_salt().encode())
    digest.update(b"\0")
    digest.update(spec.cache_key().encode())
    return digest.hexdigest()


def generation_dir() -> Path:
    """Entry directory of the current code generation."""
    return cache_dir() / code_salt()[:GENERATION_CHARS]


def _entry_path(fp: str) -> Path:
    return generation_dir() / f"{fp}.pkl"


#: the attributes a cached point result must expose; callers on the
#: simulation path pass this to ``load`` so a wrong-class pickle (a
#: foreign or stale writer) degrades to a miss instead of exploding
#: later when the label is re-stamped.
RESULT_ATTRS = ("label", "from_cache", "sim_seconds")


def load(fp: str, require_attrs: Optional[Tuple[str, ...]] = None) -> Optional[Any]:
    """Cached value for fingerprint ``fp``, or None.

    A corrupt or unreadable entry behaves like a miss — the caller will
    re-simulate and overwrite it. ``require_attrs`` duck-types the
    unpickled value: anything missing one of the attributes is also a
    miss. Hits refresh the entry's mtime so the size-bound pruning is
    LRU rather than FIFO.
    """
    path = _entry_path(fp)
    faults.on_cache_load(fp, path)
    try:
        with path.open("rb") as f:
            value = pickle.load(f)
    except _LOAD_ERRORS:
        return None
    if require_attrs and not all(hasattr(value, a) for a in require_attrs):
        return None  # wrong-class pickle: treat as a miss
    try:
        os.utime(path)
    except OSError:
        pass
    return value


def store(fp: str, value: Any) -> None:
    """Persist ``value`` under fingerprint ``fp`` (atomic replace).

    With ``REPRO_CACHE_MAX_MB`` set, least-recently-used entries are
    pruned afterwards until the whole cache fits the bound.
    """
    directory = generation_dir()
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, _entry_path(fp))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    limit = cache_max_bytes(strict=False)
    if limit is not None:
        prune(limit)


# -- garbage collection -------------------------------------------------


def _entries() -> List[Tuple[Path, float, int]]:
    """Every evictable entry (point pickles + warm-state snapshots) as
    (path, mtime, size); unstat-able files skipped."""
    root = cache_dir()
    out: List[Tuple[Path, float, int]] = []
    if not root.is_dir():
        return out
    for pattern in ("*.pkl", "*.snap"):
        for path in root.rglob(pattern):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((path, st.st_mtime, st.st_size))
    return out


def _tmp_bytes() -> int:
    """Bytes held by ``*.tmp`` writer temp files anywhere in the cache.

    Counted toward the size budget (a crash-orphaned temp occupies real
    disk) but never chosen as a prune victim — GC collects them once
    they age past :data:`TMP_MAX_AGE_S`.
    """
    root = cache_dir()
    if not root.is_dir():
        return 0
    total = 0
    for path in root.rglob("*.tmp"):
        try:
            total += path.stat().st_size
        except OSError:
            continue
    return total


def prune(max_bytes: int) -> List[Path]:
    """Delete oldest-mtime entries until the cache fits ``max_bytes``.

    Returns the removed paths. Races with concurrent stores and loads
    are benign: each victim is re-statted immediately before unlinking,
    so a file that vanished is just discounted and an entry a
    concurrent hit refreshed since the scan (``load`` bumps mtime) is
    skipped rather than evicted out of LRU order.
    """
    entries = sorted(_entries(), key=lambda e: e[1])  # oldest first
    total = sum(size for _, _, size in entries) + _tmp_bytes()
    removed: List[Path] = []
    for path, mtime, size in entries:
        if total <= max_bytes:
            break
        try:
            st = path.stat()
        except OSError:
            total -= size  # vanished concurrently: no longer occupies space
            continue
        if st.st_mtime > mtime:
            continue  # touched since the scan (cache hit): not LRU anymore
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        removed.append(path)
    return removed


def stats() -> Dict[str, Any]:
    """Cache composition: per-generation entry counts/bytes + totals.

    Snapshots count as entries of the generation that owns them; writer
    temp files are reported (and included in ``total_bytes``) as
    ``tmp_bytes`` so crash orphans are visible before GC collects them.
    """
    current = code_salt()[:GENERATION_CHARS]
    root = cache_dir()
    generations: Dict[str, Dict[str, Any]] = {}
    for path, _mtime, size in _entries():
        rel = path.relative_to(root)
        name = rel.parts[0] if len(rel.parts) > 1 else "(flat)"
        gen = generations.setdefault(
            name, {"entries": 0, "bytes": 0, "current": name == current}
        )
        gen["entries"] += 1
        gen["bytes"] += size
    tmp_bytes = _tmp_bytes()
    return {
        "cache_dir": str(root),
        "current_generation": current,
        "generations": generations,
        "total_entries": sum(g["entries"] for g in generations.values()),
        "total_bytes": sum(g["bytes"] for g in generations.values())
        + tmp_bytes,
        "tmp_bytes": tmp_bytes,
        "max_bytes": cache_max_bytes(),
    }


def gc(
    max_bytes: Optional[int] = None, tmp_max_age_s: float = TMP_MAX_AGE_S
) -> Dict[str, Any]:
    """Delete orphaned generations, then apply the size bound.

    Orphans are entry directories whose name is not the current code
    salt (plus stray ``*.pkl``/``*.snap``/``*.tmp`` files at the cache
    root, left by the pre-generation layout or by crashed writers).
    ``*.tmp`` files *inside* the surviving generation — crash leftovers
    of ``store``/``store_state``'s ``mkstemp`` — are collected too once
    older than ``tmp_max_age_s``, so a writer mid-dump is never raced.
    ``max_bytes`` defaults to ``REPRO_CACHE_MAX_MB``; None skips size
    pruning.
    """
    root = cache_dir()
    current = code_salt()[:GENERATION_CHARS]
    removed_generations: List[str] = []
    removed_files = 0
    if root.is_dir():
        for child in sorted(root.iterdir()):
            if child.is_dir() and child.name != current:
                shutil.rmtree(child, ignore_errors=True)
                removed_generations.append(child.name)
            elif child.is_file() and child.suffix in (".pkl", ".snap", ".tmp"):
                try:
                    child.unlink()
                    removed_files += 1
                except OSError:
                    pass
        now = time.time()
        for tmp in root.rglob("*.tmp"):
            try:
                if now - tmp.stat().st_mtime < tmp_max_age_s:
                    continue
                tmp.unlink()
                removed_files += 1
            except OSError:
                pass
    if max_bytes is None:
        max_bytes = cache_max_bytes()
    pruned = prune(max_bytes) if max_bytes is not None else []
    return {
        "removed_generations": removed_generations,
        "removed_stray_files": removed_files,
        "pruned_entries": len(pruned),
    }


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.pointcache",
        description="Inspect or garbage-collect the persistent point cache.",
    )
    actions = parser.add_mutually_exclusive_group(required=True)
    actions.add_argument(
        "--stats", action="store_true", help="print cache composition as JSON"
    )
    actions.add_argument(
        "--gc",
        action="store_true",
        help="delete orphaned generations and apply the size bound",
    )
    parser.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="size bound for --gc (default: REPRO_CACHE_MAX_MB, else none)",
    )
    args = parser.parse_args(argv)
    if args.stats:
        print(json.dumps(stats(), indent=2, sort_keys=True))
        return 0
    max_bytes = (
        int(args.max_mb * 1024 * 1024) if args.max_mb is not None else None
    )
    print(json.dumps(gc(max_bytes=max_bytes), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
