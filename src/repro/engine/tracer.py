"""Steady-state trace-driven simulation of the request loop.

This engine produces the paper's central measurements: the per-request
memory-access breakdown (Figures 1c/2c/5c/7b) and the per-level CPU
access counts that feed the analytic throughput model.

Per serviced request the simulator executes the full data path:

1. the traffic generator tops the core's RX ring back up to its target
   backlog ``D`` (the NIC write-allocates each packet block via the
   injection policy);
2. the CPU reads the packet from the RX buffer;
3. the workload issues its application reads/writes;
4. the CPU writes the response into a TX buffer and posts a Work Queue
   entry; the NIC reads the buffer (and sweeps it, if NIC-driven TX
   sweeping is on);
5. with Sweeper enabled, the CPU relinquishes the consumed RX buffer.

Cores are serviced round-robin, which interleaves their cache footprints
the way concurrent execution would. Statistics are reset after a warmup
long enough to wrap every RX ring twice, so all measurements reflect
steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cache.hierarchy import AccessLevel
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.soa import SoaCache
from repro.core.api import Sweeper
from repro.engine.batch import build_hierarchy, resolve_engine
from repro.errors import ConfigError
from repro.mem.layout import AddressSpace, RegionKind
from repro.nic.arrivals import BacklogController, BurstProfile
from repro.nic.ddio import DdioPolicy, InjectionPolicy, make_policy
from repro.nic.qp import NicEngine, QueuePair
from repro.nic.rings import RxRing, TxRing, build_rings
from repro.obs import events as obs_events
from repro.obs.timeline import ObsContext
from repro.params import SystemConfig
from repro.sidechannel.observer import ObserverConfig, PrimeProbeObserver
from repro.traffic import MemCategory, TrafficCounter
from repro.workloads.base import Workload


@dataclass
class TraceConfig:
    """One simulation configuration (a single bar in a paper figure)."""

    system: SystemConfig
    workload: Workload
    policy: str = "ddio"
    sweeper: bool = False
    nic_tx_sweep: bool = False
    #: target RX backlog D; 1 = consume each packet promptly (§IV-B's D)
    queued_depth: int = 1
    warmup_requests: Optional[int] = None
    measure_requests: Optional[int] = None
    seed: int = 42
    #: trace engine: "object" | "batch"; None defers to ``REPRO_ENGINE``.
    #: Both engines produce bit-identical results (the equivalence suite
    #: enforces it), so the engine is provenance, not configuration — it
    #: deliberately stays out of the point-cache fingerprint.
    engine: Optional[str] = None
    #: prime+probe attacker-observer tenant (None = off, the unchanged
    #: hot path). Observer runs force the object engine — the observer
    #: pokes the LLC line-by-line between requests, which the batch
    #: engine's native context does not model — with a logged
    #: ``observer.engine_fallback`` event (DESIGN.md §12). Unlike
    #: ``engine``, the observer IS configuration: it perturbs the
    #: simulation, so it participates in the point-cache fingerprint.
    observer: Optional[ObserverConfig] = None
    #: seeded bursty-load modulation of the backlog target (None = the
    #: constant ``queued_depth`` target, the unchanged hot path). The
    #: figS* experiments need it: a constant-rate victim posts exactly
    #: one packet per request, making arrivals a deterministic function
    #: of elapsed requests — bursts are what give the observer a
    #: nontrivial arrival signal to infer. Participates in the
    #: point-cache fingerprint like ``observer``.
    burst: Optional[BurstProfile] = None
    #: DDIO way count applied at the warmup->measure boundary (None =
    #: the system-wide ``nic.ddio_ways`` throughout). This is the
    #: measure-phase knob that lets a way-mask sweep share one warmup:
    #: warmup runs with the system's mask, then the mask narrows/widens
    #: to ``range(measure_ddio_ways)`` right after the stats reset — on
    #: the snapshot and no-snapshot paths alike, so restored and
    #: re-simulated points are bit-identical by construction. Requires a
    #: DDIO-family policy (the DMA/ideal policies ignore the mask).
    measure_ddio_ways: Optional[int] = None

    def make_policy(self) -> InjectionPolicy:
        return make_policy(self.policy, self.system.nic.ddio_ways)

    def default_warmup(self) -> int:
        cores = self.system.cpu.num_cores
        ring_wraps = 2 * cores * self.system.nic.rx_buffers_per_core
        llc_fill = 2 * self.system.llc.num_blocks // max(
            self.system.nic.blocks_per_packet, 1
        )
        return max(ring_wraps, llc_fill)

    def default_measure(self) -> int:
        cores = self.system.cpu.num_cores
        return max(2 * cores * self.system.nic.rx_buffers_per_core, 4000)


@dataclass
class TraceResult:
    """Steady-state measurements, normalized per request."""

    requests: int
    traffic: TrafficCounter
    level_counts: Dict[AccessLevel, int]
    cpu_work_cycles: float
    llc_occupancy_by_kind: Dict[RegionKind, int]
    sweep_instructions: int
    nic_sweeps: int
    drops: int = 0
    #: summed CacheStats fields across every cache (field-driven; the
    #: epoch timeline's per-epoch deltas must sum exactly to these)
    cache_totals: Dict[str, int] = field(default_factory=dict)
    #: side-channel leak digest (:func:`repro.sidechannel.leak_summary`)
    #: when an observer ran; None for observer-off points.
    leak: Optional[Dict[str, object]] = None

    def per_request(self) -> Dict[MemCategory, float]:
        """Memory accesses per request by category (the figure's bars)."""
        return self.traffic.scaled(self.requests)

    def mem_accesses_per_request(self) -> float:
        return self.traffic.total() / self.requests

    def levels_per_request(self) -> Dict[AccessLevel, float]:
        return {lv: n / self.requests for lv, n in self.level_counts.items()}

    def category_per_request(self, category: MemCategory) -> float:
        return self.traffic.get(category) / self.requests


#: schema version of the warm-state blob; bump on any layout change so
#: stale snapshots degrade to misses instead of bad restores. The blob
#: is also code-salted through its fingerprint path, so this only
#: matters for hand-fed states in tests.
WARM_STATE_VERSION = 1


def _capture_cache(cache) -> Dict[str, object]:
    """Picklable copy of one cache's mutable state (stats excluded —
    they are reset at the warmup->measure boundary anyway)."""
    if isinstance(cache, SoaCache):
        return {
            "cls": "soa",
            "tags": cache.tags.copy(),
            "dirty": cache.dirty.copy(),
            "kind": cache.kind.copy(),
            "stamp": cache.stamp.copy(),
            "tick": int(cache.tick[0]),
            "lcg": int(cache.lcg[0]),
        }
    return {
        "cls": "object",
        "maps": [dict(m) for m in cache._maps],
        "tags": list(cache._tags),
        "dirty": bytes(cache._dirty),
        "kind": bytes(cache._kind),
        "lcg": cache._lcg,
    }


def _cache_state_matches(cache, st) -> bool:
    try:
        if isinstance(cache, SoaCache):
            return st["cls"] == "soa" and len(st["tags"]) == len(cache.tags)
        return (
            st["cls"] == "object"
            and len(st["maps"]) == cache.num_sets
            and len(st["tags"]) == len(cache._tags)
        )
    except (KeyError, TypeError):
        return False


def _restore_cache(cache, st) -> None:
    if isinstance(cache, SoaCache):
        # In place: the batch engine's native context holds raw pointers
        # into these arrays (see SoaCache.clear), so the buffers must
        # never be rebound.
        cache.tags[:] = st["tags"]
        cache.dirty[:] = st["dirty"]
        cache.kind[:] = st["kind"]
        cache.stamp[:] = st["stamp"]
        cache.tick[0] = st["tick"]
        cache.lcg[0] = st["lcg"]
    else:
        # Copies, not references: the state dict must stay reusable if
        # the caller restores the same in-memory blob into another sim.
        cache._maps = [dict(m) for m in st["maps"]]
        cache._tags = list(st["tags"])
        cache._dirty = bytearray(st["dirty"])
        cache._kind = bytearray(st["kind"])
        cache._lcg = st["lcg"]


class TraceSimulator:
    """Drives the per-request loop over the cache hierarchy."""

    def __init__(
        self, cfg: TraceConfig, obs: Optional[ObsContext] = None
    ) -> None:
        if cfg.queued_depth < 1:
            raise ConfigError("queued_depth must be >= 1")
        self.cfg = cfg
        self.obs = obs
        system = cfg.system
        self.space = AddressSpace()
        self.engine = resolve_engine(cfg.engine)
        # Engine seam (DESIGN.md §12): the observer probes the LLC
        # object-by-object between requests, which the batch engine's
        # native context does not model, so observer runs force the
        # object engine. Explicit and logged — never a silent downgrade.
        self.observer_engine_fallback = (
            cfg.observer is not None and self.engine == "batch"
        )
        if self.observer_engine_fallback:
            self.engine = "object"
            obs_events.get_event_log().info(
                "observer.engine_fallback",
                requested="batch",
                used="object",
                reason="prime+probe observer requires the object engine",
            )
        self.hier = build_hierarchy(system, self.engine)
        self.policy = cfg.make_policy()
        if isinstance(self.policy, DdioPolicy):
            self.policy.bind(self.hier)
        if cfg.measure_ddio_ways is not None:
            if not isinstance(self.policy, DdioPolicy):
                raise ConfigError(
                    "measure_ddio_ways requires a DDIO-family policy, "
                    f"got {cfg.policy!r}"
                )
            if not 1 <= cfg.measure_ddio_ways <= system.llc.ways:
                raise ConfigError(
                    f"measure_ddio_ways must be in 1..{system.llc.ways}, "
                    f"got {cfg.measure_ddio_ways}"
                )
        #: True when the measured window was forked off a restored
        #: warm-state snapshot instead of a simulated warmup.
        self.warm_restored = False
        self.rx_rings, self.tx_rings = build_rings(
            self.space,
            system.cpu.num_cores,
            system.nic.rx_buffers_per_core,
            system.nic.tx_buffers_per_core,
            system.nic.blocks_per_packet,
        )
        rng = np.random.default_rng(cfg.seed)
        cfg.workload.build(self.space, system.cpu.num_cores, rng=rng)
        self.sweeper = Sweeper(self.hier, enabled=cfg.sweeper)
        self.nic = NicEngine(self.hier, self.policy)
        self.qps = [
            QueuePair(qp_id=c, core=c) for c in range(system.cpu.num_cores)
        ]
        self.backlog = BacklogController(cfg.queued_depth)
        self._level_counts: Dict[AccessLevel, int] = {lv: 0 for lv in AccessLevel}
        self._cpu_work_cycles = 0.0
        self._packet_blocks = system.nic.blocks_per_packet
        # Policies are stateless, so the fixed service level per region
        # kind (ideal-DDIO's side cache) is resolved once up front.
        self._buffer_level: Dict[RegionKind, Optional[AccessLevel]] = {
            kind: self.policy.cpu_buffer_level(kind) for kind in RegionKind
        }
        # The attacker-observer tenant (None = the unchanged hot path).
        # Ground truth is pull-based: the observer reads the cumulative
        # RX-ring posted counters at probe time, so no per-arrival hook
        # touches the victim's fast path.
        self.observer: Optional[PrimeProbeObserver] = None
        if cfg.observer is not None:
            rings = self.rx_rings
            self.observer = PrimeProbeObserver(
                cfg.observer,
                self.hier,
                lambda: sum(r.posted for r in rings),
            )
        # Observability is pull-based: publishing registers collectors
        # that read the raw counters at epoch boundaries; the per-request
        # path is byte-for-byte the unobserved one.
        if obs is not None and obs.registry.enabled:
            self.hier.publish_metrics(obs.registry)
            self.nic.publish_metrics(obs.registry)
            self.sweeper.publish_metrics(obs.registry)
            if self.observer is not None:
                self.observer.publish_metrics(obs.registry)

    # ------------------------------------------------------------------
    # CPU access helpers (ideal-DDIO bypass lives here)
    # ------------------------------------------------------------------

    def _cpu_access(
        self, core: int, block: int, kind: RegionKind, write: bool
    ) -> None:
        level = self._buffer_level[kind]
        if level is None:
            level = self.hier.cpu_access(core, block, kind, write)
        self._level_counts[level] += 1

    def _cpu_access_run(
        self, core: int, start: int, n: int, kind: RegionKind, write: bool
    ) -> None:
        """Batched CPU access over ``n`` contiguous buffer blocks."""
        level = self._buffer_level[kind]
        if level is not None:
            self._level_counts[level] += n
            return
        self.hier.cpu_access_run(core, start, n, kind, write, self._level_counts)

    # ------------------------------------------------------------------
    # request loop
    # ------------------------------------------------------------------

    def _refill_ring(self, core: int) -> None:
        ring = self.rx_rings[core]
        need = self.backlog.refill(ring.backlog)
        if need <= 0:
            return
        policy_rx_write_run = self.policy.rx_write_run
        hier = self.hier
        for _ in range(need):
            slot = ring.post()
            if slot is None:
                return
            policy_rx_write_run(hier, core, ring.slot_blocks(slot))

    def service_one(self, core: int) -> None:
        """Service one request on ``core`` end to end."""
        cfg = self.cfg
        ring = self.rx_rings[core]
        self._refill_ring(core)
        slot = ring.consume()
        rx_blocks = ring.slot_blocks(slot)

        # CPU consumes the packet.
        if cfg.workload.reads_full_packet():
            self._cpu_access_run(
                core,
                rx_blocks.start,
                len(rx_blocks),
                RegionKind.RX_BUFFER,
                write=False,
            )
        else:
            self._cpu_access(
                core, rx_blocks.start, RegionKind.RX_BUFFER, write=False
            )

        # Application work.
        ops = cfg.workload.request(core)
        for block in ops.app_reads:
            self._cpu_access(core, block, RegionKind.APP, write=False)
        for start, n in ops.read_runs:
            self._cpu_access_run(core, start, n, RegionKind.APP, write=False)
        for block in ops.app_writes:
            self._cpu_access(core, block, RegionKind.APP, write=True)
        for start, n in ops.write_runs:
            self._cpu_access_run(core, start, n, RegionKind.APP, write=True)
        self._cpu_work_cycles += cfg.workload.request_cycles(
            ops, self._packet_blocks
        )

        # Transmit path.
        qp = self.qps[core]
        if ops.response_blocks > 0:
            tx_ring = self.tx_rings[core]
            tx_slot = tx_ring.acquire()
            all_blocks = tx_ring.slot_blocks(tx_slot)
            tx_blocks = range(
                all_blocks.start, all_blocks.start + ops.response_blocks
            )
            self._cpu_access_run(
                core,
                all_blocks.start,
                ops.response_blocks,
                RegionKind.TX_BUFFER,
                write=True,
            )
            qp.post_send(
                tx_blocks, sweep_buffer=cfg.sweeper and cfg.nic_tx_sweep
            )
            self.nic.process_one(qp)
        else:
            # Zero-copy receive-to-transmit (§V-D): the RX buffer itself
            # is handed to the NIC; only the NIC may sweep it.
            qp.post_send(rx_blocks, sweep_buffer=cfg.sweeper)
            self.nic.process_one(qp)

        # Relinquish the consumed RX buffer (CPU-driven Sweeper), except
        # in zero-copy mode where the NIC was the last user.
        if cfg.sweeper and ops.response_blocks > 0:
            self.sweeper.relinquish_blocks(core, rx_blocks)

    def run_requests(self, count: int, start: int = 0) -> None:
        """Service ``count`` requests; ``start`` continues the round-robin.

        The epoch sampler runs the measure phase in chunks; threading the
        global request index through keeps the request->core mapping (and
        therefore every result) bit-identical to an unchunked run.

        The observer's sampling hook lives here: probes interleave with
        victim traffic keyed on the absolute request index, so chunked
        runs probe at identical points. The burst profile likewise keys
        its backlog target off the absolute index. With neither feature
        the loop is byte-for-byte the unobserved one.
        """
        cores = self.cfg.system.cpu.num_cores
        observer = self.observer
        burst = self.cfg.burst
        if (observer is None or not observer.active) and burst is None:
            for i in range(start, start + count):
                self.service_one(i % cores)
            return
        tick = observer.tick if observer is not None and observer.active else None
        depth = burst.depth if burst is not None else None
        backlog = self.backlog
        for i in range(start, start + count):
            if depth is not None:
                backlog.target_depth = depth(i)
            if tick is not None:
                tick(i)
            self.service_one(i % cores)

    def _reset_measurements(self) -> None:
        self.hier.traffic.reset()
        for cache in self.hier.all_caches():
            cache.stats.reset()
        self._level_counts = {lv: 0 for lv in AccessLevel}
        self._cpu_work_cycles = 0.0
        self.sweeper.stats.reset()
        self.nic.nic_sweeps = 0

    # ------------------------------------------------------------------
    # warm-state snapshots (DESIGN.md §14)
    # ------------------------------------------------------------------

    def capture_warm_state(self) -> Optional[Dict[str, object]]:
        """Picklable end-of-warmup state, or None when not capturable.

        Everything reset at the warmup->measure boundary (traffic,
        cache/sweeper stats, level counts, CPU cycles, NIC sweep count)
        is deliberately excluded. QueuePair completion queues are too:
        they accumulate one entry per request, nothing ever reads them,
        and carrying them would bloat every snapshot — the restored
        sim's empty CQ is observably identical. Subclasses (collocation,
        dynamic ways) carry extra state this blob does not model, so
        only the base simulator captures.
        """
        if type(self) is not TraceSimulator or self.observer is not None:
            return None
        if any(qp.wq for qp in self.qps):
            return None  # not at a request boundary
        hier = self.hier
        return {
            "version": WARM_STATE_VERSION,
            "engine": self.engine,
            "caches": [
                _capture_cache(c) for c in (*hier.l1s, *hier.l2s, hier.llc)
            ],
            "ddio_way_mask": tuple(hier.ddio_way_mask),
            "core_fill_masks": list(hier._core_fill_masks),
            "rx": [(r.head, r.tail, r.drops, r.posted) for r in self.rx_rings],
            "tx": [t._next for t in self.tx_rings],
            "nic_transmissions": self.nic.transmissions,
            "backlog_target": self.backlog.target_depth,
            "workload": self.cfg.workload,
            "policy": self.policy,
        }

    def restore_warm_state(self, state) -> bool:
        """Adopt a captured warm state; True on success.

        All-or-nothing: every field is validated against this
        simulator's geometry *before* anything is mutated, because a
        partial restore followed by a fallback warmup would corrupt the
        bit-identity contract. The caller owns ``state`` (freshly
        unpickled on the production path); workload/policy internals
        are adopted by reference.
        """
        if type(self) is not TraceSimulator or self.observer is not None:
            return False
        if not isinstance(state, dict):
            return False
        if state.get("version") != WARM_STATE_VERSION:
            return False
        if state.get("engine") != self.engine:
            return False
        hier = self.hier
        caches = (*hier.l1s, *hier.l2s, hier.llc)
        try:
            saved = state["caches"]
            if len(saved) != len(caches):
                return False
            if not all(
                _cache_state_matches(c, s) for c, s in zip(caches, saved)
            ):
                return False
            mask = tuple(state["ddio_way_mask"])
            if any(w < 0 or w >= hier.llc.ways for w in mask):
                return False
            fills = list(state["core_fill_masks"])
            if len(fills) != len(hier._core_fill_masks):
                return False
            rx, tx = state["rx"], state["tx"]
            if len(rx) != len(self.rx_rings) or len(tx) != len(self.tx_rings):
                return False
            workload, policy = state["workload"], state["policy"]
            if type(workload) is not type(self.cfg.workload):
                return False
            if type(policy) is not type(self.policy):
                return False
            transmissions = int(state["nic_transmissions"])
            backlog_target = int(state["backlog_target"])
        except (KeyError, TypeError, ValueError):
            return False
        for cache, st in zip(caches, saved):
            _restore_cache(cache, st)
        hier.ddio_way_mask = mask
        hier._core_fill_masks = [
            None if m is None else tuple(m) for m in fills
        ]
        for ring, (head, tail, drops, posted) in zip(self.rx_rings, rx):
            ring.head, ring.tail = head, tail
            ring.drops, ring.posted = drops, posted
        for ring, nxt in zip(self.tx_rings, tx):
            ring._next = nxt
        self.nic.transmissions = transmissions
        self.backlog.target_depth = backlog_target
        # Swap internals in place so every existing reference (the
        # spec's workload object, nic.policy) sees the restored state.
        self.cfg.workload.__dict__.clear()
        self.cfg.workload.__dict__.update(workload.__dict__)
        self.policy.__dict__.clear()
        self.policy.__dict__.update(policy.__dict__)
        return True

    def _apply_measure_overrides(self) -> None:
        """Measure-phase config deltas, applied right after the stats
        reset on the snapshot and no-snapshot paths alike (bit-identity
        by construction). Currently just the DDIO way mask."""
        ways = self.cfg.measure_ddio_ways
        if ways is not None:
            self.hier.set_ddio_way_mask(range(ways))

    def run(self, warm_state=None, on_warm=None) -> TraceResult:
        """Warm up, measure, and return per-request statistics.

        ``warm_state`` (a :meth:`capture_warm_state` blob, typically
        unpickled by :mod:`repro.engine.snapshot`) replaces the warmup
        when it restores cleanly; a mismatch falls back to a normal
        warmup — the caller observes which via ``self.warm_restored``.
        ``on_warm`` is called with the freshly captured state after a
        simulated warmup (never after a restore); capture/callback
        failures are logged, not raised — snapshots are an optimization
        and must never fail a point.
        """
        cfg = self.cfg
        warmup = (
            cfg.warmup_requests
            if cfg.warmup_requests is not None
            else cfg.default_warmup()
        )
        measure = (
            cfg.measure_requests
            if cfg.measure_requests is not None
            else cfg.default_measure()
        )
        if measure <= 0:
            raise ConfigError("measure_requests must be positive")
        self.warm_restored = (
            warm_state is not None and self.restore_warm_state(warm_state)
        )
        if not self.warm_restored:
            self.run_requests(warmup)
            if on_warm is not None:
                try:
                    state = self.capture_warm_state()
                    if state is not None:
                        on_warm(state)
                except Exception as exc:
                    obs_events.get_event_log().warning(
                        "snapshot.capture_failed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
        self._reset_measurements()
        self._apply_measure_overrides()
        if self.observer is not None:
            # Prime after the stats reset so the attacker observes only
            # the measure phase; the arrival baseline is taken here too.
            self.observer.activate(self.space, start_index=0)
        self._run_measure(measure)
        return TraceResult(
            requests=measure,
            # Snapshot, not the live counter: a reused/continued simulator
            # must not mutate an already-returned result.
            traffic=TrafficCounter(self.hier.traffic.snapshot()),
            level_counts=dict(self._level_counts),
            cpu_work_cycles=self._cpu_work_cycles / measure,
            llc_occupancy_by_kind=self.hier.llc.occupancy_by_kind(),
            sweep_instructions=self.sweeper.stats.clsweep_instructions,
            nic_sweeps=self.nic.nic_sweeps,
            drops=sum(r.drops for r in self.rx_rings),
            cache_totals=self.hier.stats_totals(),
            leak=(
                self.observer.leak_summary(self.engine)
                if self.observer is not None
                else None
            ),
        )

    def _run_measure(self, measure: int) -> None:
        """Measure phase, optionally chunked at epoch boundaries.

        Without an epoch sampler this is one plain ``run_requests`` call
        (the unchanged hot path). With ``REPRO_EPOCH`` the same requests
        run in epoch-sized chunks and the registry is sampled between
        chunks; the final short epoch is always sampled so per-epoch
        counter deltas sum exactly to the end-of-run aggregates.
        """
        obs = self.obs
        if obs is None or not obs.epoch_requests:
            self.run_requests(measure)
            return
        sampler = obs.sampler
        sampler.baseline()
        epoch = obs.epoch_requests
        done = 0
        while done < measure:
            chunk = min(epoch, measure - done)
            self.run_requests(chunk, start=done)
            done += chunk
            sampler.sample(done)


@dataclass
class CollocationResult:
    """Measurements for the network tenant + X-Mem tenant pair (§VI-E)."""

    nf_result: TraceResult
    xmem_accesses: int
    xmem_level_counts: Dict[AccessLevel, int] = field(default_factory=dict)

    def xmem_levels_per_access(self) -> Dict[AccessLevel, float]:
        return {
            lv: n / self.xmem_accesses for lv, n in self.xmem_level_counts.items()
        }


class CollocationSimulator(TraceSimulator):
    """L3fwd on half the cores, X-Mem on the other half (§VI-E).

    ``ddio_ways_mask`` and ``xmem_ways_mask`` implement the two
    partitioning scenarios of Figure 9: disjoint partitions (A, B) or
    overlapping ones (X-Mem over the whole LLC).
    """

    def __init__(
        self,
        cfg: TraceConfig,
        xmem_workload,
        xmem_cores: List[int],
        xmem_ways_mask: Optional[List[int]] = None,
        xmem_accesses_per_request: int = 24,
    ) -> None:
        super().__init__(cfg)
        self.xmem = xmem_workload
        self.xmem_cores = list(xmem_cores)
        self.nf_cores = [
            c
            for c in range(cfg.system.cpu.num_cores)
            if c not in set(xmem_cores)
        ]
        if not self.nf_cores:
            raise ConfigError("collocation needs at least one NF core")
        self.xmem.build(self.space, self.xmem_cores, rng=np.random.default_rng(29))
        if xmem_ways_mask is not None:
            for core in self.xmem_cores:
                self.hier.set_core_fill_mask(core, xmem_ways_mask)
        self.xmem_accesses_per_request = xmem_accesses_per_request
        self._xmem_levels: Dict[AccessLevel, int] = {lv: 0 for lv in AccessLevel}
        self._xmem_total = 0

    def _xmem_tick(self, core: int) -> None:
        blocks, writes = self.xmem.accesses(core, self.xmem_accesses_per_request)
        self._xmem_total += self.hier.cpu_access_batch(
            core, blocks, writes, RegionKind.APP, self._xmem_levels
        )

    def run_requests(self, count: int, start: int = 0) -> None:
        """Interleave one X-Mem burst with one NF request per tick.

        X-Mem runs *before* the NF request so that a relinquish at the
        end of one request is immediately followed by the next request's
        NIC refill — matching continuous packet arrival, where the NIC
        (not a collocated tenant) consumes the slots a sweep invalidates.
        """
        n_nf = len(self.nf_cores)
        n_xm = len(self.xmem_cores)
        observer = self.observer
        burst = self.cfg.burst
        if (observer is None or not observer.active) and burst is None:
            for i in range(start, start + count):
                self._xmem_tick(self.xmem_cores[i % n_xm])
                self.service_one(self.nf_cores[i % n_nf])
            return
        tick = observer.tick if observer is not None and observer.active else None
        depth = burst.depth if burst is not None else None
        backlog = self.backlog
        for i in range(start, start + count):
            if depth is not None:
                backlog.target_depth = depth(i)
            if tick is not None:
                tick(i)
            self._xmem_tick(self.xmem_cores[i % n_xm])
            self.service_one(self.nf_cores[i % n_nf])

    def _reset_measurements(self) -> None:
        super()._reset_measurements()
        self._xmem_levels = {lv: 0 for lv in AccessLevel}
        self._xmem_total = 0

    def run_collocated(self) -> CollocationResult:
        nf_result = self.run()
        return CollocationResult(
            nf_result=nf_result,
            xmem_accesses=self._xmem_total,
            xmem_level_counts=dict(self._xmem_levels),
        )
