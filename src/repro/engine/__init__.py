"""Simulation engines: trace-driven cache layer, analytic solver, events."""

from repro.engine.tracer import CollocationResult, TraceConfig, TraceResult, TraceSimulator
from repro.engine.analytic import (
    PerfPoint,
    ServiceProfile,
    perf_at_load,
    solve_peak_throughput,
    xmem_ipc,
)
from repro.engine.events import DropSimResult, FiniteRingSimulator
from repro.engine.dynamic import DynamicWaysSimulator

__all__ = [
    "CollocationResult",
    "DropSimResult",
    "DynamicWaysSimulator",
    "FiniteRingSimulator",
    "PerfPoint",
    "ServiceProfile",
    "TraceConfig",
    "TraceResult",
    "TraceSimulator",
    "perf_at_load",
    "solve_peak_throughput",
    "xmem_ipc",
]
