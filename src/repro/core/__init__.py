"""Sweeper: the paper's contribution (relinquish API, clsweep, guards)."""

from repro.core.api import Sweeper, SweepStats
from repro.core.pageguard import (
    FunctionalCache,
    FunctionalMemory,
    OsPageManager,
    ZeroingMethod,
)

__all__ = [
    "FunctionalCache",
    "FunctionalMemory",
    "OsPageManager",
    "Sweeper",
    "SweepStats",
    "ZeroingMethod",
]
