"""OS page-recycling privacy model (§V-B "Correctness and security").

The paper's shepherd-prompted concern: the OS zeroes a page before
handing it to a new process, but if the zeroed blocks are only *cached*,
the new owner can clsweep them — dropping the cached zeros without
writeback — and then read the previous owner's stale values from DRAM.

This module is a small *functional* (value-carrying) model, separate
from the performance simulator, used to demonstrate the breach and both
mitigations the paper proposes:

* zero pages via a conventional non-DDIO DMA that writes DRAM directly;
* or zero through the cache but CLWB every block afterwards, enforced
  (as the paper suggests) only for processes that requested clsweep
  permission via the dedicated syscall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Set

from repro.errors import ConfigError, SweepPermissionError


class ZeroingMethod(Enum):
    """How the OS writes zeros when reclaiming a page."""

    DMA_TO_MEMORY = "dma"
    CACHED = "cached"
    CACHED_CLWB = "cached+clwb"


class FunctionalMemory:
    """Block-granularity DRAM holding actual values."""

    def __init__(self) -> None:
        self._data: Dict[int, int] = {}

    def read(self, block: int) -> int:
        return self._data.get(block, 0)

    def write(self, block: int, value: int) -> None:
        self._data[block] = value


@dataclass
class _CachedLine:
    value: int
    dirty: bool


class FunctionalCache:
    """Infinite write-back cache over :class:`FunctionalMemory`.

    Capacity effects are irrelevant to the privacy argument, so no
    evictions occur unless explicitly requested.
    """

    def __init__(self, memory: FunctionalMemory) -> None:
        self.memory = memory
        self._lines: Dict[int, _CachedLine] = {}

    def read(self, block: int) -> int:
        line = self._lines.get(block)
        if line is not None:
            return line.value
        value = self.memory.read(block)
        self._lines[block] = _CachedLine(value=value, dirty=False)
        return value

    def write(self, block: int, value: int) -> None:
        self._lines[block] = _CachedLine(value=value, dirty=True)

    def clwb(self, block: int) -> None:
        """Write back if dirty; the line stays cached clean."""
        line = self._lines.get(block)
        if line is not None and line.dirty:
            self.memory.write(block, line.value)
            line.dirty = False

    def clflush(self, block: int) -> None:
        """Write back if dirty, then invalidate."""
        self.clwb(block)
        self._lines.pop(block, None)

    def clsweep(self, block: int) -> None:
        """Invalidate WITHOUT writeback — dirty data is lost."""
        self._lines.pop(block, None)

    def is_cached(self, block: int) -> bool:
        return block in self._lines

    def is_dirty(self, block: int) -> bool:
        line = self._lines.get(block)
        return line is not None and line.dirty


@dataclass
class _Page:
    start_block: int
    num_blocks: int
    owner: Optional[int] = None


@dataclass
class OsPageManager:
    """Page ownership, zero-on-reclaim, and the clsweep permission bit."""

    cache: FunctionalCache
    blocks_per_page: int = 64
    pages: Dict[int, _Page] = field(default_factory=dict)
    _clsweep_processes: Set[int] = field(default_factory=set)

    def create_page(self, page_id: int, owner: int) -> None:
        if page_id in self.pages:
            raise ConfigError(f"page {page_id} already exists")
        self.pages[page_id] = _Page(
            start_block=page_id * self.blocks_per_page,
            num_blocks=self.blocks_per_page,
            owner=owner,
        )

    def request_clsweep_permission(self, pid: int) -> None:
        """The new syscall: mark the process as a clsweep user."""
        self._clsweep_processes.add(pid)

    def has_clsweep_permission(self, pid: int) -> bool:
        return pid in self._clsweep_processes

    def _blocks(self, page_id: int) -> range:
        page = self.pages[page_id]
        return range(page.start_block, page.start_block + page.num_blocks)

    def _check_owner(self, pid: int, page_id: int) -> None:
        page = self.pages.get(page_id)
        if page is None:
            raise ConfigError(f"no page {page_id}")
        if page.owner != pid:
            raise ConfigError(f"process {pid} does not own page {page_id}")

    # ------------------------------------------------------------------
    # process-side accesses
    # ------------------------------------------------------------------

    def process_write(self, pid: int, page_id: int, offset: int, value: int) -> None:
        self._check_owner(pid, page_id)
        self.cache.write(self.pages[page_id].start_block + offset, value)

    def process_read(self, pid: int, page_id: int, offset: int) -> int:
        self._check_owner(pid, page_id)
        return self.cache.read(self.pages[page_id].start_block + offset)

    def process_clsweep(self, pid: int, page_id: int, offset: int) -> None:
        self._check_owner(pid, page_id)
        if pid not in self._clsweep_processes:
            raise SweepPermissionError(
                f"process {pid} never requested clsweep permission"
            )
        self.cache.clsweep(self.pages[page_id].start_block + offset)

    # ------------------------------------------------------------------
    # OS-side reclamation
    # ------------------------------------------------------------------

    def reclaim_page(
        self,
        page_id: int,
        new_owner: int,
        method: ZeroingMethod = ZeroingMethod.CACHED_CLWB,
    ) -> None:
        """Zero the page and transfer ownership.

        ``CACHED`` zeroing without CLWB is the vulnerable configuration;
        it is allowed here (so tests can demonstrate the breach) but a
        hardened kernel would select CLWB whenever the *new* owner has
        clsweep permission.
        """
        if page_id not in self.pages:
            raise ConfigError(f"no page {page_id}")
        for block in self._blocks(page_id):
            if method is ZeroingMethod.DMA_TO_MEMORY:
                # Conventional DMA writes DRAM directly and invalidates
                # cached copies; stale cache data cannot survive.
                self.cache.clsweep(block)
                self.cache.memory.write(block, 0)
            else:
                self.cache.write(block, 0)
                if method is ZeroingMethod.CACHED_CLWB:
                    self.cache.clwb(block)
        self.pages[page_id].owner = new_owner

    def safe_method_for(self, new_owner: int) -> ZeroingMethod:
        """Kernel policy: CLWB only when the new owner can clsweep."""
        if self.has_clsweep_permission(new_owner):
            return ZeroingMethod.CACHED_CLWB
        return ZeroingMethod.CACHED
