"""Sweeper's software interface (§V-A) and ISA extension (§V-B).

The application-facing call is ``relinquish(buffer_address, size)``: the
software declares that a network buffer instance has been conclusively
used and its contents may be lost. The call compiles to one ``clsweep``
per cache block; each clsweep injects a sweep message that invalidates
every copy of the block in the hierarchy *without writing dirty data
back* — the writeback the paper shows to be pure waste.

Correctness contract (mirrors the paper): reading a buffer after
relinquishing it is undefined behaviour, like touching freed memory; a
networking library must relinquish before recycling the buffer for NIC
reuse. The unprivileged instruction is gated behind a one-time
permission syscall (see :mod:`repro.core.pageguard` for the privacy
rationale), modeled by :meth:`Sweeper.grant_permission`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hierarchy import CacheHierarchy
from repro.errors import ConfigError, SweepPermissionError
from repro.params import CACHE_BLOCK_BYTES


@dataclass
class SweepStats:
    """Counters for Sweeper activity."""

    relinquish_calls: int = 0
    clsweep_instructions: int = 0
    lines_dropped: int = 0

    def as_dict(self) -> dict:
        import dataclasses

        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    def reset(self) -> None:
        import dataclasses

        for f in dataclasses.fields(self):
            setattr(self, f.name, f.default)


class Sweeper:
    """The relinquish/clsweep mechanism bound to a cache hierarchy.

    ``enabled=False`` builds a no-op Sweeper so experiment code can run
    identical request loops for baseline and Sweeper configurations.
    """

    def __init__(
        self,
        hier: CacheHierarchy,
        enabled: bool = True,
        require_permission: bool = False,
    ) -> None:
        self.hier = hier
        self.enabled = enabled
        self.require_permission = require_permission
        self._permission_granted = not require_permission
        self.stats = SweepStats()

    def publish_metrics(self, registry) -> None:
        """Publish relinquish/clsweep counters via a pull collector."""
        family = registry.counter(
            "sweeper_events_total",
            "Sweeper activity (relinquish calls, clsweeps, lines dropped)",
            labels=("event",),
        )

        def collect(_registry, sweeper=self) -> None:
            for event, value in sweeper.stats.as_dict().items():
                family.labels(event=event).set_total(value)

        registry.register_collector(collect)

    def grant_permission(self) -> None:
        """The process's one-time clsweep-permission syscall (§V-B)."""
        self._permission_granted = True

    @property
    def permission_granted(self) -> bool:
        return self._permission_granted

    # ------------------------------------------------------------------
    # the API
    # ------------------------------------------------------------------

    def clsweep(self, core: int, block: int) -> int:
        """Execute one clsweep instruction; returns cache copies dropped."""
        if not self.enabled:
            return 0
        if not self._permission_granted:
            raise SweepPermissionError(
                "clsweep used without the clsweep-permission syscall"
            )
        self.stats.clsweep_instructions += 1
        dropped = self.hier.sweep_block(core, block)
        self.stats.lines_dropped += dropped
        return dropped

    def relinquish(self, core: int, address: int, size: int) -> int:
        """Relinquish ``size`` bytes at ``address`` on behalf of ``core``.

        Returns the number of clsweep instructions issued (one per cache
        block overlapping the range). A no-op when Sweeper is disabled.
        """
        if size <= 0:
            raise ConfigError("relinquish size must be positive")
        if address < 0:
            raise ConfigError("relinquish address must be non-negative")
        if not self.enabled:
            return 0
        self.stats.relinquish_calls += 1
        first = address // CACHE_BLOCK_BYTES
        last = (address + size - 1) // CACHE_BLOCK_BYTES
        for block in range(first, last + 1):
            self.clsweep(core, block)
        return last - first + 1

    def relinquish_blocks(self, core: int, blocks: "range") -> int:
        """Relinquish a pre-computed block range (hot-path variant).

        Semantically one clsweep per block, but executed through the
        hierarchy's batched sweep path.
        """
        if not self.enabled:
            return 0
        if not self._permission_granted:
            raise SweepPermissionError(
                "clsweep used without the clsweep-permission syscall"
            )
        count = len(blocks)
        stats = self.stats
        stats.relinquish_calls += 1
        stats.clsweep_instructions += count
        stats.lines_dropped += self.hier.sweep_run(core, blocks)
        return count
