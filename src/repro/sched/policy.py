"""Pluggable queuing policies: ``fifo | priority | wfq``.

One :class:`PolicyQueue` implementation orders all deferred work in the
system, whatever the granularity: the serve scheduler queues *jobs*,
the sharded cluster coordinator queues *points*, and the local
``run_points`` dispatcher queues *spec indices*. ``REPRO_SCHED_POLICY``
selects the engine everywhere (constructors also take it explicitly):

* ``fifo`` — strict arrival order, tenants and priorities ignored.
* ``priority`` — higher ``priority`` first, FIFO within a priority.
  This is the historical serve behavior and remains the default.
* ``wfq`` — weighted fair queuing across tenants by virtual finish
  time. Each pushed item is stamped
  ``vft = max(V, last_vft[tenant]) + cost / weight(tenant)`` where
  ``V`` is the virtual time of the last pop; popping in ``vft`` order
  gives every backlogged tenant service proportional to its weight
  regardless of arrival pattern, and an idle tenant's unused share is
  redistributed instead of banked (``max`` with ``V`` forbids saving
  up credit while idle).

Policies are deliberately not thread-safe: every caller already owns a
lock around its queue (scheduler lock, shard lock, the single-threaded
dispatch loop), and keeping the policy lock-free keeps lock ordering
trivial.
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sched.tenants import DEFAULT_TENANT, TenantTable

#: every selectable policy name.
POLICIES = ("fifo", "priority", "wfq")
#: the historical serve-scheduler behavior; unchanged by default.
DEFAULT_POLICY = "priority"

#: process-wide arrival counter used as the FIFO tiebreak in every
#: queue. Shared (rather than per-instance) so :meth:`peek_key` values
#: from different shards of one sharded consumer compare by true global
#: arrival order, not per-shard arrival order.
_ARRIVALS = itertools.count(1)


def sched_policy() -> str:
    """Policy name from ``REPRO_SCHED_POLICY`` (default ``priority``)."""
    raw = os.environ.get("REPRO_SCHED_POLICY", "").strip()
    if not raw:
        return DEFAULT_POLICY
    if raw not in POLICIES:
        raise ConfigError(
            f"REPRO_SCHED_POLICY must be one of {POLICIES}, got {raw!r}"
        )
    return raw


class PolicyQueue:
    """Common queue interface; subclasses define the pop order."""

    name = "?"

    def push(
        self,
        item: Any,
        tenant: str = DEFAULT_TENANT,
        cost: float = 1.0,
        priority: int = 0,
    ) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[Any]:
        """Next item by policy order, or None when empty."""
        raise NotImplementedError

    def peek_key(self) -> Optional[Tuple]:
        """Sort key of the next item, or None when empty.

        Keys are comparable across queues of the same policy class, so
        a sharded consumer (the cluster coordinator) can pick the
        globally next item by comparing every shard's head.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def tenants_queued(self) -> Dict[str, int]:
        """Queued-item counts by tenant (introspection / stats)."""
        raise NotImplementedError


class FifoQueue(PolicyQueue):
    name = "fifo"

    def __init__(self) -> None:
        self._items: Deque[Tuple[int, str, Any]] = deque()

    def push(self, item, tenant=DEFAULT_TENANT, cost=1.0, priority=0) -> None:
        self._items.append((next(_ARRIVALS), tenant, item))

    def pop(self):
        if not self._items:
            return None
        return self._items.popleft()[2]

    def peek_key(self):
        if not self._items:
            return None
        return (self._items[0][0],)

    def __len__(self) -> int:
        return len(self._items)

    def tenants_queued(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _seq, tenant, _item in self._items:
            out[tenant] = out.get(tenant, 0) + 1
        return out


class PriorityHeapQueue(PolicyQueue):
    """Higher priority first, FIFO within a priority (heap ``(-prio, seq)``)."""

    name = "priority"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, str, Any]] = []

    def push(self, item, tenant=DEFAULT_TENANT, cost=1.0, priority=0) -> None:
        heapq.heappush(self._heap, (-priority, next(_ARRIVALS), tenant, item))

    def pop(self):
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[3]

    def peek_key(self):
        if not self._heap:
            return None
        return self._heap[0][:2]

    def __len__(self) -> int:
        return len(self._heap)

    def tenants_queued(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _prio, _seq, tenant, _item in self._heap:
            out[tenant] = out.get(tenant, 0) + 1
        return out


class WfqQueue(PolicyQueue):
    """Weighted fair queuing by virtual finish time (see module doc)."""

    name = "wfq"

    def __init__(self, tenants: Optional[TenantTable] = None) -> None:
        self.tenants = tenants if tenants is not None else TenantTable()
        self._heap: List[Tuple[float, int, str, Any]] = []
        self._vtime = 0.0
        self._last_vft: Dict[str, float] = {}

    def push(self, item, tenant=DEFAULT_TENANT, cost=1.0, priority=0) -> None:
        weight = self.tenants.weight(tenant)
        start = max(self._vtime, self._last_vft.get(tenant, 0.0))
        vft = start + max(cost, 1e-9) / weight
        self._last_vft[tenant] = vft
        heapq.heappush(self._heap, (vft, next(_ARRIVALS), tenant, item))

    def pop(self):
        if not self._heap:
            return None
        vft, _seq, _tenant, item = heapq.heappop(self._heap)
        self._vtime = vft
        return item

    def peek_key(self):
        if not self._heap:
            return None
        return self._heap[0][:2]

    def __len__(self) -> int:
        return len(self._heap)

    def tenants_queued(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for _vft, _seq, tenant, _item in self._heap:
            out[tenant] = out.get(tenant, 0) + 1
        return out


_POLICY_CLASSES = {
    "fifo": FifoQueue,
    "priority": PriorityHeapQueue,
    "wfq": WfqQueue,
}


def make_policy(
    name: Optional[str] = None, tenants: Optional[TenantTable] = None
) -> PolicyQueue:
    """Build a policy queue; ``name=None`` reads ``REPRO_SCHED_POLICY``."""
    name = sched_policy() if name is None else name
    cls = _POLICY_CLASSES.get(name)
    if cls is None:
        raise ConfigError(
            f"scheduling policy must be one of {POLICIES}, got {name!r}"
        )
    if cls is WfqQueue:
        return WfqQueue(tenants)
    return cls()
