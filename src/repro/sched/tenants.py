"""Tenant identity, weights, quotas, and rate limits.

A *tenant* is the unit of fairness and admission: every job carries one
(``"default"`` unless the client says otherwise), and ``REPRO_TENANTS``
configures how the fleet treats each::

    REPRO_TENANTS="alice:weight=3,quota=16,rate=10;bob:weight=1"

Semicolons separate tenants; each tenant is ``name`` or
``name:knob=value,...`` with knobs:

* ``weight`` — WFQ share (float > 0, default 1). A weight-3 tenant
  gets 3× the service of a weight-1 tenant while both are backlogged.
* ``quota`` — max jobs *queued* at once (int >= 1). Exceeding it is a
  per-tenant 429 naming the tenant, its quota, and current usage —
  one tenant's backlog can no longer consume the global queue. When
  unset, the scheduler's ``queue_limit`` applies per tenant, which for
  a single-tenant deployment reproduces the old global bound exactly.
* ``rate`` — admission rate limit in jobs/second (float > 0, token
  bucket with ``burst`` capacity, default burst = ceil(rate)).
* ``burst`` — token-bucket depth for ``rate`` (int >= 1).

Unlisted tenants get the defaults (weight 1, quota = queue limit, no
rate limit) — configuration is an override, not an allow-list; the
fleet remains one trust domain (DESIGN.md §10).
"""

from __future__ import annotations

import math
import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.obs.metrics import NULL_INSTRUMENT

#: the tenant every unlabelled submission belongs to.
DEFAULT_TENANT = "default"

#: accepted tenant names: short, metric-label and log safe.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: overflow bucket used once the per-tenant metric families hit the
#: registry's label-cardinality cap (see :func:`guarded_labels`).
OVERFLOW_TENANT = "_overflow"


def validate_tenant(name: Any) -> str:
    """Return ``name`` if it is a well-formed tenant id, else raise."""
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise ConfigError(
            f"tenant must match {_TENANT_RE.pattern} (got {name!r})"
        )
    return name


@dataclass(frozen=True)
class TenantConfig:
    """Scheduling knobs for one tenant (absent knobs mean defaults)."""

    name: str
    weight: float = 1.0
    quota: Optional[int] = None
    rate: Optional[float] = None
    burst: Optional[int] = None


def _parse_knobs(name: str, text: str) -> TenantConfig:
    weight, quota, rate, burst = 1.0, None, None, None
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, sep, raw = part.partition("=")
        if not sep:
            raise ConfigError(
                f"REPRO_TENANTS: tenant {name!r}: expected knob=value, "
                f"got {part!r}"
            )
        try:
            if key == "weight":
                weight = float(raw)
                if not weight > 0:
                    raise ValueError
            elif key == "quota":
                quota = int(raw)
                if quota < 1:
                    raise ValueError
            elif key == "rate":
                rate = float(raw)
                if not rate > 0:
                    raise ValueError
            elif key == "burst":
                burst = int(raw)
                if burst < 1:
                    raise ValueError
            else:
                raise ConfigError(
                    f"REPRO_TENANTS: tenant {name!r}: unknown knob {key!r}; "
                    "allowed: weight, quota, rate, burst"
                )
        except (TypeError, ValueError):
            raise ConfigError(
                f"REPRO_TENANTS: tenant {name!r}: bad {key} {raw!r} "
                "(weight/rate: number > 0; quota/burst: integer >= 1)"
            )
    return TenantConfig(name, weight=weight, quota=quota, rate=rate, burst=burst)


class TenantTable:
    """Per-tenant configuration with defaulting for unlisted tenants."""

    def __init__(
        self,
        configs: Optional[Dict[str, TenantConfig]] = None,
        default_quota: Optional[int] = None,
    ) -> None:
        self.configs: Dict[str, TenantConfig] = dict(configs or {})
        self.default_quota = default_quota

    @classmethod
    def from_env(cls, default_quota: Optional[int] = None) -> "TenantTable":
        """Parse ``REPRO_TENANTS`` (empty/unset -> everything defaults)."""
        raw = os.environ.get("REPRO_TENANTS", "").strip()
        configs: Dict[str, TenantConfig] = {}
        for chunk in filter(None, (c.strip() for c in raw.split(";"))):
            name, _sep, knobs = chunk.partition(":")
            name = validate_tenant(name.strip())
            if name in configs:
                raise ConfigError(
                    f"REPRO_TENANTS: tenant {name!r} configured twice"
                )
            configs[name] = _parse_knobs(name, knobs)
        return cls(configs, default_quota=default_quota)

    def get(self, name: str) -> TenantConfig:
        config = self.configs.get(name)
        if config is None:
            config = TenantConfig(name, quota=self.default_quota)
        elif config.quota is None and self.default_quota is not None:
            config = TenantConfig(
                name,
                weight=config.weight,
                quota=self.default_quota,
                rate=config.rate,
                burst=config.burst,
            )
        return config

    def weight(self, name: str) -> float:
        return self.get(name).weight

    def names(self):
        return sorted(self.configs)


class TokenBucket:
    """Thread-safe token bucket for per-tenant admission rate limits."""

    def __init__(
        self, rate: float, burst: Optional[int] = None, clock=time.monotonic
    ) -> None:
        if not rate > 0:
            raise ConfigError(f"rate must be > 0, got {rate!r}")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1, math.ceil(rate)))
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def allow(self, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if available; False means rate-limited."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens < cost:
                return False
            self._tokens -= cost
            return True


def guarded_labels(family, **labels):
    """``family.labels(...)`` that degrades instead of crashing at the cap.

    Tenant names are client-controlled, so the per-tenant metric
    families are the one place an unbounded label could leak into the
    registry. Past the cardinality cap this folds new tenants into one
    ``_overflow`` series (so totals stay right). The overflow series is
    reserved on the *first* guarded call, while there is still room —
    a fold target created lazily at the cap would itself be over the
    cap. If even the reservation failed (cap already full of other
    values) the caller gets the shared null instrument — metrics
    degrade, requests never 500.
    """
    overflow = {k: OVERFLOW_TENANT for k in labels}
    try:
        family.labels(**overflow)
    except ConfigError:
        pass
    try:
        return family.labels(**labels)
    except ConfigError:
        try:
            return family.labels(**overflow)
        except ConfigError:
            return NULL_INSTRUMENT
