"""Percentile-based straggler detection for speculative re-leasing.

The cluster's lease TTL only catches *dead* workers (missed
heartbeats). A worker that is alive but slow — overloaded host, cold
cache, one pathological point — holds its lease until completion while
the rest of the fleet idles. Because every simulation is bit-identical
regardless of which worker runs it, the coordinator can instead
*speculate*: re-enqueue a duplicate of a straggling point for the next
idle worker and let the first upload win (DESIGN.md §15).

"Straggling" is defined against observed behavior, not a constant: the
coordinator records the duration of every completed lease's points in a
:class:`DurationTracker`, and a leased point becomes a speculation
candidate once its age exceeds ``percentile(p) × factor`` (floored by
``min_delay_s``). Until ``min_samples`` durations exist there is no
baseline and nothing speculates.

Knobs (all read once at coordinator construction):

* ``REPRO_SCHED_SPECULATE`` — ``0`` disables speculation (default on);
* ``REPRO_SCHED_SPEC_PCTL`` — the percentile (default 95);
* ``REPRO_SCHED_SPEC_FACTOR`` — delay multiplier (default 3.0);
* ``REPRO_SCHED_SPEC_MIN_S`` — delay floor in seconds (default 1.0).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import ConfigError

DEFAULT_PCTL = 95.0
DEFAULT_FACTOR = 3.0
DEFAULT_MIN_DELAY_S = 1.0
#: completed durations required before anything may speculate.
MIN_SAMPLES = 3
#: sliding window of durations kept (recent behavior beats history).
SAMPLE_WINDOW = 512


def _env_float(env: str, default: float, lo: float, hi: float) -> float:
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"{env} must be a number, got {raw!r}")
    if not (lo <= value <= hi):
        raise ConfigError(f"{env} must be in [{lo}, {hi}], got {value}")
    return value


@dataclass(frozen=True)
class SpeculationConfig:
    """Straggler-detection knobs (see module doc)."""

    enabled: bool = True
    pctl: float = DEFAULT_PCTL
    factor: float = DEFAULT_FACTOR
    min_delay_s: float = DEFAULT_MIN_DELAY_S
    min_samples: int = MIN_SAMPLES

    @classmethod
    def from_env(cls) -> "SpeculationConfig":
        return cls(
            enabled=os.environ.get("REPRO_SCHED_SPECULATE", "").strip() != "0",
            pctl=_env_float("REPRO_SCHED_SPEC_PCTL", DEFAULT_PCTL, 1.0, 100.0),
            factor=_env_float(
                "REPRO_SCHED_SPEC_FACTOR", DEFAULT_FACTOR, 1.0, 1e6
            ),
            min_delay_s=_env_float(
                "REPRO_SCHED_SPEC_MIN_S", DEFAULT_MIN_DELAY_S, 0.0, 1e6
            ),
        )


def percentile(sorted_values, p: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of an empty sequence")
    rank = max(1, int(-(-len(sorted_values) * (p / 100.0) // 1)))  # ceil
    return sorted_values[min(rank, len(sorted_values)) - 1]


class DurationTracker:
    """Sliding window of completed point durations (caller-locked)."""

    def __init__(self, window: int = SAMPLE_WINDOW) -> None:
        self._samples: Deque[float] = deque(maxlen=window)

    def record(self, seconds: float) -> None:
        if seconds >= 0:
            self._samples.append(float(seconds))

    def __len__(self) -> int:
        return len(self._samples)

    def delay_s(self, config: SpeculationConfig) -> Optional[float]:
        """Age beyond which a leased point is a straggler; None = never
        (speculation disabled, or not enough samples for a baseline)."""
        if not config.enabled or len(self._samples) < config.min_samples:
            return None
        baseline = percentile(sorted(self._samples), config.pctl)
        return max(config.min_delay_s, baseline * config.factor)
