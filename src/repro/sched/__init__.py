"""``repro.sched`` — scheduling policies, tenancy, and speculation.

The scheduling-policy subsystem shared by every execution backend
(DESIGN.md §15). It owns three concerns that used to be hard-wired
into ``repro.serve.scheduler`` and ``repro.cluster.coordinator``:

* **queuing policy** (:mod:`repro.sched.policy`) — a pluggable
  ``fifo | priority | wfq`` queue (``REPRO_SCHED_POLICY``). The serve
  scheduler orders *jobs* with it, the sharded cluster coordinator
  orders *points* with it, and ``run_points`` dispatches local work
  through it, so one policy engine drives ``local|cluster|hybrid``.
* **tenancy** (:mod:`repro.sched.tenants`) — per-tenant weights,
  admission quotas, and rate limits parsed from ``REPRO_TENANTS``,
  plus the cardinality-guarded label helper that keeps per-tenant
  metrics inside the registry's label-set cap.
* **speculation** (:mod:`repro.sched.speculate`) — percentile-based
  straggler detection: once enough point durations are observed, a
  leased point that outlives ``pctl × factor`` is re-leased to an idle
  worker. Bit-identical determinism makes the duplicate safe;
  first-upload-wins resolves the race.
"""

from repro.sched.policy import (  # noqa: F401
    DEFAULT_POLICY,
    POLICIES,
    PolicyQueue,
    make_policy,
    sched_policy,
)
from repro.sched.tenants import (  # noqa: F401
    DEFAULT_TENANT,
    TenantConfig,
    TenantTable,
    TokenBucket,
    guarded_labels,
    validate_tenant,
)
from repro.sched.speculate import (  # noqa: F401
    DurationTracker,
    SpeculationConfig,
)
