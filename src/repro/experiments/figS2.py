"""Figure S2: leak observability vs DDIO way provisioning.

Companion to figS1 (same observer, same bursty victim at D=1): sweeps
the DDIO way count in {2, 4, 6} under plain DDIO and DDIO+Sweeper. The
observer's ``ways=None`` tracks the hierarchy's DDIO way mask, so the
attacker always primes exactly the NIC-reachable region.

More DDIO ways enlarge the attack surface (more attacker lines exposed
to NIC evictions) but also give Sweeper headroom: invalidated slots
accumulate across a wider mask, absorbing a larger share of NIC fills
between probes. The figure reports MI and probe hit rate per way count
for both policies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    kvs_workload,
    point_spec,
    policy_label,
)
from repro.experiments.figS1 import (
    ITEM_BYTES,
    OBSERVER,
    OBSERVER_SCALE,
    PACKET_BYTES,
    RX_BUFFERS,
    _measure,
    burst_profile,
)

#: the way-provisioning axis.
WAY_SWEEP = (2, 4, 6)
#: figS2 runs at the reference load.
DEPTH = 1


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The figS2 grid as a spec list (also built by name via serve)."""
    out = []
    for ways in WAY_SWEEP:
        for sweeper in (False, True):
            system = kvs_system(
                OBSERVER_SCALE, RX_BUFFERS, ways, PACKET_BYTES
            )
            label = policy_label("ddio", ways, sweeper)
            out.append(
                point_spec(
                    label,
                    system,
                    kvs_workload(OBSERVER_SCALE, ITEM_BYTES),
                    "ddio",
                    sweeper=sweeper,
                    queued_depth=DEPTH,
                    settings=settings,
                    observer=OBSERVER,
                    burst=burst_profile(DEPTH),
                    measure_requests=_measure(settings),
                )
            )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure S2",
        title="Prime+probe leak observability vs DDIO way count",
        scale=OBSERVER_SCALE,
    )
    if settings.scale != OBSERVER_SCALE:
        result.notes.append(
            f"machine scale pinned to {OBSERVER_SCALE} (observer "
            f"calibration); requested scale {settings.scale} ignored"
        )
    result.points.extend(run_points(specs(settings), run_label="figS2"))
    mi: Dict[str, float] = {}
    hit_rate: Dict[str, float] = {}
    for p in result.points:
        leak = p.trace.leak or {}
        mi[p.label] = float(leak.get("mi_bits", 0.0))
        hit_rate[p.label] = float(leak.get("hit_rate", 0.0))
    result.series["mi_bits"] = mi
    result.series["hit_rate"] = hit_rate
    result.notes.append(
        "Observer ways track the DDIO mask, so each point's attacker "
        "primes exactly the NIC-reachable region; MI is I(probe misses; "
        "packet arrivals) in bits per probe."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["figS2", *sys.argv[1:]]))
