"""Figure 7: Sweeper in the presence of premature buffer evictions.

Revisits the two deep-queue L3fwd scenarios of §IV-B (D = 250 and 450)
with Sweeper enabled on each DDIO configuration. The signature result:
with Sweeper, consumed-buffer evictions vanish, so the remaining RX
evictions exactly match the CPU's RX read misses — every evicted buffer
is one that is later demanded by the CPU (a premature eviction).
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    l3fwd_workload,
    point_spec,
    policy_label,
)
from repro.traffic import MemCategory

QUEUE_DEPTHS = (250, 450)
DDIO_WAYS = (2, 6, 12)
PACKET_BYTES = 1024
RX_BUFFERS = 2048


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The fig7 grid as a spec list (also built by name via the serve API)."""
    out = []
    for depth in QUEUE_DEPTHS:
        for ways in DDIO_WAYS:
            for sweeper in (False, True):
                system = kvs_system(settings.scale, RX_BUFFERS, ways, PACKET_BYTES)
                label = f"D={depth} / {policy_label('ddio', ways, sweeper)}"
                out.append(
                    point_spec(
                        label,
                        system,
                        l3fwd_workload(PACKET_BYTES),
                        "ddio",
                        sweeper=sweeper,
                        queued_depth=depth,
                        settings=settings,
                    )
                )
        system = kvs_system(settings.scale, RX_BUFFERS, 2, PACKET_BYTES)
        out.append(
            point_spec(
                f"D={depth} / Ideal DDIO",
                system,
                l3fwd_workload(PACKET_BYTES),
                "ideal",
                queued_depth=depth,
                settings=settings,
            )
        )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 7",
        title="Sweeper under premature buffer evictions (deep queues)",
        scale=settings.scale,
    )
    result.points.extend(run_points(specs(settings), run_label="fig7"))

    gains = []
    residual_match = []
    for depth in QUEUE_DEPTHS:
        for ways in DDIO_WAYS:
            base = result.point(f"D={depth} / {policy_label('ddio', ways, False)}")
            sw = result.point(f"D={depth} / {policy_label('ddio', ways, True)}")
            gains.append(sw.throughput_mrps / base.throughput_mrps)
            rx_evct = sw.breakdown[MemCategory.RX_EVCT]
            rx_rd = sw.breakdown[MemCategory.CPU_RX_RD]
            residual_match.append((rx_evct, rx_rd))
    result.series["sweeper_gains"] = gains
    result.series["residual_match"] = residual_match
    result.notes.append(
        f"Sweeper gains: {min(gains):.2f}x - {max(gains):.2f}x "
        "(paper: 1.2x - 2.4x)."
    )
    result.notes.append(
        "With Sweeper, remaining RX Evct equals CPU RX Rd (all residual "
        "RX traffic is premature evictions): "
        + "  ".join(f"({e:.2f} vs {r:.2f})" for e, r in residual_match)
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig7", *sys.argv[1:]]))
