"""Figure 1: KVS network data leaks across injection baselines.

Write-heavy MICA KVS with 1 KB items on all cores. Sweeps RX buffers per
core in {512, 1024, 2048} and compares DMA, DDIO with {2, 4, 6} ways,
and ideal-DDIO. Reports (a) peak throughput, (b) memory bandwidth at
peak, (c) the per-request memory-access breakdown.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    kvs_workload,
    point_spec,
    policy_label,
)

BUFFER_SWEEP = (512, 1024, 2048)
DDIO_WAYS = (2, 4, 6)
ITEM_BYTES = 1024


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The fig1 grid as a spec list (also built by name via the serve API)."""
    out = []
    for buffers in BUFFER_SWEEP:
        configs = [("dma", 2, False)]
        configs += [("ddio", w, False) for w in DDIO_WAYS]
        configs += [("ideal", 2, False)]
        for policy, ways, sweeper in configs:
            system = kvs_system(settings.scale, buffers, ways, ITEM_BYTES)
            label = f"{buffers} bufs / {policy_label(policy, ways, sweeper)}"
            out.append(
                point_spec(
                    label,
                    system,
                    kvs_workload(settings.scale, ITEM_BYTES),
                    policy,
                    sweeper=sweeper,
                    settings=settings,
                )
            )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 1",
        title="KVS throughput/bandwidth/breakdown vs RX buffer provisioning",
        scale=settings.scale,
    )
    result.points.extend(run_points(specs(settings), run_label="fig1"))
    result.notes.append(
        "Expected shape: DDIO > DMA in throughput; DDIO's breakdown is "
        "dominated by RX Evct (consumed-buffer evictions) while CPU RX Rd "
        "(premature evictions) stays negligible; throughput falls as "
        "buffer provisioning grows."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig1", *sys.argv[1:]]))
