"""Shared plumbing for the per-figure experiment harnesses.

An experiment is a grid of :class:`PointResult`-producing simulation
points. Each point runs the trace engine for the steady-state breakdown
and the analytic solver for peak throughput, exactly the two quantities
every figure of the paper plots.

``ExperimentSettings.from_env`` lets benchmark runs choose fidelity:
``REPRO_SCALE`` (machine scale factor, default ``DEFAULT_SCALE`` — a
2-3 core slice of the 24-core server with all capacity ratios
preserved) and ``REPRO_MEASURE`` (a multiplier on measured request
counts). ``DEFAULT_SCALE`` here is the single source of truth; the
benchmark conftest imports it.

Grid execution goes through :mod:`repro.engine.parallel`: ``run_point``
builds a picklable :class:`~repro.engine.parallel.PointSpec` and runs it
through the persistent point cache; figure modules build whole spec
lists and fan them out with ``run_points`` (``REPRO_WORKERS`` controls
the process count).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.analytic import (
    PerfPoint,
    ServiceProfile,
    solve_peak_throughput,
)
from repro.engine.parallel import PointSpec, run_cached_spec, run_points
from repro.engine.tracer import TraceConfig, TraceResult, TraceSimulator
from repro.errors import ConfigError
from repro.params import SystemConfig
from repro.report.tables import Table, format_breakdown
from repro.traffic import MemCategory
from repro.workloads.kvs import KvsParams, KvsWorkload
from repro.workloads.l3fwd import L3fwdParams, L3fwdWorkload

DEFAULT_SCALE = 0.1

#: version of the JSON result schema shared by ``--json`` and the
#: ``repro.serve`` API (``GET /jobs/<id>/result``).
RESULT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExperimentSettings:
    """Fidelity knobs for an experiment run."""

    scale: float = DEFAULT_SCALE
    measure_multiplier: float = 1.0

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
        measure = float(os.environ.get("REPRO_MEASURE", 1.0))
        return cls(scale=scale, measure_multiplier=measure)

    def measure_requests(self, cfg: TraceConfig) -> int:
        return max(500, int(cfg.default_measure() * self.measure_multiplier))


@dataclass
class PointResult:
    """One simulated configuration (one bar of a paper figure)."""

    label: str
    system: SystemConfig
    trace: TraceResult
    profile: ServiceProfile
    perf: PerfPoint
    #: wall-clock seconds the trace simulation took (0.0 for legacy pickles)
    sim_seconds: float = 0.0
    #: True when this result was served from the persistent point cache
    from_cache: bool = False
    #: manifest-relative path of this point's epoch timeline JSONL, when
    #: the point was freshly simulated under REPRO_EPOCH (else None)
    timeline_file: Optional[str] = None
    #: cluster worker that simulated the point (stamped by the
    #: coordinator; None for local / cached results). Provenance only —
    #: deliberately excluded from point_row so served rows stay
    #: byte-identical regardless of which host simulated them.
    worker_id: Optional[str] = None
    #: manifest-relative path of this point's prime+probe JSONL, when
    #: the point ran an observer and was freshly simulated (else None)
    probe_file: Optional[str] = None
    #: True when the measured window was forked off a restored
    #: warm-state snapshot (REPRO_SNAPSHOTS, DESIGN.md §14). Provenance
    #: only — excluded from point_row like worker_id, because restored
    #: and re-simulated points are bit-identical by contract.
    warm_restored: bool = False

    @property
    def throughput_mrps(self) -> float:
        return self.perf.throughput_mrps

    @property
    def mem_bandwidth_gbps(self) -> float:
        return self.perf.mem_bandwidth_gbps

    @property
    def breakdown(self) -> Dict[MemCategory, float]:
        return self.trace.per_request()

    def full_scale_mrps(self, scale: float) -> float:
        """Throughput extrapolated to the unscaled 24-core machine."""
        if scale <= 0:
            raise ConfigError("scale must be positive")
        return self.throughput_mrps / scale


@dataclass
class FigureResult:
    """All points of one figure plus rendering/notes."""

    figure: str
    title: str
    points: List[PointResult] = field(default_factory=list)
    series: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    scale: float = DEFAULT_SCALE

    def point(self, label: str) -> PointResult:
        for p in self.points:
            if p.label == label:
                return p
        raise ConfigError(f"{self.figure}: no point labelled {label!r}")

    def labels(self) -> List[str]:
        return [p.label for p in self.points]

    def render(self) -> str:
        table = Table(
            [
                "Configuration",
                "Mrps (full-scale)",
                "Mem BW (GB/s)",
                "Mem acc/req",
                "sim time (s)",
            ],
            title=f"{self.figure}: {self.title} (machine scale={self.scale})",
        )
        for p in self.points:
            table.add_row(
                p.label,
                p.full_scale_mrps(self.scale),
                p.mem_bandwidth_gbps / self.scale,
                p.trace.mem_accesses_per_request(),
                p.sim_seconds,
            )
        lines = [table.render(), ""]
        lines.append("Per-request memory access breakdown:")
        for p in self.points:
            lines.append(f"  {p.label:32s} {format_breakdown(p.breakdown)}")
        if self.notes:
            lines.append("")
            lines.extend(f"NOTE: {n}" for n in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def to_dict(self) -> Dict[str, object]:
        """The shared JSON result schema (CLI ``--json`` and the serve API)."""
        return figure_result_to_dict(self)


def point_row(point: PointResult, scale: float) -> Dict[str, object]:
    """One JSON-ready result row; the unit of the shared result schema.

    Every value is a plain float/str/bool computed deterministically from
    the point, so two identical simulations serialize byte-identically.
    The ``leak`` key appears only for observer points, so rows of every
    pre-existing experiment stay byte-identical too.
    """
    row: Dict[str, object] = {
        "label": point.label,
        "throughput_mrps": point.throughput_mrps,
        "full_scale_mrps": point.full_scale_mrps(scale),
        "mem_bandwidth_gbps": point.mem_bandwidth_gbps,
        "full_scale_mem_bandwidth_gbps": point.mem_bandwidth_gbps / scale,
        "mem_accesses_per_request": point.trace.mem_accesses_per_request(),
        "breakdown": {
            category.name: value
            for category, value in sorted(
                point.breakdown.items(), key=lambda kv: int(kv[0])
            )
        },
        "sim_seconds": point.sim_seconds,
        "from_cache": point.from_cache,
    }
    if point.trace.leak is not None:
        row["leak"] = point.trace.leak
    return row


def _jsonable(value: object) -> bool:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and _jsonable(v) for k, v in value.items()
        )
    return False


def figure_result_to_dict(result: FigureResult) -> Dict[str, object]:
    """Serialize a :class:`FigureResult` to the shared result schema.

    ``series`` entries that are not plain JSON values (numpy arrays,
    latency-curve objects) are dropped rather than stringified — the
    schema promises machine-readable values only.
    """
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "figure": result.figure,
        "title": result.title,
        "scale": result.scale,
        "rows": [point_row(p, result.scale) for p in result.points],
        "series": {
            k: (list(v) if isinstance(v, tuple) else v)
            for k, v in result.series.items()
            if _jsonable(v)
        },
        "notes": list(result.notes),
    }


def point_spec(
    label: str,
    system: SystemConfig,
    workload,
    policy: str,
    sweeper: bool = False,
    queued_depth: int = 1,
    settings: Optional[ExperimentSettings] = None,
    nic_tx_sweep: bool = False,
    seed: int = 42,
    observer=None,
    burst=None,
    measure_requests: Optional[int] = None,
    measure_ddio_ways: Optional[int] = None,
) -> PointSpec:
    """Describe one grid point as a picklable, cacheable spec.

    The settings' measure-request count is resolved here so the spec is
    self-contained (and so fidelity knobs participate in the cache
    fingerprint). An explicit ``measure_requests`` overrides the
    settings-derived count (the figS* observers need more probes than
    the default measure window provides). ``measure_ddio_ways`` narrows
    or widens the DDIO way mask at the warmup->measure boundary only —
    the knob that lets a way-mask sweep share one warmup snapshot
    (DESIGN.md §14).
    """
    settings = settings if settings is not None else ExperimentSettings()
    if measure_requests is None:
        cfg = TraceConfig(
            system=system,
            workload=workload,
            policy=policy,
            sweeper=sweeper,
            nic_tx_sweep=nic_tx_sweep,
            queued_depth=queued_depth,
            seed=seed,
        )
        measure_requests = settings.measure_requests(cfg)
    return PointSpec(
        label=label,
        system=system,
        workload=workload,
        policy=policy,
        sweeper=sweeper,
        nic_tx_sweep=nic_tx_sweep,
        queued_depth=queued_depth,
        seed=seed,
        measure_requests=measure_requests,
        observer=observer,
        burst=burst,
        measure_ddio_ways=measure_ddio_ways,
    )


def run_point(
    label: str,
    system: SystemConfig,
    workload,
    policy: str,
    sweeper: bool = False,
    queued_depth: int = 1,
    settings: Optional[ExperimentSettings] = None,
    nic_tx_sweep: bool = False,
    seed: int = 42,
) -> PointResult:
    """Trace one configuration and solve its peak operating point."""
    return run_cached_spec(
        point_spec(
            label,
            system,
            workload,
            policy,
            sweeper=sweeper,
            queued_depth=queued_depth,
            settings=settings,
            nic_tx_sweep=nic_tx_sweep,
            seed=seed,
        )
    )


def kvs_workload(scale: float, item_bytes: int) -> KvsWorkload:
    """The paper's MICA configuration, shrunk with the machine."""
    return KvsWorkload(KvsParams(item_bytes=item_bytes).scaled(scale))


def l3fwd_workload(packet_bytes: int, l1_resident: bool = False) -> L3fwdWorkload:
    params = L3fwdParams(packet_blocks=(packet_bytes + 63) // 64)
    if l1_resident:
        params = params.l1_resident()
    return L3fwdWorkload(params)


def kvs_system(
    scale: float,
    rx_buffers: int,
    ddio_ways: int,
    packet_bytes: int,
    num_channels: int = 4,
) -> SystemConfig:
    """Table I machine at ``scale`` with the experiment's NIC knobs."""
    return (
        SystemConfig()
        .scaled(scale)
        .with_nic(
            ddio_ways=ddio_ways,
            rx_buffers_per_core=rx_buffers,
            packet_bytes=packet_bytes,
        )
        .with_memory(num_channels=num_channels)
    )


def policy_label(policy: str, ways: int, sweeper: bool) -> str:
    if policy == "dma":
        return "DMA + Sweeper" if sweeper else "DMA"
    if policy == "ideal":
        return "Ideal DDIO + Sweeper" if sweeper else "Ideal DDIO"
    stem = {"ddio": "DDIO", "occamy": "Occamy", "rdca": "RDCA"}.get(policy)
    if stem is None:
        raise ConfigError(f"no label for policy {policy!r}")
    name = f"{stem} {ways} Ways"
    return f"{name} + Sweeper" if sweeper else name
