"""Figure 9: collocation of a network-intensive and a memory-intensive
tenant (§VI-E).

L3fwd (L1-resident dataset, 2048 RX buffers/core, 1 KB packets) runs on
half the cores; X-Mem (2 MB private dataset per process) on the other
half. Two partitioning scenarios:

* 9a — disjoint LLC partitions (A, B) with A + B = 12: DDIO confined to
  the A ways, X-Mem fills confined to the B ways;
* 9b — overlapping: X-Mem may use the whole LLC while DDIO ways sweep
  2..12.

Each point reports L3fwd throughput and X-Mem IPC from the collocated
fixed point; the rendered series are normalized the way the paper plots
them ((4,8)+Sweeper for 9a; 6-way/2-way Sweeper for 9b).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.analytic import (
    CollocatedPerf,
    ServiceProfile,
    solve_collocated,
)
from repro.engine.parallel import run_tasks
from repro.engine.tracer import CollocationSimulator, TraceConfig
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    l3fwd_workload,
)
from repro.traffic import MemCategory
from repro.workloads.xmem import XMemWorkload

PARTITIONS_9A = ((2, 10), (4, 8), (6, 6), (8, 4), (10, 2))
OVERLAP_WAYS_9B = (2, 4, 6, 8, 10, 12)
PACKET_BYTES = 1024
RX_BUFFERS = 2048


@dataclass
class CollocationPoint:
    """One collocated configuration's joint performance."""

    label: str
    ddio_ways: int
    xmem_ways: Optional[int]
    sweeper: bool
    perf: CollocatedPerf
    nf_blocks_per_request: float
    xmem_blocks_per_access: float


def _run_collocated(
    settings: ExperimentSettings,
    ddio_ways: int,
    xmem_mask: Optional[List[int]],
    nf_mask: Optional[List[int]],
    sweeper: bool,
) -> CollocationPoint:
    system = kvs_system(settings.scale, RX_BUFFERS, ddio_ways, PACKET_BYTES)
    cores = system.cpu.num_cores
    xmem_cores = list(range(cores // 2, cores))
    nf_cores_n = cores - len(xmem_cores)
    cfg = TraceConfig(
        system=system,
        workload=l3fwd_workload(PACKET_BYTES, l1_resident=True),
        policy="ddio",
        sweeper=sweeper,
    )
    cfg.measure_requests = settings.measure_requests(cfg)
    sim = CollocationSimulator(
        cfg, XMemWorkload(), xmem_cores, xmem_ways_mask=xmem_mask
    )
    if nf_mask is not None:
        for core in range(nf_cores_n):
            sim.hier.set_core_fill_mask(core, nf_mask)
    colo = sim.run_collocated()
    trace = colo.nf_result

    per_req = trace.per_request()
    app = per_req[MemCategory.CPU_OTHER_RD] + per_req[MemCategory.OTHER_EVCT]
    nf_blocks = trace.mem_accesses_per_request() - app
    nf_profile = dataclasses.replace(
        ServiceProfile.from_trace(trace), mem_blocks_total=nf_blocks
    )
    xmem_blocks = app * trace.requests / max(colo.xmem_accesses, 1)
    perf = solve_collocated(
        nf_profile,
        colo.xmem_level_counts,
        xmem_blocks,
        system,
        nf_cores=nf_cores_n,
        xmem_cores=len(xmem_cores),
    )
    label = (
        f"DDIO {ddio_ways} ways / "
        f"X-Mem {'overlap' if xmem_mask is None else len(xmem_mask)} ways"
        + (" + Sweeper" if sweeper else "")
    )
    return CollocationPoint(
        label=label,
        ddio_ways=ddio_ways,
        xmem_ways=None if xmem_mask is None else len(xmem_mask),
        sweeper=sweeper,
        perf=perf,
        nf_blocks_per_request=nf_blocks,
        xmem_blocks_per_access=xmem_blocks,
    )


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    # Collocation needs at least one core per tenant; clamp the scale so
    # the shrunken machine still has two cores.
    min_scale = 2.01 / 24.0
    if settings.scale < min_scale:
        settings = ExperimentSettings(min_scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 9",
        title="Collocated L3fwd + X-Mem performance",
        scale=settings.scale,
    )

    # Every collocated point is independent, so both panels fan out
    # through the generic task runner (_run_collocated is module-level
    # and its arguments picklable).
    llc_ways = 12
    part_keys = [
        (a, sweeper) for a, _b in PARTITIONS_9A for sweeper in (False, True)
    ]
    part_args = [
        (settings, a, list(range(a, llc_ways)), list(range(a)), sweeper)
        for a, sweeper in part_keys
    ]
    over_keys = [
        (ways, sweeper) for ways in OVERLAP_WAYS_9B for sweeper in (False, True)
    ]
    over_args = [
        (settings, ways, None, None, sweeper) for ways, sweeper in over_keys
    ]
    points = run_tasks(
        _run_collocated, part_args + over_args, run_label="fig9"
    )
    partitioned: Dict[Tuple[int, bool], CollocationPoint] = dict(
        zip(part_keys, points[: len(part_keys)])
    )
    overlapping: Dict[Tuple[int, bool], CollocationPoint] = dict(
        zip(over_keys, points[len(part_keys) :])
    )

    result.series["partitioned"] = partitioned
    result.series["overlapping"] = overlapping

    ref_a = partitioned[(4, True)]
    frontier = {
        (a, sw): (
            p.perf.nf_throughput_mrps / ref_a.perf.nf_throughput_mrps,
            p.perf.xmem_ipc / ref_a.perf.xmem_ipc,
        )
        for (a, sw), p in partitioned.items()
    }
    result.series["frontier_normalized"] = frontier

    gains_nf = []
    gains_xm = []
    for a, _b in PARTITIONS_9A:
        base = partitioned[(a, False)]
        sw = partitioned[(a, True)]
        gains_nf.append(sw.perf.nf_throughput_mrps / base.perf.nf_throughput_mrps)
        gains_xm.append(sw.perf.xmem_ipc / base.perf.xmem_ipc)
    result.notes.append(
        "9a partitions: Sweeper boosts L3fwd by "
        f"{min(gains_nf):.2f}x-{max(gains_nf):.2f}x and X-Mem IPC by "
        f"{min(gains_xm):.2f}x-{max(gains_xm):.2f}x "
        "(paper at (4,8): 1.5x and 1.14x)."
    )
    xm_overlap = [
        overlapping[(w, True)].perf.xmem_ipc
        / overlapping[(w, False)].perf.xmem_ipc
        for w in OVERLAP_WAYS_9B
    ]
    result.notes.append(
        "9b overlapping: Sweeper boosts X-Mem IPC by "
        f"{min(xm_overlap):.2f}x-{max(xm_overlap):.2f}x (paper: 1.18x-1.42x); "
        "with Sweeper, L3fwd throughput is insensitive to DDIO way count."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig9", *sys.argv[1:]]))
