"""Figure 6: memory access latency CDFs for the KVS application.

For the 1024-buffer / 1 KB-packet KVS scenario, compares 2- and 12-way
DDIO with and without Sweeper:

* left panel — each configuration at its own peak load;
* right panel — iso-throughput at the 2-way DDIO configuration's peak
  (the paper's 26 Mrps point).

Latency distributions come from the DRAM load-latency model at each
configuration's bandwidth demand; the event-driven sampler
(`repro.engine.events.sample_memory_latencies`) provides an empirical
cross-check used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.engine.analytic import bandwidth_gbps, perf_at_load
from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    kvs_workload,
    point_spec,
    policy_label,
)
from repro.mem.dram import DramModel

RX_BUFFERS = 1024
PACKET_BYTES = 1024
CONFIGS = ((2, False), (2, True), (12, False), (12, True))


@dataclass
class LatencyCurve:
    """One CDF of loaded memory access latency."""

    label: str
    latency_cycles: np.ndarray
    cdf: np.ndarray
    mean_cycles: float
    p99_cycles: float
    throughput_mrps: float


def _curve(label, system, profile, throughput) -> LatencyCurve:
    point = perf_at_load(profile, system, throughput)
    dram = DramModel(system.memory, system.cpu.freq_ghz)
    bw = bandwidth_gbps(profile, throughput)
    lat, cdf = dram.latency_cdf(bw)
    return LatencyCurve(
        label=label,
        latency_cycles=lat,
        cdf=cdf,
        mean_cycles=point.mem_latency_cycles,
        p99_cycles=point.mem_p99_latency_cycles,
        throughput_mrps=throughput,
    )


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The fig6 grid as a spec list (also built by name via the serve API)."""
    out = []
    for ways, sweeper in CONFIGS:
        system = kvs_system(settings.scale, RX_BUFFERS, ways, PACKET_BYTES)
        label = policy_label("ddio", ways, sweeper)
        out.append(
            point_spec(
                label,
                system,
                kvs_workload(settings.scale, PACKET_BYTES),
                "ddio",
                sweeper=sweeper,
                settings=settings,
            )
        )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 6",
        title="Memory access latency CDFs (peak and iso-throughput)",
        scale=settings.scale,
    )
    result.points.extend(run_points(specs(settings), run_label="fig6"))

    at_peak: List[LatencyCurve] = []
    iso: List[LatencyCurve] = []
    iso_throughput = result.point("DDIO 2 Ways").throughput_mrps
    for p in result.points:
        at_peak.append(_curve(p.label, p.system, p.profile, p.throughput_mrps))
        iso.append(_curve(p.label, p.system, p.profile, iso_throughput))
    result.series["at_peak"] = at_peak
    result.series["iso_throughput"] = iso
    result.series["iso_throughput_mrps"] = iso_throughput

    def reduction(curves: List[LatencyCurve], ways: int, metric: str) -> float:
        base = next(c for c in curves if c.label == policy_label("ddio", ways, False))
        sw = next(c for c in curves if c.label == policy_label("ddio", ways, True))
        return 1.0 - getattr(sw, metric) / getattr(base, metric)

    result.notes.append(
        "At peak, Sweeper reduces mean memory latency by "
        f"{reduction(at_peak, 2, 'mean_cycles'):.0%} (2-way) / "
        f"{reduction(at_peak, 12, 'mean_cycles'):.0%} (12-way) "
        "(paper: 12% / 21%) while running at higher throughput."
    )
    result.notes.append(
        "At iso-throughput, Sweeper reduces mean / p99 latency by "
        f"{reduction(iso, 2, 'mean_cycles'):.0%} / "
        f"{reduction(iso, 2, 'p99_cycles'):.0%} (paper: 47% / 20%)."
    )
    return result


def curves_by_label(result: FigureResult, panel: str) -> Dict[str, LatencyCurve]:
    return {c.label: c for c in result.series[panel]}


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig6", *sys.argv[1:]]))
