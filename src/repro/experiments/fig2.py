"""Figure 2: L3 forwarder under sustained queue backlog (batching D).

L3fwd with 16 k forwarding rules handles 1 KB packets from a 2048-entry
per-core RX ring. The load generator keeps at least D unconsumed packets
queued per core (D in {50, 250, 450}), emulating batched processing and
provoking *premature* buffer evictions on top of consumed ones.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    l3fwd_workload,
    point_spec,
    policy_label,
)

QUEUE_DEPTHS = (50, 250, 450)
DDIO_WAYS = (2, 6, 12)
PACKET_BYTES = 1024
RX_BUFFERS = 2048


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The fig2 grid as a spec list (also built by name via the serve API)."""
    out = []
    for depth in QUEUE_DEPTHS:
        configs = [("ddio", w, False) for w in DDIO_WAYS]
        configs.append(("ideal", 2, False))
        for policy, ways, sweeper in configs:
            system = kvs_system(settings.scale, RX_BUFFERS, ways, PACKET_BYTES)
            label = f"D={depth} / {policy_label(policy, ways, sweeper)}"
            out.append(
                point_spec(
                    label,
                    system,
                    l3fwd_workload(PACKET_BYTES),
                    policy,
                    sweeper=sweeper,
                    queued_depth=depth,
                    settings=settings,
                )
            )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 2",
        title="L3fwd with D queued packets per core",
        scale=settings.scale,
    )
    result.points.extend(run_points(specs(settings), run_label="fig2"))
    result.notes.append(
        "Expected shape: premature evictions (CPU RX Rd) appear and grow "
        "with D, strongest at 2-way DDIO; ideal-DDIO consumes negligible "
        "memory bandwidth because L3fwd's dataset is cache-resident."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig2", *sys.argv[1:]]))
