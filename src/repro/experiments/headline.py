"""Headline claims: memory bandwidth saved and peak throughput gained.

The abstract's numbers — Sweeper conserves up to 1.3x of memory
bandwidth and lifts peak sustainable throughput by up to 2.6x over
DDIO-based configurations — are maxima over the evaluation grid. This
harness reruns the decisive corner (1 KB packets, 2048 buffers per core)
across DDIO way counts and channel provisioning and reports both ratios.

Bandwidth conservation is measured the way the paper frames it: memory
traffic per unit of work (bytes per request), baseline over Sweeper.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.analytic import solve_peak_throughput
from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    kvs_workload,
    point_spec,
    policy_label,
)

PACKET_BYTES = 1024
RX_BUFFERS = 2048
DDIO_WAYS = (2, 6, 12)
CHANNELS = (3, 4)


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The headline grid as a spec list (also built by name via the serve API)."""
    return [
        point_spec(
            policy_label("ddio", ways, sweeper),
            kvs_system(settings.scale, RX_BUFFERS, ways, PACKET_BYTES),
            kvs_workload(settings.scale, PACKET_BYTES),
            "ddio",
            sweeper=sweeper,
            settings=settings,
        )
        for ways in DDIO_WAYS
        for sweeper in (False, True)
    ]


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Headline",
        title="Abstract claims: bandwidth savings and throughput gains",
        scale=settings.scale,
    )
    result.points.extend(run_points(specs(settings), run_label="headline"))

    throughput_gain = []
    bandwidth_saving = []
    for ways in DDIO_WAYS:
        base_system = kvs_system(settings.scale, RX_BUFFERS, ways, PACKET_BYTES)
        pair = {
            sweeper: result.point(policy_label("ddio", ways, sweeper))
            for sweeper in (False, True)
        }
        bandwidth_saving.append(
            pair[False].trace.mem_accesses_per_request()
            / pair[True].trace.mem_accesses_per_request()
        )
        for channels in CHANNELS:
            system = base_system.with_memory(num_channels=channels)
            base = solve_peak_throughput(pair[False].profile, system)
            sw = solve_peak_throughput(pair[True].profile, system)
            throughput_gain.append(sw.throughput_mrps / base.throughput_mrps)

    result.series["max_throughput_gain"] = max(throughput_gain)
    result.series["max_bandwidth_saving"] = max(bandwidth_saving)
    result.notes.append(
        f"Max Sweeper throughput gain: {max(throughput_gain):.2f}x "
        "(paper: up to 2.6x)."
    )
    result.notes.append(
        f"Max memory-traffic-per-request saving: {max(bandwidth_saving):.2f}x "
        "(paper: up to 1.3x of memory bandwidth conserved)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["headline", *sys.argv[1:]]))
