"""Table I: the simulated system configuration."""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentSettings, FigureResult
from repro.params import TABLE1
from repro.report.tables import render_table1


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Table I",
        title="Simulated system parameters",
        scale=settings.scale,
    )
    result.series["rendered"] = render_table1(TABLE1)
    result.series["scaled_rendered"] = render_table1(TABLE1.scaled(settings.scale))
    result.notes.append(render_table1(TABLE1))
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["table1", *sys.argv[1:]]))
