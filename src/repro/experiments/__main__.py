"""CLI entry point: ``python -m repro.experiments <id> [--scale S]``.

``--list`` enumerates the available experiments with one-line
descriptions; ``--emit-timeline`` turns on epoch sampling for the run
(defaulting ``REPRO_EPOCH`` if unset) and prints a per-point timeline
digest after each experiment; ``--json`` emits the figure's
rows/breakdowns as machine-readable JSON in the same result schema the
``repro.serve`` API returns from ``GET /jobs/<id>/result``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys

from repro.engine.parallel import last_run_dir
from repro.experiments import REGISTRY
from repro.experiments.common import figure_result_to_dict
from repro.report.timeline import summarize_run

#: epochs per point are workload-dependent; this default gives a few
#: dozen samples at REPRO_SCALE=0.1 measure counts.
DEFAULT_EMIT_EPOCH = 1000


def describe(exp_id: str) -> str:
    """First docstring line of the experiment's module."""
    module = inspect.getmodule(REGISTRY[exp_id])
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's tables/figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(REGISTRY) + ["all"],
        help="experiment id (fig1..fig10, table1, headline) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="machine scale factor in (0, 1]; default from REPRO_SCALE or DEFAULT_SCALE (0.1)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list experiment ids with one-line descriptions and exit",
    )
    parser.add_argument(
        "--emit-timeline",
        action="store_true",
        help="sample epoch timelines (sets REPRO_EPOCH if unset) and "
        "print a per-point digest after each experiment",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit machine-readable JSON (the serve API's result schema) "
        "instead of rendered tables",
    )
    args = parser.parse_args(argv)
    if args.list_experiments:
        for exp_id in sorted(REGISTRY):
            print(f"{exp_id:10s} {describe(exp_id)}")
        return 0
    if args.experiment is None:
        parser.error("an experiment id is required (or use --list)")
    if args.emit_timeline and not os.environ.get("REPRO_EPOCH"):
        os.environ["REPRO_EPOCH"] = str(DEFAULT_EMIT_EPOCH)
    ids = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    if args.as_json:
        # One JSON document on stdout: the bare result for a single
        # experiment, an {id: result} object for 'all'.
        payloads = {
            exp_id: figure_result_to_dict(REGISTRY[exp_id](scale=args.scale))
            for exp_id in ids
        }
        document = payloads[ids[0]] if len(ids) == 1 else payloads
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    for exp_id in ids:
        before = last_run_dir()
        result = REGISTRY[exp_id](scale=args.scale)
        print(result.render())
        print()
        if args.emit_timeline:
            run_dir = last_run_dir()
            if run_dir is None or run_dir == before:
                # fig9 fans out via run_tasks (no manifest); table1 is
                # analytic-only — neither produces a run directory.
                print(f"{exp_id}: no new run directory to summarize")
            else:
                print(summarize_run(run_dir))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
