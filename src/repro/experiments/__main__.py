"""CLI entry point: ``python -m repro.experiments <id> [--scale S]``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments import REGISTRY


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one of the paper's tables/figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(REGISTRY) + ["all"],
        help="experiment id (fig1..fig10, table1, headline) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="machine scale factor in (0, 1]; default from REPRO_SCALE or DEFAULT_SCALE (0.1)",
    )
    args = parser.parse_args(argv)
    ids = sorted(REGISTRY) if args.experiment == "all" else [args.experiment]
    for exp_id in ids:
        result = REGISTRY[exp_id](scale=args.scale)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
