"""Figure 5: sensitivity to DDIO way allocation, with and without Sweeper.

MICA KVS with item/packet sizes {512 B, 1 KB} and RX buffers per core in
{512, 1024, 2048}; DDIO with {2, 4, 6, 12} ways, each also with Sweeper,
plus ideal-DDIO. This is the paper's central results grid: Sweeper must
eliminate RX Evct entirely, land within a few percent of ideal-DDIO, and
be insensitive to buffer provisioning.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    kvs_workload,
    point_spec,
    policy_label,
)

PACKET_SIZES = (512, 1024)
BUFFER_SWEEP = (512, 1024, 2048)
DDIO_WAYS = (2, 4, 6, 12)


def configs() -> Iterable[Tuple[str, int, bool]]:
    for ways in DDIO_WAYS:
        yield ("ddio", ways, False)
        yield ("ddio", ways, True)
    yield ("ideal", 2, False)


def point_label(packet: int, buffers: int, policy: str, ways: int, sweeper: bool) -> str:
    return f"{packet}B / {buffers} bufs / {policy_label(policy, ways, sweeper)}"


def specs(
    settings: ExperimentSettings,
    packet_sizes: Tuple[int, ...] = PACKET_SIZES,
    buffer_sweep: Tuple[int, ...] = BUFFER_SWEEP,
    ddio_ways: Tuple[int, ...] = DDIO_WAYS,
) -> List[PointSpec]:
    """The fig5 grid as a spec list (also built by name via the serve API)."""
    out = []
    for packet in packet_sizes:
        for buffers in buffer_sweep:
            for policy, ways, sweeper in configs():
                if policy == "ddio" and ways not in ddio_ways:
                    continue
                system = kvs_system(settings.scale, buffers, ways, packet)
                out.append(
                    point_spec(
                        point_label(packet, buffers, policy, ways, sweeper),
                        system,
                        kvs_workload(settings.scale, packet),
                        policy,
                        sweeper=sweeper,
                        settings=settings,
                    )
                )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
    packet_sizes: Tuple[int, ...] = PACKET_SIZES,
    buffer_sweep: Tuple[int, ...] = BUFFER_SWEEP,
    ddio_ways: Tuple[int, ...] = DDIO_WAYS,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 5",
        title="DDIO ways x Sweeper across packet sizes and buffer depths",
        scale=settings.scale,
    )
    result.points.extend(
        run_points(
            specs(settings, packet_sizes, buffer_sweep, ddio_ways),
            run_label="fig5",
        )
    )
    sweeper_gains = []
    for packet in packet_sizes:
        for buffers in buffer_sweep:
            for ways in ddio_ways:
                base = result.point(point_label(packet, buffers, "ddio", ways, False))
                sw = result.point(point_label(packet, buffers, "ddio", ways, True))
                sweeper_gains.append(sw.throughput_mrps / base.throughput_mrps)
    result.series["sweeper_gain_min"] = min(sweeper_gains)
    result.series["sweeper_gain_max"] = max(sweeper_gains)
    result.notes.append(
        f"Sweeper throughput gain over matching DDIO config: "
        f"{min(sweeper_gains):.2f}x - {max(sweeper_gains):.2f}x "
        f"(paper: 1.02x - 2.6x)."
    )
    result.notes.append(
        "Expected shape: Sweeper eliminates RX Evct, tracks ideal-DDIO "
        "within ~2-18%, and is insensitive to buffer depth, while plain "
        "DDIO degrades as buffers grow."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig5", *sys.argv[1:]]))
