"""Figure 8: sensitivity to memory bandwidth (3, 4, 8 DDR4 channels).

Three KVS configurations (512 B/512 bufs, 1 KB/512 bufs, 1 KB/2048 bufs)
across DDIO {2, 6, 12} ways with and without Sweeper, plus ideal-DDIO,
each evaluated with 3, 4, and 8 memory channels.

The steady-state cache behaviour is independent of DRAM provisioning, so
each configuration is traced once and the analytic operating point is
re-solved per channel count — the reproduction's structural equivalent
of the paper re-running the simulator per memory configuration.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.analytic import solve_peak_throughput
from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    PointResult,
    kvs_system,
    kvs_workload,
    point_spec,
    policy_label,
)

SCENARIOS = ((512, 512), (1024, 512), (1024, 2048))  # (packet, buffers)
DDIO_WAYS = (2, 6, 12)
CHANNELS = (3, 4, 8)


def _grid(settings: ExperimentSettings) -> List[Tuple]:
    out = []
    for packet, buffers in SCENARIOS:
        configs = [("ddio", w, s) for w in DDIO_WAYS for s in (False, True)]
        configs.append(("ideal", 2, False))
        for policy, ways, sweeper in configs:
            base_system = kvs_system(settings.scale, buffers, ways, packet)
            out.append((packet, buffers, policy, ways, sweeper, base_system))
    return out


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The fig8 base grid as a spec list (channel re-solving happens in
    :func:`run`; the serve API serves the traced base points)."""
    return [
        point_spec(
            f"{packet}B/{buffers} bufs / {policy_label(policy, ways, sweeper)}",
            base_system,
            kvs_workload(settings.scale, packet),
            policy,
            sweeper=sweeper,
            settings=settings,
        )
        for packet, buffers, policy, ways, sweeper, base_system in _grid(
            settings
        )
    ]


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 8",
        title="Peak throughput vs memory channel provisioning",
        scale=settings.scale,
    )
    grid = _grid(settings)
    bases = run_points(specs(settings), run_label="fig8")
    for (packet, buffers, policy, ways, sweeper, base_system), base in zip(
        grid, bases
    ):
        for channels in CHANNELS:
            system = base_system.with_memory(num_channels=channels)
            perf = solve_peak_throughput(base.profile, system)
            label = (
                f"{packet}B/{buffers} bufs / {channels}ch / "
                f"{policy_label(policy, ways, sweeper)}"
            )
            result.points.append(
                PointResult(
                    label=label,
                    system=system,
                    trace=base.trace,
                    profile=base.profile,
                    perf=perf,
                    sim_seconds=base.sim_seconds,
                    from_cache=base.from_cache,
                )
            )

    gains = {}
    for channels in CHANNELS:
        ratios = []
        for packet, buffers in SCENARIOS:
            for ways in DDIO_WAYS:
                prefix = f"{packet}B/{buffers} bufs / {channels}ch / "
                base = result.point(prefix + policy_label("ddio", ways, False))
                sw = result.point(prefix + policy_label("ddio", ways, True))
                ratios.append(sw.throughput_mrps / base.throughput_mrps)
        gains[channels] = (min(ratios), max(ratios))
    result.series["sweeper_gain_by_channels"] = gains
    result.notes.append(
        "Sweeper gain by channel count: "
        + "  ".join(
            f"{ch}ch: {lo:.2f}x-{hi:.2f}x" for ch, (lo, hi) in gains.items()
        )
        + " (paper, largest config: 2.2-2.7x @3ch, 2.1-2.6x @4ch, 1.6-2x @8ch)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig8", *sys.argv[1:]]))
