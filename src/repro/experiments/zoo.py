"""Policy-zoo comparison: every injection policy under one harness.

The headline-style companion of the scenario DSL: the grid is not
hand-written here but compiled from
``examples/scenarios/policy_zoo.toml`` — {dma, ddio, ideal, occamy,
rdca} crossed with two load levels on the MICA-style workload. The
harness adds the comparison series: memory accesses per request by
policy and the zoo policies' savings relative to plain DDIO.

Because the grid rides the ``SPEC_BUILDERS`` seam, the same scenario is
servable by name (``{"experiment": "zoo"}``) or by document
(``{"scenario": {...}}``), cached, and cluster-schedulable like any
figure grid.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import ExperimentSettings, FigureResult

#: the checked-in scenario document this experiment compiles
SCENARIO_PATH = (
    Path(__file__).resolve().parents[3]
    / "examples"
    / "scenarios"
    / "policy_zoo.toml"
)

#: the sweep axes the scenario declares (kept in sync by test_scenario)
POLICIES = ("dma", "ddio", "ideal", "occamy", "rdca")
DEPTHS = (1, 16)


def _compiled(settings: ExperimentSettings):
    from repro.scenario import compile_scenario, load_scenario

    return compile_scenario(load_scenario(SCENARIO_PATH), settings=settings)


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The zoo grid as a spec list (also built by name via serve)."""
    return _compiled(settings).specs


def _label(policy: str, depth: int) -> str:
    return f"zoo policy={policy} queued_depth={depth}"


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    compiled = _compiled(settings)
    result = FigureResult(
        figure="zoo",
        title="Policy zoo: buffer-management policies under one sweep",
        scale=settings.scale,
    )
    result.points.extend(
        run_points(compiled.specs, run_label=compiled.run_label)
    )

    per_request = {
        p.label: p.trace.mem_accesses_per_request() for p in result.points
    }
    result.series["mem_accesses_per_request"] = per_request
    for depth in DEPTHS:
        ddio = per_request[_label("ddio", depth)]
        for policy in ("occamy", "rdca"):
            value = per_request[_label(policy, depth)]
            key = f"{policy}_vs_ddio_D{depth}"
            result.series[key] = ddio / value if value else float("inf")
    best = min(
        (
            (per_request[_label(p, DEPTHS[-1])], p)
            for p in POLICIES
            if p != "ideal"
        ),
    )
    result.notes.append(
        f"Best realizable policy at D={DEPTHS[-1]}: {best[1]} "
        f"({best[0]:.2f} memory accesses/request)."
    )
    result.notes.append(
        f"Grid compiled from {SCENARIO_PATH.name} "
        "(edit the scenario, not this module, to grow the sweep)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["zoo", *sys.argv[1:]]))
