"""Experiment harnesses: one module per figure of the paper's evaluation.

Every module exposes ``run(scale=...) -> FigureResult`` returning the
rows/series the paper figure reports, plus a rendered text form. The
registry below maps experiment ids to runners for the CLI::

    python -m repro.experiments fig5 --scale 0.1
"""

from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    PointResult,
    run_point,
)
from repro.experiments import (
    fig1,
    fig2,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    figS1,
    figS2,
    headline,
    table1,
    zoo,
)

#: experiment id -> callable(scale: float) -> FigureResult
REGISTRY = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig2": fig2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "figS1": figS1.run,
    "figS2": figS2.run,
    "headline": headline.run,
    "zoo": zoo.run,
}

#: experiment id -> callable(settings) -> List[PointSpec]. The servable
#: subset of REGISTRY: experiments whose work is a grid of PointSpecs
#: that `repro.serve` can build by name and fan out point-by-point
#: (fig9 runs arbitrary tasks and table1 is analytic-only, so neither
#: is servable).
SPEC_BUILDERS = {
    "fig1": fig1.specs,
    "fig2": fig2.specs,
    "fig5": fig5.specs,
    "fig6": fig6.specs,
    "fig7": fig7.specs,
    "fig8": fig8.specs,
    "fig10": fig10.specs,
    "figS1": figS1.specs,
    "figS2": figS2.specs,
    "headline": headline.specs,
    "zoo": zoo.specs,
}

#: experiment id -> why `repro.serve` refuses it by design (HTTP 400
#: naming the reason, instead of the generic unknown-experiment error).
#: Everything in REGISTRY is either here or in SPEC_BUILDERS — the
#: figS* observer experiments are servable: their PointSpecs carry the
#: observer/burst knobs, so served runs reproduce local ones
#: bit-identically (probe seed and all).
UNSERVABLE = {
    "fig9": (
        "the collocation study simulates two tenants inside one shared "
        "CollocationSimulator per point (run_tasks over closures), not "
        "independent PointSpecs, so its points cannot be fanned out, "
        "cached, or deduped by the point scheduler"
    ),
    "table1": (
        "analytic-only (closed-form model, no trace simulation to "
        "schedule)"
    ),
}

__all__ = [
    "ExperimentSettings",
    "FigureResult",
    "PointResult",
    "REGISTRY",
    "SPEC_BUILDERS",
    "UNSERVABLE",
    "run_point",
]
