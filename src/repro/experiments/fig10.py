"""Figure 10: shallow vs deep buffering under spiky service times (§VI-F).

A KVS microbenchmark where requests occasionally suffer an extra
[1, 100] µs processing delay (temporal queue buildup, equivalent to
arrival bursts). With the default 2-way DDIO:

* 10a — peak throughput achievable without packet drops across RX ring
  depths {128 .. 2048}, baseline vs Sweeper;
* 10b — packet drop rate vs offered arrival rate for 128 and 2048
  buffers (and 2048 + Sweeper).

The steady-state trace provides each configuration's load-dependent
service time; a per-core finite-ring M/G/1/B event simulation then
measures drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine.analytic import (
    ServiceProfile,
    bandwidth_gbps,
    service_cycles,
)
from repro.engine.events import FiniteRingSimulator
from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    point_spec,
)
from repro.mem.dram import DramModel
from repro.params import SystemConfig
from repro.workloads.kvs import KvsParams
from repro.workloads.spiky import SpikyKvsWorkload

BUFFER_SWEEP = (128, 256, 512, 1024, 2048)
PACKET_BYTES = 1024
DDIO_WAYS = 2
SPIKE_PROBABILITY = 0.001


@dataclass
class DropCurve:
    """Drop rate as a function of offered load for one configuration."""

    label: str
    offered_mrps: List[float]
    drop_rate: List[float]


def _service_fn(profile: ServiceProfile, system: SystemConfig):
    dram = DramModel(system.memory, system.cpu.freq_ghz)

    def base_service_us(offered_mrps: float) -> float:
        latency = dram.avg_latency_cycles(bandwidth_gbps(profile, offered_mrps))
        return service_cycles(profile, system, latency) / system.cpu.cycles_per_us

    return base_service_us


def _spiky_workload(scale: float) -> SpikyKvsWorkload:
    return SpikyKvsWorkload(
        KvsParams(item_bytes=PACKET_BYTES).scaled(scale),
        spike_probability=SPIKE_PROBABILITY,
    )


def _ring_sim(
    point, system: SystemConfig, buffers: int, rng_seed: int = 97
) -> FiniteRingSimulator:
    spikes = _spiky_workload(1.0)  # sampler only; dataset unused
    return FiniteRingSimulator(
        system,
        ring_entries=buffers,
        base_service_us=_service_fn(point.profile, system),
        spike_sampler=spikes.extra_delay_us,
        seed=rng_seed,
    )


def _sweep_grid() -> List[Tuple[int, bool]]:
    return [
        (buffers, sweeper)
        for buffers in BUFFER_SWEEP
        for sweeper in (False, True)
    ]


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The fig10 grid as a spec list (also built by name via the serve API)."""
    out = []
    for buffers, sweeper in _sweep_grid():
        system = kvs_system(settings.scale, buffers, DDIO_WAYS, PACKET_BYTES)
        label = f"{buffers} bufs" + (" + Sweeper" if sweeper else "")
        out.append(
            point_spec(
                label,
                system,
                _spiky_workload(settings.scale),
                "ddio",
                sweeper=sweeper,
                settings=settings,
            )
        )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
    packets_per_core: int = 12000,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure 10",
        title="Buffer provisioning under spiky service times",
        scale=settings.scale,
    )

    grid = _sweep_grid()
    result.points.extend(run_points(specs(settings), run_label="fig10"))

    peaks: Dict[Tuple[int, bool], float] = {}
    for (buffers, sweeper), point in zip(grid, result.points):
        sim = _ring_sim(point, point.system, buffers)
        peaks[(buffers, sweeper)] = sim.peak_no_drop_mrps(
            packets_per_core=packets_per_core
        )
    result.series["peak_no_drop_mrps"] = peaks

    curves: List[DropCurve] = []
    for buffers, sweeper in ((128, False), (2048, False), (2048, True)):
        label = f"{buffers} bufs" + (" + Sweeper" if sweeper else "")
        point = result.point(label)
        system = point.system
        sim = _ring_sim(point, system, buffers)
        top = 1.5 * point.throughput_mrps
        offered = list(np.linspace(0.2 * top, top, 8))
        drops = [
            sim.run(x, packets_per_core=packets_per_core).drop_rate
            for x in offered
        ]
        curves.append(
            DropCurve(label=label, offered_mrps=offered, drop_rate=drops)
        )
    result.series["drop_curves"] = curves

    shallow = peaks[(128, False)]
    best_base = max(peaks[(b, False)] for b in BUFFER_SWEEP)
    deep_sw = peaks[(2048, True)]
    result.notes.append(
        f"No-drop peak: the best deep baseline delivers "
        f"{best_base / shallow:.2f}x the shallow (128) throughput, and deep "
        f"buffers + Sweeper {deep_sw / shallow:.2f}x (paper: 3.3x and 3.7x; "
        "paper also observes the deepest baseline dropping below the best, "
        "which this model reproduces more strongly)."
    )
    result.notes.append(
        "Sweeper lifts the 2048-buffer no-drop peak above every baseline "
        f"depth: {deep_sw:.2f} vs best baseline {best_base:.2f} (scaled Mrps)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["fig10", *sys.argv[1:]]))
