"""Figure S1: leak observability vs load under DMA / DDIO / DDIO+Sweeper.

The side-channel companion experiment (not from the paper; motivated by
Packet Chasing, see PAPERS.md): a prime+probe observer tenant
(:mod:`repro.sidechannel`) monitors the DDIO-reachable LLC ways while a
KVS victim serves bursty traffic at backlog depth D in {1, 4, 16}. For
each load and injection policy the observer reports the probe hit rate
and the binned mutual information between per-probe eviction counts and
ground-truth packet arrivals — the leak signal Sweeper exists to shrink.

Expected ordering at every load: DMA (no LLC injection) pins MI near
zero; plain DDIO maximizes it; DDIO+Sweeper lands measurably below DDIO
because swept (invalid) slots absorb NIC fills that would otherwise
evict attacker lines.

Calibration notes (all constants below are part of the experiment's
identity and participate in point fingerprints):

* the machine scale is pinned to ``OBSERVER_SCALE`` instead of
  following ``REPRO_SCALE``: the observer operates in a calibrated
  regime of NIC fills per LLC set per probe interval, which scales
  with packet size / LLC sets / probe period together (fig9 sets the
  precedent for experiments that constrain scale);
* traffic is bursty (:class:`~repro.nic.arrivals.BurstProfile`): a
  constant-rate victim posts exactly one packet per serviced request,
  which makes arrivals a deterministic function of elapsed requests and
  leaves nothing for probes to infer;
* 4 KB packets make the NIC — not the victim CPU — the dominant
  consumer of swept slots, which is what gives Sweeper's absorption a
  visible effect on the observer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.parallel import PointSpec, run_points
from repro.experiments.common import (
    ExperimentSettings,
    FigureResult,
    kvs_system,
    kvs_workload,
    point_spec,
    policy_label,
)
from repro.nic.arrivals import BurstProfile
from repro.sidechannel import ObserverConfig

#: pinned machine scale (see module docstring).
OBSERVER_SCALE = 0.05
#: backlog depths (the load axis).
LOADS = (1, 4, 16)
RX_BUFFERS = 512
DDIO_WAYS = 2
PACKET_BYTES = 4096
ITEM_BYTES = 1024
#: measured requests at measure_multiplier=1 (~250 probes).
MEASURE_REQUESTS = 12000
#: the attacker: 64 monitored sets, probe every 48 requests.
OBSERVER = ObserverConfig(sets=64, period=48, probe_seed=23, mi_bins=4)
#: burst amplitude/window shared by every load (low follows D).
BURST_AMPLITUDE = 128
BURST_WINDOW = 96
BURST_SEED = 5

#: the grid's policy axis: (policy, sweeper).
POLICIES = (("dma", False), ("ddio", False), ("ddio", True))


def _measure(settings: ExperimentSettings) -> int:
    return max(4000, int(MEASURE_REQUESTS * settings.measure_multiplier))


def burst_profile(depth: int) -> BurstProfile:
    return BurstProfile(
        low=depth,
        high=depth + BURST_AMPLITUDE,
        window=BURST_WINDOW,
        seed=BURST_SEED,
    )


def specs(settings: ExperimentSettings) -> List[PointSpec]:
    """The figS1 grid as a spec list (also built by name via serve)."""
    out = []
    for depth in LOADS:
        for policy, sweeper in POLICIES:
            system = kvs_system(
                OBSERVER_SCALE, RX_BUFFERS, DDIO_WAYS, PACKET_BYTES
            )
            label = (
                f"D={depth} / {policy_label(policy, DDIO_WAYS, sweeper)}"
            )
            out.append(
                point_spec(
                    label,
                    system,
                    kvs_workload(OBSERVER_SCALE, ITEM_BYTES),
                    policy,
                    sweeper=sweeper,
                    queued_depth=depth,
                    settings=settings,
                    observer=OBSERVER,
                    burst=burst_profile(depth),
                    measure_requests=_measure(settings),
                )
            )
    return out


def run(
    scale: Optional[float] = None,
    settings: Optional[ExperimentSettings] = None,
) -> FigureResult:
    settings = settings or ExperimentSettings.from_env()
    if scale is not None:
        settings = ExperimentSettings(scale, settings.measure_multiplier)
    result = FigureResult(
        figure="Figure S1",
        title="Prime+probe leak observability vs load "
        "(DMA / DDIO / DDIO+Sweeper)",
        scale=OBSERVER_SCALE,
    )
    if settings.scale != OBSERVER_SCALE:
        result.notes.append(
            f"machine scale pinned to {OBSERVER_SCALE} (observer "
            f"calibration); requested scale {settings.scale} ignored"
        )
    result.points.extend(run_points(specs(settings), run_label="figS1"))
    mi: Dict[str, float] = {}
    hit_rate: Dict[str, float] = {}
    for p in result.points:
        leak = p.trace.leak or {}
        mi[p.label] = float(leak.get("mi_bits", 0.0))
        hit_rate[p.label] = float(leak.get("hit_rate", 0.0))
    result.series["mi_bits"] = mi
    result.series["hit_rate"] = hit_rate
    result.notes.append(
        "Leak signal I(probe misses; packet arrivals) in bits per probe: "
        "expected DMA ~ 0 < DDIO+Sweeper < DDIO at every load; the "
        "probe hit rate orders the other way (Sweeper preserves more "
        "attacker lines)."
    )
    return result


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    from repro.experiments.__main__ import main

    sys.exit(main(["figS1", *sys.argv[1:]]))
