"""Memory-traffic vocabulary shared by the cache, NIC, and engines.

The paper's central measurement (Figures 1c, 2c, 5c, 7b) is a breakdown
of memory accesses per request into eight categories. This module defines
those categories and a counter class for accumulating them.

Category semantics (all are *memory* accesses, i.e. DRAM traffic):

* ``NIC_RX_WR``   — NIC writes incoming packets to DRAM (DMA mode only).
* ``NIC_TX_RD``   — NIC reads outgoing packets from DRAM.
* ``CPU_RX_RD``   — CPU demand-misses on an RX buffer (premature eviction).
* ``CPU_TX_RDWR`` — CPU read-for-ownership misses on TX buffers.
* ``CPU_OTHER_RD``— CPU demand-misses on application data.
* ``RX_EVCT``     — dirty RX-buffer blocks written back on eviction
  (consumed-buffer evictions, plus premature ones' writeback half).
* ``TX_EVCT``     — dirty TX-buffer blocks written back on eviction.
* ``OTHER_EVCT``  — dirty application data written back on eviction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterable, Mapping

from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.params import CACHE_BLOCK_BYTES


class MemCategory(IntEnum):
    """Attribution of one block-sized DRAM access."""

    NIC_RX_WR = 0
    NIC_TX_RD = 1
    CPU_RX_RD = 2
    CPU_TX_RDWR = 3
    CPU_OTHER_RD = 4
    RX_EVCT = 5
    TX_EVCT = 6
    OTHER_EVCT = 7

    @property
    def label(self) -> str:
        return _LABELS[self]

    @property
    def is_read(self) -> bool:
        return self in _READS


_LABELS = {
    MemCategory.NIC_RX_WR: "NIC RX Wr",
    MemCategory.NIC_TX_RD: "NIC TX Rd",
    MemCategory.CPU_RX_RD: "CPU RX Rd",
    MemCategory.CPU_TX_RDWR: "CPU TX Rd/Wr",
    MemCategory.CPU_OTHER_RD: "CPU Other Rd",
    MemCategory.RX_EVCT: "RX Evct",
    MemCategory.TX_EVCT: "TX Evct",
    MemCategory.OTHER_EVCT: "Other Evct",
}

_READS = frozenset(
    {
        MemCategory.NIC_TX_RD,
        MemCategory.CPU_RX_RD,
        MemCategory.CPU_TX_RDWR,
        MemCategory.CPU_OTHER_RD,
    }
)

#: Eviction category for a dirty block of each region kind.
EVICT_CATEGORY = {
    RegionKind.RX_BUFFER: MemCategory.RX_EVCT,
    RegionKind.TX_BUFFER: MemCategory.TX_EVCT,
    RegionKind.APP: MemCategory.OTHER_EVCT,
}

#: Demand-read category for a CPU miss on each region kind.
CPU_READ_CATEGORY = {
    RegionKind.RX_BUFFER: MemCategory.CPU_RX_RD,
    RegionKind.TX_BUFFER: MemCategory.CPU_TX_RDWR,
    RegionKind.APP: MemCategory.CPU_OTHER_RD,
}


@dataclass
class TrafficCounter:
    """Accumulates block-granularity DRAM accesses by category."""

    counts: Dict[MemCategory, int] = field(
        default_factory=lambda: {c: 0 for c in MemCategory}
    )

    def record(self, category: MemCategory, blocks: int = 1) -> None:
        if blocks < 0:
            raise ConfigError("block count must be non-negative")
        self.counts[category] += blocks

    def total(self) -> int:
        return sum(self.counts.values())

    def total_reads(self) -> int:
        return sum(v for c, v in self.counts.items() if c.is_read)

    def total_writes(self) -> int:
        return self.total() - self.total_reads()

    def total_bytes(self) -> int:
        return self.total() * CACHE_BLOCK_BYTES

    def get(self, category: MemCategory) -> int:
        return self.counts[category]

    def reset(self) -> None:
        for c in self.counts:
            self.counts[c] = 0

    def snapshot(self) -> Dict[MemCategory, int]:
        return dict(self.counts)

    def publish_metrics(self, registry) -> None:
        """Publish per-category DRAM traffic through a pull collector.

        The hot paths keep bumping ``counts`` directly (the engines even
        index the dict without going through :meth:`record`); the
        collector copies the totals into
        ``mem_traffic_blocks_total{category=...}`` at sample time.
        """
        family = registry.counter(
            "mem_traffic_blocks_total",
            "Block-granularity DRAM accesses by category",
            labels=("category",),
        )

        def collect(_registry, counter=self) -> None:
            for category, value in counter.counts.items():
                family.labels(category=category.name).set_total(value)

        registry.register_collector(collect)

    def diff(self, earlier: Mapping[MemCategory, int]) -> "TrafficCounter":
        """Counter of accesses accumulated since ``earlier`` snapshot."""
        out = TrafficCounter()
        for c in MemCategory:
            delta = self.counts[c] - earlier.get(c, 0)
            if delta < 0:
                raise ConfigError("snapshot is newer than this counter")
            out.counts[c] = delta
        return out

    def scaled(self, divisor: float) -> Dict[MemCategory, float]:
        """Per-request view: each category divided by ``divisor``."""
        if divisor <= 0:
            raise ConfigError("divisor must be positive")
        return {c: v / divisor for c, v in self.counts.items()}

    def merged(self, other: "TrafficCounter") -> "TrafficCounter":
        out = TrafficCounter()
        for c in MemCategory:
            out.counts[c] = self.counts[c] + other.counts[c]
        return out

    @staticmethod
    def categories() -> Iterable[MemCategory]:
        return tuple(MemCategory)
