"""Memory subsystem: physical address layout and DDR4 channel model."""

from repro.mem.layout import AddressSpace, Region, RegionKind
from repro.mem.dram import DramModel, DramSampler
from repro.mem.banked import BankedDramModel, DdrTiming

__all__ = [
    "AddressSpace",
    "Region",
    "RegionKind",
    "BankedDramModel",
    "DdrTiming",
    "DramModel",
    "DramSampler",
]
