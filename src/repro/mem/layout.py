"""Physical address-space layout for the simulated server.

The trace engine works on *block addresses* (byte address >> 6). Regions
are allocated contiguously by an :class:`AddressSpace` builder and carry a
:class:`RegionKind`, which is how evicted dirty blocks are attributed to
the paper's traffic categories (RX Evct / TX Evct / Other Evct).

Regions never overlap and are block-aligned by construction. Lookups are
O(log n) via bisect; the hot path avoids them entirely because cache lines
carry their kind from allocation time.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional

from repro.errors import AddressError, ConfigError
from repro.params import CACHE_BLOCK_BYTES


class RegionKind(IntEnum):
    """Coarse classification of memory regions for traffic attribution."""

    RX_BUFFER = 0
    TX_BUFFER = 1
    APP = 2


@dataclass(frozen=True)
class Region:
    """A contiguous, block-aligned span of physical memory."""

    name: str
    kind: RegionKind
    start: int
    size: int
    owner_core: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start % CACHE_BLOCK_BYTES or self.size % CACHE_BLOCK_BYTES:
            raise ConfigError(f"region {self.name} is not block-aligned")
        if self.size <= 0:
            raise ConfigError(f"region {self.name} has non-positive size")

    @property
    def end(self) -> int:
        return self.start + self.size

    @property
    def start_block(self) -> int:
        return self.start // CACHE_BLOCK_BYTES

    @property
    def num_blocks(self) -> int:
        return self.size // CACHE_BLOCK_BYTES

    @property
    def end_block(self) -> int:
        return self.start_block + self.num_blocks

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def contains_block(self, block: int) -> bool:
        return self.start_block <= block < self.end_block

    def block_at(self, offset: int) -> int:
        """Block address of byte ``offset`` into the region."""
        if not 0 <= offset < self.size:
            raise AddressError(
                f"offset {offset} outside region {self.name} of size {self.size}"
            )
        return (self.start + offset) // CACHE_BLOCK_BYTES


class AddressSpace:
    """Sequential allocator and classifier for simulation regions."""

    def __init__(self, base: int = 0) -> None:
        if base % CACHE_BLOCK_BYTES:
            raise ConfigError("address space base must be block-aligned")
        self._next = base
        self._regions: List[Region] = []
        self._by_name: Dict[str, Region] = {}
        self._starts: List[int] = []

    def allocate(
        self,
        name: str,
        size: int,
        kind: RegionKind,
        owner_core: Optional[int] = None,
        align: int = CACHE_BLOCK_BYTES,
    ) -> Region:
        """Reserve ``size`` bytes (rounded up to a whole block)."""
        if name in self._by_name:
            raise ConfigError(f"duplicate region name: {name}")
        if align % CACHE_BLOCK_BYTES:
            raise ConfigError("alignment must be a multiple of the block size")
        start = -(-self._next // align) * align
        size = -(-size // CACHE_BLOCK_BYTES) * CACHE_BLOCK_BYTES
        region = Region(name=name, kind=kind, start=start, size=size,
                        owner_core=owner_core)
        self._next = region.end
        self._regions.append(region)
        self._by_name[name] = region
        self._starts.append(region.start)
        return region

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    @property
    def total_bytes(self) -> int:
        return self._next

    def region(self, name: str) -> Region:
        try:
            return self._by_name[name]
        except KeyError:
            raise AddressError(f"no region named {name!r}") from None

    def find(self, addr: int) -> Region:
        """Return the region containing byte address ``addr``."""
        idx = bisect_right(self._starts, addr) - 1
        if idx >= 0 and self._regions[idx].contains(addr):
            return self._regions[idx]
        raise AddressError(f"address {addr:#x} is outside every region")

    def find_block(self, block: int) -> Region:
        return self.find(block * CACHE_BLOCK_BYTES)

    def kind_of_block(self, block: int) -> RegionKind:
        return self.find_block(block).kind
