"""DDR4 memory-channel model.

Two complementary views of the same memory system:

* :class:`DramModel` — the analytic load-latency curve used by the
  fixed-point throughput solver. Average access latency grows
  hyperbolically with channel utilization, the standard open-queueing
  shape that reproduces the paper's observation that leak-driven
  bandwidth pressure inflates every memory access.

* :class:`DramSampler` — a per-channel FIFO event model used where the
  paper needs actual latency *distributions* (Figure 6 CDFs) or drop
  dynamics (Figure 10). Blocks interleave across channels by block
  address, mimicking fine-grained channel interleaving.

Latencies are in CPU cycles; bandwidth in GB/s.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.params import CACHE_BLOCK_BYTES, MemoryParams

#: Utilization beyond which the analytic curve is treated as saturated.
MAX_STABLE_UTILIZATION = 0.985


class DramModel:
    """Analytic load-latency curve for a multi-channel DDR4 system."""

    def __init__(self, params: MemoryParams, freq_ghz: float) -> None:
        if freq_ghz <= 0:
            raise ConfigError("freq_ghz must be positive")
        self.params = params
        self.freq_ghz = freq_ghz

    @property
    def usable_bandwidth_gbps(self) -> float:
        return self.params.usable_bandwidth_gbps

    def utilization(self, demand_gbps: float) -> float:
        """Fraction of sustainable random-access bandwidth consumed."""
        if demand_gbps < 0:
            raise ConfigError("bandwidth demand must be non-negative")
        return demand_gbps / self.usable_bandwidth_gbps

    def is_stable(self, demand_gbps: float) -> bool:
        return self.utilization(demand_gbps) < MAX_STABLE_UTILIZATION

    def queueing_cycles(self, demand_gbps: float) -> float:
        """Mean queueing delay added on top of the idle latency."""
        rho = min(self.utilization(demand_gbps), MAX_STABLE_UTILIZATION)
        return self.params.queue_scale_cycles * rho / (1.0 - rho)

    def avg_latency_cycles(self, demand_gbps: float) -> float:
        """Mean loaded access latency at the given bandwidth demand."""
        return self.params.idle_latency_cycles + self.queueing_cycles(demand_gbps)

    def p99_latency_cycles(self, demand_gbps: float) -> float:
        """p99 latency, treating queueing delay as exponential (M/M/1)."""
        mean_q = self.queueing_cycles(demand_gbps)
        return self.params.idle_latency_cycles + mean_q * math.log(100.0)

    def latency_cdf(
        self, demand_gbps: float, points: int = 200
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Closed-form CDF of access latency at the given demand.

        Returns ``(latency_cycles, cdf)`` arrays. The distribution is a
        shifted exponential: deterministic idle latency plus exponential
        queueing delay of the analytic mean.
        """
        mean_q = max(self.queueing_cycles(demand_gbps), 1e-9)
        base = float(self.params.idle_latency_cycles)
        lat = np.linspace(base, base + mean_q * 7.0, points)
        cdf = 1.0 - np.exp(-(lat - base) / mean_q)
        return lat, cdf

    def service_cycles_per_block(self) -> float:
        """Mean per-channel occupancy of one 64 B transfer, in cycles."""
        gb_per_block = CACHE_BLOCK_BYTES / 1e9
        seconds = gb_per_block / (
            self.params.channel_peak_gbps * self.params.efficiency
        )
        return seconds * self.freq_ghz * 1e9


class DramSampler:
    """Event-driven per-channel FIFO latency sampler.

    Accesses are presented in non-decreasing time order per channel
    (global time order is sufficient). Each access occupies its channel
    for the mean block service time; the returned latency is idle latency
    plus any time spent waiting for the channel. Writebacks occupy
    bandwidth but their latency is not observed by any requester.
    """

    def __init__(
        self,
        params: MemoryParams,
        freq_ghz: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.params = params
        self.model = DramModel(params, freq_ghz)
        self._service = self.model.service_cycles_per_block()
        self._free_at: List[float] = [0.0] * params.num_channels
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.read_latencies: List[float] = []

    def channel_of_block(self, block: int) -> int:
        return block % self.params.num_channels

    def _occupy(self, channel: int, now_cycles: float) -> float:
        """Advance the channel clock; return queueing delay experienced."""
        start = max(self._free_at[channel], now_cycles)
        # Exponential service jitter models bank conflicts/row misses.
        service = self._service * float(self._rng.exponential(1.0))
        self._free_at[channel] = start + service
        return start - now_cycles

    def read(self, block: int, now_cycles: float) -> float:
        """Issue a demand read; returns and records its total latency."""
        wait = self._occupy(self.channel_of_block(block), now_cycles)
        latency = self.params.idle_latency_cycles + wait
        self.read_latencies.append(latency)
        return latency

    def write(self, block: int, now_cycles: float) -> None:
        """Issue a writeback; consumes bandwidth, latency unobserved."""
        self._occupy(self.channel_of_block(block), now_cycles)

    def reset_stats(self) -> None:
        self.read_latencies.clear()

    def percentile(self, q: float) -> float:
        if not self.read_latencies:
            raise ConfigError("no read latencies recorded")
        return float(np.percentile(np.array(self.read_latencies), q))

    def mean_latency(self) -> float:
        if not self.read_latencies:
            raise ConfigError("no read latencies recorded")
        return float(np.mean(np.array(self.read_latencies)))
