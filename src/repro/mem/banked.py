"""Bank-level DDR4 timing model (Table I: 4 ranks x 8 banks per channel).

A finer-grained alternative to :class:`~repro.mem.dram.DramSampler`: each
channel fans out to ranks and banks with per-bank row buffers. An access
to an open row is a row-buffer *hit* (tCL); a different row in an open
bank pays precharge + activate + CAS (tRP + tRCD + tCL); a closed bank
pays activate + CAS. The channel's data bus serializes bursts, and a
simple FR-FCFS-flavoured effect emerges naturally: consecutive accesses
to the same row are cheap, bank-parallel streams overlap.

Timing parameters default to DDR4-3200 datasheet values converted to CPU
cycles at 3.2 GHz (1 memory ns = 3.2 CPU cycles).

Used by benchmarks as a cross-check of the closed-form load-latency
curve: both models must agree that latency grows with load and that
random traffic saturates well below pin bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.params import CACHE_BLOCK_BYTES, MemoryParams


@dataclass(frozen=True)
class DdrTiming:
    """Core DDR4-3200 timings in CPU cycles (3.2 GHz CPU)."""

    tCL: float = 44.8   # 14 ns CAS latency (pipelined; latency only)
    tRCD: float = 44.8  # 14 ns activate-to-CAS
    tRP: float = 44.8   # 14 ns precharge
    tBURST: float = 8.0  # 64 B over a 25.6 GB/s channel = 2.5 ns
    #: extra bus gap when consecutive bursts come from different banks
    #: (bank-group switching, rank turnarounds)
    bus_switch_cycles: float = 4.0
    #: non-DRAM path: LLC-miss handling, NoC, controller queues (unloaded)
    frontend_cycles: float = 70.0

    def __post_init__(self) -> None:
        for name in ("tCL", "tRCD", "tRP", "tBURST"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")

    def setup_cycles(self, hit: bool, closed: bool) -> float:
        """Bank-array occupancy before the CAS can issue."""
        if hit:
            return 0.0
        if closed:
            return self.tRCD
        return self.tRP + self.tRCD

    @property
    def row_hit_cycles(self) -> float:
        return self.tCL

    @property
    def row_miss_cycles(self) -> float:
        return self.tRCD + self.tCL

    @property
    def row_conflict_cycles(self) -> float:
        return self.tRP + self.tRCD + self.tCL


@dataclass
class _Bank:
    open_row: Optional[int] = None
    ready_at: float = 0.0


class BankedDramModel:
    """Event-driven channels/ranks/banks with open-row tracking.

    Address mapping (block granularity): channel = block % C, then
    bank = (block // C) % (ranks*banks), row = block // (C*ranks*banks*
    rows_per_block_group). Sequential blocks stripe across channels, and
    blocks within the same 8 KB row stay together — so streaming traffic
    earns row hits while random traffic mostly conflicts, reproducing
    the efficiency gap the closed-form model encodes as a constant.
    """

    #: 8 KB row / 64 B blocks = 128 blocks per row per bank
    BLOCKS_PER_ROW = 128

    def __init__(
        self,
        params: MemoryParams,
        timing: Optional[DdrTiming] = None,
    ) -> None:
        self.params = params
        self.timing = timing if timing is not None else DdrTiming()
        self.num_channels = params.num_channels
        self.banks_per_channel = params.ranks_per_channel * params.banks_per_rank
        self._banks: List[List[_Bank]] = [
            [_Bank() for _ in range(self.banks_per_channel)]
            for _ in range(self.num_channels)
        ]
        self._bus_free: List[float] = [0.0] * self.num_channels
        self._last_bank: List[int] = [-1] * self.num_channels
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.read_latencies: List[float] = []

    # ------------------------------------------------------------------
    # address mapping
    # ------------------------------------------------------------------

    def map_block(self, block: int) -> "tuple[int, int, int]":
        channel = block % self.num_channels
        per_channel = block // self.num_channels
        row_group = per_channel // self.BLOCKS_PER_ROW
        bank = row_group % self.banks_per_channel
        row = row_group // self.banks_per_channel
        return channel, bank, row

    # ------------------------------------------------------------------
    # access path
    # ------------------------------------------------------------------

    def _classify(self, bank: _Bank, row: int) -> "tuple[bool, bool]":
        """Returns (row_hit, bank_was_closed) and updates hit stats."""
        if bank.open_row == row:
            self.row_hits += 1
            return True, False
        if bank.open_row is None:
            self.row_misses += 1
            bank.open_row = row
            return False, True
        self.row_conflicts += 1
        bank.open_row = row
        return False, False

    def access(self, block: int, now_cycles: float, is_read: bool = True) -> float:
        """Issue one block access; returns its total latency in cycles.

        The bank array is occupied for precharge/activate and the burst;
        the CAS latency (tCL) is pipelined and contributes latency only.
        The channel's data bus serializes bursts, with a switch penalty
        between different banks.
        """
        if now_cycles < 0:
            raise ConfigError("time must be non-negative")
        t = self.timing
        channel, bank_idx, row = self.map_block(block)
        bank = self._banks[channel][bank_idx]
        hit, closed = self._classify(bank, row)
        setup = t.setup_cycles(hit, closed)
        array_start = max(now_cycles, bank.ready_at)
        ready_for_bus = array_start + setup
        gap = 0.0 if self._last_bank[channel] == bank_idx else t.bus_switch_cycles
        bus_start = max(ready_for_bus, self._bus_free[channel] + gap)
        bus_end = bus_start + t.tBURST
        self._bus_free[channel] = bus_end
        self._last_bank[channel] = bank_idx
        bank.ready_at = bus_end
        latency = (bus_end - now_cycles) + t.tCL + t.frontend_cycles
        if is_read:
            self.read_latencies.append(latency)
        return latency

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses + self.row_conflicts

    def row_hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses

    def mean_read_latency(self) -> float:
        if not self.read_latencies:
            raise ConfigError("no reads recorded")
        return float(np.mean(np.array(self.read_latencies)))

    def percentile(self, q: float) -> float:
        if not self.read_latencies:
            raise ConfigError("no reads recorded")
        return float(np.percentile(np.array(self.read_latencies), q))

    def reset_stats(self) -> None:
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.read_latencies.clear()


def measure_sustained_bandwidth(
    model: BankedDramModel,
    pattern: str = "random",
    num_accesses: int = 20000,
    seed: int = 11,
) -> float:
    """Back-to-back bandwidth (GB/s at 3.2 GHz) for a traffic pattern.

    Saturates the model with zero-think-time accesses and reports the
    achieved data rate. ``pattern`` is "random" or "sequential" — the
    gap between the two is the row-buffer-locality efficiency factor the
    closed-form model's ``efficiency`` parameter summarizes.
    """
    if pattern not in ("random", "sequential"):
        raise ConfigError(f"unknown pattern {pattern!r}")
    rng = np.random.default_rng(seed)
    if pattern == "random":
        blocks = rng.integers(0, 1 << 26, size=num_accesses)
    else:
        blocks = np.arange(num_accesses)
    # Saturation: every request is enqueued at t=0 (an infinitely deep
    # controller queue); the channels drain them back to back, so the
    # drain time of the busiest channel bounds the achieved bandwidth.
    for b in blocks:
        model.access(int(b), 0.0)
    cycles = max(max(model._bus_free), 1e-9)
    bytes_moved = num_accesses * CACHE_BLOCK_BYTES
    seconds = cycles / (3.2e9)
    return bytes_moved / seconds / 1e9
