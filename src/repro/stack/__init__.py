"""Userspace network stack model (DPDK-style) with Sweeper integration."""

from repro.stack.mbuf import Mbuf, MbufState
from repro.stack.mempool import Mempool
from repro.stack.dataplane import Dataplane, DataplaneConfig, RxBurst

__all__ = [
    "Dataplane",
    "DataplaneConfig",
    "Mbuf",
    "MbufState",
    "Mempool",
    "RxBurst",
]
