"""Fixed-size packet buffer pool (DPDK mempool analogue).

A mempool owns a contiguous region of the simulation address space,
carved into equal block-aligned mbufs. The RX ring of a dataplane core
draws its descriptors from here; pool exhaustion (every buffer in
flight) is exactly the condition under which a real NIC starts dropping
packets.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import ConfigError, ProtocolError
from repro.mem.layout import AddressSpace, Region, RegionKind
from repro.params import CACHE_BLOCK_BYTES
from repro.stack.mbuf import Mbuf, MbufState


class Mempool:
    """A pool of ``capacity`` equal-size packet buffers."""

    def __init__(
        self,
        space: AddressSpace,
        name: str,
        capacity: int,
        buf_bytes: int,
        owner_core: Optional[int] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigError("mempool capacity must be positive")
        if buf_bytes <= 0 or buf_bytes % CACHE_BLOCK_BYTES:
            raise ConfigError("buffer size must be a positive block multiple")
        self.name = name
        self.buf_bytes = buf_bytes
        self.region: Region = space.allocate(
            name, capacity * buf_bytes, RegionKind.RX_BUFFER,
            owner_core=owner_core,
        )
        self._mbufs: List[Mbuf] = [
            Mbuf(
                index=i,
                address=self.region.start + i * buf_bytes,
                size=buf_bytes,
            )
            for i in range(capacity)
        ]
        self._free: Deque[int] = deque(range(capacity))

    @property
    def capacity(self) -> int:
        return len(self._mbufs)

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def in_flight(self) -> int:
        return self.capacity - self.available

    def alloc(self) -> Optional[Mbuf]:
        """Take a free buffer, or None when the pool is exhausted."""
        if not self._free:
            return None
        mbuf = self._mbufs[self._free.popleft()]
        if mbuf.state is not MbufState.FREE:
            raise ProtocolError(
                f"{self.name}: free list contained {mbuf.state.value} mbuf"
            )
        return mbuf

    def free(self, mbuf: Mbuf, require_relinquish: bool = False) -> None:
        """Recycle a buffer back into the pool."""
        if self._mbufs[mbuf.index] is not mbuf:
            raise ProtocolError(f"{self.name}: foreign mbuf {mbuf.index}")
        mbuf.recycle(require_relinquish=require_relinquish)
        self._free.append(mbuf.index)

    def mbuf(self, index: int) -> Mbuf:
        return self._mbufs[index]

    def states(self) -> "dict[MbufState, int]":
        out = {s: 0 for s in MbufState}
        for m in self._mbufs:
            out[m.state] += 1
        return out
