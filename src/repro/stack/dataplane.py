"""A DPDK-style per-core dataplane wired to the simulated hardware.

This is the "networking library" of §V-A: it owns a mempool of receive
buffers, exposes ``rx_burst``/``reply``/``recycle`` to the application,
and places the ``relinquish`` call exactly where the paper prescribes —
after the application's last read, before the buffer is recycled for NIC
reuse. With Sweeper disabled it degrades to a plain DDIO dataplane whose
consumed buffers leak to memory.

The dataplane drives the same :class:`~repro.cache.hierarchy`
/ injection-policy / QP substrate as the trace engine, so stack-level
experiments and engine-level experiments measure identical hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.core.api import Sweeper
from repro.errors import ConfigError, ProtocolError
from repro.mem.layout import AddressSpace, RegionKind
from repro.nic.ddio import DdioPolicy, InjectionPolicy, make_policy
from repro.nic.qp import NicEngine, QueuePair
from repro.params import CACHE_BLOCK_BYTES, SystemConfig
from repro.stack.mbuf import Mbuf, MbufStats
from repro.stack.mempool import Mempool


@dataclass(frozen=True)
class DataplaneConfig:
    """Stack-level knobs for one dataplane core."""

    burst_size: int = 32
    pool_capacity: int = 1024
    packet_bytes: int = 1024
    tx_entries: int = 64
    sweeper_enabled: bool = True
    policy: str = "ddio"

    def __post_init__(self) -> None:
        if self.burst_size <= 0:
            raise ConfigError("burst_size must be positive")
        if self.pool_capacity <= 0:
            raise ConfigError("pool_capacity must be positive")
        if self.packet_bytes <= 0:
            raise ConfigError("packet_bytes must be positive")


@dataclass
class RxBurst:
    """Result of one rx_burst call."""

    mbufs: List[Mbuf] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.mbufs)

    def __iter__(self):
        return iter(self.mbufs)


class Dataplane:
    """One core's receive/process/transmit loop over the simulated HW."""

    def __init__(
        self,
        system: SystemConfig,
        config: DataplaneConfig,
        core: int = 0,
        hier: Optional[CacheHierarchy] = None,
        space: Optional[AddressSpace] = None,
        policy: Optional[InjectionPolicy] = None,
    ) -> None:
        self.system = system
        self.config = config
        self.core = core
        self.space = space if space is not None else AddressSpace()
        self.hier = hier if hier is not None else CacheHierarchy(system)
        self.policy = (
            policy
            if policy is not None
            else make_policy(config.policy, system.nic.ddio_ways)
        )
        if isinstance(self.policy, DdioPolicy):
            self.policy.bind(self.hier)
        self.pool = Mempool(
            self.space,
            f"dataplane_pool[{core}]",
            config.pool_capacity,
            config.packet_bytes,
            owner_core=core,
        )
        self._tx_region = self.space.allocate(
            f"dataplane_tx[{core}]",
            config.tx_entries * config.packet_bytes,
            RegionKind.TX_BUFFER,
            owner_core=core,
        )
        self._tx_next = 0
        self.sweeper = Sweeper(self.hier, enabled=config.sweeper_enabled)
        self.qp = QueuePair(qp_id=core, core=core)
        self.nic = NicEngine(self.hier, self.policy)
        self._rx_queue: List[Mbuf] = []
        self.stats = MbufStats()
        self.drops = 0

    # ------------------------------------------------------------------
    # NIC side (driven by a traffic generator)
    # ------------------------------------------------------------------

    def nic_receive(self, count: int, packet_bytes: Optional[int] = None) -> int:
        """Deliver ``count`` packets; returns how many were dropped.

        Each delivery allocates an mbuf from the pool and write-allocates
        its blocks via the injection policy, exactly as the NIC would.
        Pool exhaustion is a drop.
        """
        length = packet_bytes if packet_bytes is not None else (
            self.config.packet_bytes
        )
        dropped = 0
        for _ in range(count):
            mbuf = self.pool.alloc()
            if mbuf is None:
                dropped += 1
                continue
            mbuf.give_to_nic()
            blocks_used = -(-length // CACHE_BLOCK_BYTES)
            for block in list(mbuf.blocks)[:blocks_used]:
                self.policy.rx_write(self.hier, self.core, block)
            mbuf.nic_deliver(length)
            self._rx_queue.append(mbuf)
            self.stats.delivered += 1
        self.drops += dropped
        return dropped

    # ------------------------------------------------------------------
    # application side
    # ------------------------------------------------------------------

    def rx_burst(self, max_packets: Optional[int] = None) -> RxBurst:
        """Pick up to ``burst_size`` delivered packets (DPDK rx_burst)."""
        limit = max_packets if max_packets is not None else self.config.burst_size
        if limit <= 0:
            raise ConfigError("burst limit must be positive")
        taken = self._rx_queue[:limit]
        self._rx_queue = self._rx_queue[limit:]
        return RxBurst(mbufs=taken)

    def read_packet(self, mbuf: Mbuf) -> int:
        """Application reads the packet payload; returns blocks touched."""
        blocks = mbuf.app_read()
        for block in blocks:
            self.hier.cpu_read(self.core, block, RegionKind.RX_BUFFER)
        return len(blocks)

    def reply(self, mbuf: Mbuf, response_bytes: int) -> None:
        """Copy a response into a TX buffer and hand it to the NIC."""
        if response_bytes <= 0:
            raise ConfigError("response must be non-empty")
        blocks_needed = -(-response_bytes // CACHE_BLOCK_BYTES)
        slot = self._tx_next % self.config.tx_entries
        self._tx_next += 1
        start = self._tx_region.start_block + slot * (
            self.config.packet_bytes // CACHE_BLOCK_BYTES
        )
        tx_blocks = range(start, start + blocks_needed)
        for block in tx_blocks:
            self.hier.cpu_write(self.core, block, RegionKind.TX_BUFFER)
        self.qp.post_send(tx_blocks)
        self.nic.process_one(self.qp)

    def recycle(self, mbuf: Mbuf) -> None:
        """Relinquish (Sweeper stacks) and return the buffer to the pool.

        The library — not the application — owns the ordering guarantee:
        relinquish always precedes recycling, so the NIC can never race a
        pending sweep (§V-A).
        """
        if self.config.sweeper_enabled:
            blocks = mbuf.relinquish()
            self.sweeper.relinquish_blocks(self.core, blocks)
            self.stats.relinquished += 1
        try:
            self.pool.free(mbuf, require_relinquish=self.config.sweeper_enabled)
        except ProtocolError:
            self.stats.lifecycle_errors += 1
            raise
        self.stats.recycled += 1

    # ------------------------------------------------------------------
    # convenience loop
    # ------------------------------------------------------------------

    def poll_once(self, arrivals: int, response_bytes: int = 64) -> int:
        """One iteration of the canonical loop; returns packets handled."""
        self.nic_receive(arrivals)
        handled = 0
        for mbuf in self.rx_burst():
            self.read_packet(mbuf)
            self.reply(mbuf, response_bytes)
            self.recycle(mbuf)
            handled += 1
        return handled

    def run(self, packets: int, response_bytes: int = 64) -> int:
        """Process ``packets`` arrivals in bursts; returns handled count."""
        handled = 0
        remaining = packets
        while remaining > 0 or self._rx_queue:
            arrivals = min(self.config.burst_size, remaining)
            remaining -= arrivals
            handled += self.poll_once(arrivals, response_bytes)
        return handled
