"""Packet buffer (mbuf) lifecycle with relinquish tracking.

§V-A's correctness contract is a *lifecycle* rule: a buffer instance may
be relinquished only after its last use, must be relinquished before the
NIC recycles it, and must never be read afterwards. This module makes
that lifecycle explicit and machine-checkable, the way a hardened
networking library would enforce it in debug builds:

    FREE -> NIC_OWNED -> (NIC writes) -> APP_OWNED -> (app reads)
         -> RELINQUISHED -> FREE (recycled to the NIC)

Violations raise :class:`~repro.errors.ProtocolError` — e.g. reading a
relinquished buffer (the undefined behaviour the paper compares to
use-after-free) or recycling a consumed buffer without relinquishing it
first (the race §V-A warns about).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import ProtocolError
from repro.params import CACHE_BLOCK_BYTES


class MbufState(Enum):
    """Ownership/lifecycle state of one packet buffer."""

    FREE = "free"
    NIC_OWNED = "nic-owned"
    APP_OWNED = "app-owned"
    RELINQUISHED = "relinquished"


@dataclass
class Mbuf:
    """One packet buffer: a block-aligned span plus lifecycle state."""

    index: int
    address: int
    size: int
    state: MbufState = MbufState.FREE
    packet_length: int = 0
    reads: int = 0
    generation: int = 0

    def __post_init__(self) -> None:
        if self.address % CACHE_BLOCK_BYTES or self.size % CACHE_BLOCK_BYTES:
            raise ProtocolError(f"mbuf {self.index} is not block-aligned")

    @property
    def blocks(self) -> range:
        start = self.address // CACHE_BLOCK_BYTES
        return range(start, start + self.size // CACHE_BLOCK_BYTES)

    def _expect(self, state: MbufState, op: str) -> None:
        if self.state is not state:
            raise ProtocolError(
                f"mbuf {self.index}: {op} in state {self.state.value} "
                f"(expected {state.value})"
            )

    # ------------------------------------------------------------------
    # lifecycle transitions
    # ------------------------------------------------------------------

    def give_to_nic(self) -> None:
        """The stack posts the buffer as a receive descriptor."""
        self._expect(MbufState.FREE, "give_to_nic")
        self.state = MbufState.NIC_OWNED

    def nic_deliver(self, packet_length: int) -> None:
        """The NIC fully overwrites the buffer with an arrived packet."""
        self._expect(MbufState.NIC_OWNED, "nic_deliver")
        if not 0 < packet_length <= self.size:
            raise ProtocolError(
                f"mbuf {self.index}: packet of {packet_length} B does not "
                f"fit buffer of {self.size} B"
            )
        self.state = MbufState.APP_OWNED
        self.packet_length = packet_length
        self.reads = 0
        self.generation += 1

    def app_read(self) -> range:
        """The application reads the packet; returns its blocks.

        Reading a relinquished buffer is the paper's undefined behaviour
        and is rejected loudly here.
        """
        if self.state is MbufState.RELINQUISHED:
            raise ProtocolError(
                f"mbuf {self.index}: read after relinquish (undefined "
                "behaviour, like use-after-free)"
            )
        self._expect(MbufState.APP_OWNED, "app_read")
        self.reads += 1
        blocks_used = -(-self.packet_length // CACHE_BLOCK_BYTES)
        return range(self.blocks.start, self.blocks.start + blocks_used)

    def relinquish(self) -> range:
        """Declare the instance dead; contents are lost after this."""
        self._expect(MbufState.APP_OWNED, "relinquish")
        self.state = MbufState.RELINQUISHED
        return self.blocks

    def recycle(self, require_relinquish: bool) -> None:
        """Return the buffer to the free pool for NIC reuse.

        With ``require_relinquish`` (a Sweeper-enabled stack), recycling
        a consumed-but-unrelinquished buffer is the §V-A race and is
        rejected; without it (baseline stack), APP_OWNED buffers recycle
        directly and their dirty blocks stay live in the caches.
        """
        if self.state is MbufState.RELINQUISHED:
            self.state = MbufState.FREE
            return
        if self.state is MbufState.APP_OWNED:
            if require_relinquish:
                raise ProtocolError(
                    f"mbuf {self.index}: recycled without relinquish "
                    "(race with NIC reuse, §V-A)"
                )
            self.state = MbufState.FREE
            return
        raise ProtocolError(
            f"mbuf {self.index}: recycle in state {self.state.value}"
        )


@dataclass
class MbufStats:
    """Aggregate lifecycle accounting for a pool."""

    delivered: int = 0
    relinquished: int = 0
    recycled: int = 0
    lifecycle_errors: int = 0
    last_error: Optional[str] = field(default=None)
