"""System configuration mirroring Table I of the Sweeper paper.

The defaults model the paper's simulated server: a 24-core Ice-Lake-class
CPU at 3.2 GHz with private L1/L2 caches, a shared non-inclusive 36 MB
12-way LLC operating as a victim cache for L2 evictions, and 3-8 channels
of DDR4-3200 memory.

Every size is expressed in bytes and every latency in CPU cycles unless
noted otherwise. ``SystemConfig.scaled`` shrinks the machine while
preserving the capacity ratios (buffer footprint vs. LLC capacity,
bandwidth per core) that drive all of the paper's results, so tests and
quick benchmark runs stay fast without changing any qualitative outcome.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError

CACHE_BLOCK_BYTES = 64
KiB = 1024
MiB = 1024 * 1024


@dataclass(frozen=True)
class CacheParams:
    """Geometry, access latency, and replacement of one cache level.

    ``replacement`` is ``"lru"`` (private caches) or ``"random"``. The
    shared LLC defaults to random: commercial LLCs use hashed indexing
    and pseudo-LRU approximations whose behaviour under a thrashing
    ring-buffer scan is probabilistic, which is what lets extra DDIO
    ways retain a proportional fraction of the ring (Figure 5's
    gradual improvement) instead of LRU's all-or-nothing cliff.
    """

    size_bytes: int
    ways: int
    latency_cycles: int
    block_bytes: int = CACHE_BLOCK_BYTES
    replacement: str = "lru"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0:
            raise ConfigError("cache size and associativity must be positive")
        if self.size_bytes % (self.ways * self.block_bytes) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} is not divisible into "
                f"{self.ways} ways of {self.block_bytes}B blocks"
            )
        if self.replacement not in ("lru", "random"):
            raise ConfigError(
                f"unknown replacement policy: {self.replacement!r}"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_bytes)

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    def with_sets(self, num_sets: int) -> "CacheParams":
        """Return a copy resized to ``num_sets`` sets (same ways/latency)."""
        return dataclasses.replace(
            self, size_bytes=num_sets * self.ways * self.block_bytes
        )


@dataclass(frozen=True)
class CpuParams:
    """Core count, frequency, and the analytic service-time knobs.

    ``mlp_llc`` and ``mlp_mem`` are memory-level-parallelism divisors: the
    effective critical-path cost of an access serviced at that level is
    ``latency / mlp``. They stand in for the out-of-order window of the
    paper's zSim cores (352-entry ROB, 5-wide) without simulating it.

    ``llc_load_coupling`` couples LLC-hit latency to DRAM queueing: the
    LLC's fill and writeback machinery shares queues with the memory
    controllers, so a bandwidth-saturated memory system slows even
    LLC-resident traffic. This is what makes an LLC-hit-heavy tenant
    (the §VI-E L3 forwarder) feel consumed-buffer-eviction pressure.
    """

    num_cores: int = 24
    freq_ghz: float = 3.2
    mlp_l2: float = 2.0
    mlp_llc: float = 6.0
    mlp_mem: float = 12.0
    llc_load_coupling: float = 0.25

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        if self.freq_ghz <= 0:
            raise ConfigError("freq_ghz must be positive")

    @property
    def cycles_per_us(self) -> float:
        return self.freq_ghz * 1000.0


@dataclass(frozen=True)
class MemoryParams:
    """DDR4 channel provisioning and the load-latency curve parameters.

    A DDR4-3200 channel peaks at 25.6 GB/s; random server traffic achieves
    only a fraction of that before bank conflicts and turnarounds saturate
    the channel, captured by ``efficiency``. ``idle_latency_cycles`` is the
    unloaded LLC-miss-to-data latency; queueing delay grows hyperbolically
    as utilization approaches ``efficiency`` (see ``repro.mem.dram``).
    """

    num_channels: int = 4
    channel_peak_gbps: float = 25.6
    efficiency: float = 0.60
    idle_latency_cycles: int = 170
    queue_scale_cycles: float = 60.0
    ranks_per_channel: int = 4
    banks_per_rank: int = 8

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ConfigError("num_channels must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigError("efficiency must be in (0, 1]")

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate raw pin bandwidth across all channels (GB/s)."""
        return self.num_channels * self.channel_peak_gbps

    @property
    def usable_bandwidth_gbps(self) -> float:
        """Sustainable bandwidth for random traffic (GB/s)."""
        return self.peak_bandwidth_gbps * self.efficiency


@dataclass(frozen=True)
class NicParams:
    """NIC/network-stack provisioning (Scale-Out-NUMA-style endpoint)."""

    rx_buffers_per_core: int = 1024
    tx_buffers_per_core: int = 64
    packet_bytes: int = 1024
    ddio_ways: int = 2
    noc_latency_cycles: int = 8

    def __post_init__(self) -> None:
        if self.rx_buffers_per_core <= 0 or self.tx_buffers_per_core <= 0:
            raise ConfigError("ring sizes must be positive")
        if self.packet_bytes <= 0:
            raise ConfigError("packet_bytes must be positive")
        if self.ddio_ways < 0:
            raise ConfigError("ddio_ways must be non-negative")

    @property
    def blocks_per_packet(self) -> int:
        return (self.packet_bytes + CACHE_BLOCK_BYTES - 1) // CACHE_BLOCK_BYTES

    @property
    def rx_footprint_bytes_per_core(self) -> int:
        return self.rx_buffers_per_core * self.blocks_per_packet * CACHE_BLOCK_BYTES


def _default_l1() -> CacheParams:
    return CacheParams(size_bytes=48 * KiB, ways=12, latency_cycles=4)


def _default_l2() -> CacheParams:
    return CacheParams(size_bytes=1280 * KiB, ways=20, latency_cycles=14)


def _default_llc() -> CacheParams:
    return CacheParams(
        size_bytes=36 * MiB, ways=12, latency_cycles=35, replacement="random"
    )


@dataclass(frozen=True)
class SystemConfig:
    """Complete simulated-server configuration (Table I defaults)."""

    cpu: CpuParams = field(default_factory=CpuParams)
    l1: CacheParams = field(default_factory=_default_l1)
    l2: CacheParams = field(default_factory=_default_l2)
    llc: CacheParams = field(default_factory=_default_llc)
    memory: MemoryParams = field(default_factory=MemoryParams)
    nic: NicParams = field(default_factory=NicParams)

    def __post_init__(self) -> None:
        if self.nic.ddio_ways > self.llc.ways:
            raise ConfigError(
                f"ddio_ways={self.nic.ddio_ways} exceeds LLC ways={self.llc.ways}"
            )
        blocks = {self.l1.block_bytes, self.l2.block_bytes, self.llc.block_bytes}
        if len(blocks) != 1:
            raise ConfigError("all cache levels must share one block size")

    @property
    def block_bytes(self) -> int:
        return self.llc.block_bytes

    @property
    def ddio_capacity_bytes(self) -> int:
        """LLC capacity reachable by NIC write-allocations."""
        return self.llc.num_sets * self.nic.ddio_ways * self.block_bytes

    @property
    def total_rx_footprint_bytes(self) -> int:
        return self.cpu.num_cores * self.nic.rx_footprint_bytes_per_core

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def with_nic(self, **kwargs) -> "SystemConfig":
        return self.replace(nic=dataclasses.replace(self.nic, **kwargs))

    def with_memory(self, **kwargs) -> "SystemConfig":
        return self.replace(memory=dataclasses.replace(self.memory, **kwargs))

    def with_cpu(self, **kwargs) -> "SystemConfig":
        return self.replace(cpu=dataclasses.replace(self.cpu, **kwargs))

    def scaled(self, factor: float) -> "SystemConfig":
        """Shrink the machine by ``factor`` while preserving ratios.

        Cores, LLC sets, and memory channels' aggregate bandwidth scale
        together, so buffer-footprint/LLC-capacity and bandwidth-per-core
        ratios — the quantities all figures depend on — are unchanged.
        Private L1/L2 geometry is untouched (per-core footprints do not
        scale with the machine). ``factor`` must be in (0, 1].
        """
        if not 0.0 < factor <= 1.0:
            raise ConfigError("scale factor must be in (0, 1]")
        if factor == 1.0:
            return self
        cores = max(1, round(self.cpu.num_cores * factor))
        real_factor = cores / self.cpu.num_cores
        llc_sets = max(self.llc.ways, round(self.llc.num_sets * real_factor))
        bw_per_channel = self.memory.channel_peak_gbps * real_factor
        return dataclasses.replace(
            self,
            cpu=dataclasses.replace(self.cpu, num_cores=cores),
            llc=self.llc.with_sets(llc_sets),
            memory=dataclasses.replace(
                self.memory, channel_peak_gbps=bw_per_channel
            ),
        )


#: The paper's Table I machine.
TABLE1 = SystemConfig()
