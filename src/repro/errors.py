"""Exception types for the Sweeper reproduction library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """A system or experiment configuration is invalid or inconsistent."""


class AddressError(ReproError):
    """An address falls outside every declared region of the layout."""


class ProtocolError(ReproError):
    """A NIC/QP protocol invariant was violated (e.g. ring overflow misuse)."""


class SweepPermissionError(ReproError):
    """A process used clsweep without the clsweep-permission syscall."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""
