"""Policy-driven job scheduler with tenant admission and in-flight dedup.

The scheduler owns three pieces of shared state, all guarded by one
lock:

* a **policy queue** of submitted jobs — a pluggable
  :class:`repro.sched.policy.PolicyQueue` (``fifo | priority | wfq``,
  selected by ``REPRO_SCHED_POLICY`` or the ``--policy`` flag; the
  default ``priority`` reproduces the historical behavior: higher
  ``priority`` first, FIFO within a priority). Admission control is
  **per tenant** (DESIGN.md §15): every job carries a tenant id, and a
  submission beyond the tenant's quota (``REPRO_TENANTS``, defaulting
  to ``queue_limit`` per tenant) raises :class:`QuotaExceeded`; a
  tenant with a configured ``rate`` that outruns its token bucket
  raises :class:`RateLimited`. Both subclass :class:`QueueFull`, which
  the HTTP layer renders as a 429 naming the tenant, its limit, and
  current usage.
* an **in-flight table** ``fingerprint -> Future`` keyed by
  :func:`repro.engine.pointcache.fingerprint`. When two jobs need the
  same point, the second *attaches* to the first's future instead of
  simulating again — cross-job dedup. Completed simulations are stored
  into the persistent point cache, so later identical submissions hit
  the cache without simulating at all.
* the **job table** ``id -> Job`` for the API's lookups.

Execution reuses the exact worker entry point of
:func:`repro.engine.parallel.run_points` (``run_spec``), fanned out over
a ``ProcessPoolExecutor`` (``REPRO_WORKERS`` > 1) or an in-process
single thread (``REPRO_WORKERS=1``); either way a served point is
bit-identical to a local run. Each job writes the usual run manifest
via the helpers shared with ``run_points``.

Cancellation: a queued job is dropped before it starts; a running job
stops waiting at the next point boundary. Points already handed to the
executor run to completion (their results still land in the point
cache — they may be shared with other jobs), they are just no longer
waited on.

Fault tolerance (DESIGN.md §9): a failed point attempt is retried with
exponential backoff (``REPRO_RETRIES`` / ``REPRO_RETRY_BACKOFF_S``); a
collapsed process pool is rebuilt (generation-counted, so racing job
threads rebuild at most once per collapse) and its in-flight points
retried; ``REPRO_POINT_TIMEOUT_S`` abandons straggler attempts. Every
job exit path — done, failed, cancelled, daemon drain — finalizes the
run manifest with a ``status``, so ``results/runs/`` never holds an
orphaned manifest-less directory. :meth:`JobScheduler.drain` (wired to
SIGTERM by ``repro.serve.app``) stops dispatching and lets running jobs
stop at the next point boundary with a ``partial`` manifest.
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import (
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Tuple

from repro.engine import pointcache, snapshot
from repro.errors import ConfigError
from repro.engine.parallel import (
    backoff_delay,
    default_workers,
    finish_manifest,
    point_timeout_s,
    retry_backoff_s,
    retry_limit,
    run_spec,
    start_manifest,
)
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry
from repro.sched.policy import make_policy, sched_policy
from repro.sched.tenants import (
    DEFAULT_TENANT,
    TenantTable,
    TokenBucket,
    guarded_labels,
)
from repro.serve.jobs import Job, JobRequest

DEFAULT_QUEUE_LIMIT = 64
DEFAULT_MAX_CONCURRENT_JOBS = 4

#: execution backends (DESIGN.md §10): ``local`` keeps the daemon's own
#: executor; ``cluster`` hands every fresh point to the lease queue for
#: remote workers; ``hybrid`` additionally runs an embedded worker agent
#: in-process so the daemon's own cores drain the same queue.
BACKENDS = ("local", "cluster", "hybrid")


class QueueFull(Exception):
    """Admission control rejected a submission (HTTP 429)."""


class QuotaExceeded(QueueFull):
    """A tenant has its full quota of jobs already queued."""

    def __init__(self, tenant: str, quota: int, usage: int) -> None:
        super().__init__(
            f"tenant {tenant!r} quota exceeded "
            f"({usage}/{quota} jobs queued)"
        )
        self.tenant = tenant
        self.quota = quota
        self.usage = usage


class RateLimited(QueueFull):
    """A tenant's submissions outran its configured admission rate."""

    def __init__(self, tenant: str, rate: float, usage: int) -> None:
        super().__init__(
            f"tenant {tenant!r} rate limited "
            f"(over {rate:g} jobs/s; {usage} jobs queued)"
        )
        self.tenant = tenant
        self.rate = rate
        self.usage = usage


class UnknownJob(KeyError):
    """No job with the given id (HTTP 404)."""


class JobScheduler:
    """Schedules jobs onto a shared simulation executor."""

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_concurrent_jobs: int = DEFAULT_MAX_CONCURRENT_JOBS,
        registry: Optional[MetricsRegistry] = None,
        simulate=run_spec,
        backend: str = "local",
        policy: Optional[str] = None,
        tenants: Optional[TenantTable] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        # Fail fast on a malformed size knob at daemon startup — the
        # store path deliberately degrades to a warning (DESIGN.md §14).
        pointcache.cache_max_bytes()
        self.workers = workers if workers is not None else default_workers()
        self.queue_limit = queue_limit
        self.max_concurrent_jobs = max_concurrent_jobs
        self.registry = registry if registry is not None else MetricsRegistry()
        self._simulate = simulate
        self.backend = backend
        self.policy = policy if policy is not None else sched_policy()
        self.tenants = tenants if tenants is not None else TenantTable.from_env()
        self.coordinator = None
        if backend != "local":
            # Deferred import: repro.cluster.worker imports repro.serve.
            from repro.cluster.coordinator import ClusterCoordinator

            self.coordinator = ClusterCoordinator(
                registry=self.registry,
                policy=self.policy,
                tenants=self.tenants,
            )
        self._embedded_agent = None
        self._embedded_thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queue = make_policy(self.policy, self.tenants)
        self._queued = 0
        self._running = 0
        self._tenant_queued: Dict[str, int] = {}
        self._tenant_running: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Future] = {}
        self._stopping = False
        self._draining = False
        self._dispatcher: Optional[threading.Thread] = None
        self._job_threads: List[threading.Thread] = []
        self._executor = None
        self._executor_gen = 0
        self._log = obs_events.get_event_log()
        self._init_metrics()

    def _init_metrics(self) -> None:
        r = self.registry
        self.m_queue_depth = r.gauge(
            "serve_queue_depth", "jobs waiting in the scheduler queue"
        )
        self.m_running_jobs = r.gauge(
            "serve_running_jobs", "jobs currently executing"
        )
        self.m_submitted = r.counter(
            "serve_jobs_submitted_total", "jobs accepted into the queue"
        )
        self.m_rejected = r.counter(
            "serve_jobs_rejected_total",
            "jobs rejected by admission control (429)",
        )
        self.m_finished = r.counter(
            "serve_jobs_finished_total",
            "jobs reaching a terminal state",
            labels=("state",),
        )
        self.m_points = r.counter(
            "serve_points_total", "points served, by provenance",
            labels=("source",),
        )
        self.m_retries = r.counter(
            "serve_point_retries_total", "point attempts retried"
        )
        self.m_rebuilds = r.counter(
            "serve_pool_rebuilds_total", "executor rebuilds after a collapse"
        )
        self.m_job_seconds = r.histogram(
            "serve_job_seconds", "wall-clock seconds per finished job"
        )
        # Per-tenant families: the tenant label is client-controlled, so
        # every .labels() call goes through guarded_labels (cardinality
        # cap degrades to an _overflow series, never a crash).
        self.m_tenant_submitted = r.counter(
            "serve_tenant_jobs_submitted_total",
            "jobs accepted into the queue, by tenant",
            labels=("tenant",),
        )
        self.m_tenant_rejected = r.counter(
            "serve_tenant_jobs_rejected_total",
            "admission rejections, by tenant and reason",
            labels=("tenant", "reason"),
        )
        self.m_tenant_points = r.counter(
            "serve_tenant_points_total",
            "points delivered to finished work, by tenant",
            labels=("tenant",),
        )
        self.m_tenant_queued_g = r.gauge(
            "serve_tenant_queued_jobs",
            "jobs waiting in the queue, by tenant",
            labels=("tenant",),
        )

    # -- lifecycle ------------------------------------------------------

    def _new_executor(self):
        if self.workers > 1:
            return ProcessPoolExecutor(max_workers=self.workers)
        # Single-worker mode stays in-process: no pool spawn cost and
        # injectable simulate callables (tests).
        return ThreadPoolExecutor(max_workers=1)

    def start(self) -> None:
        """Create the executor and dispatcher thread (idempotent)."""
        with self._lock:
            if self._dispatcher is not None:
                return
            self._executor = self._new_executor()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatcher", daemon=True
            )
            self._dispatcher.start()
        if self.coordinator is not None:
            self.coordinator.start()
        if self.backend == "hybrid":
            self._start_embedded_agent()

    def _start_embedded_agent(self) -> None:
        """Hybrid mode: an in-process worker agent drains the same lease
        queue as remote workers, using the daemon's own cores."""
        from repro.cluster.worker import LocalTransport, WorkerAgent

        simulate = None
        if self._simulate is not run_spec:
            # An injected simulate callable (tests) is not picklable
            # across processes; the agent then runs it in-process.
            simulate = lambda spec: self._simulate(spec, None)  # noqa: E731
        self._embedded_agent = WorkerAgent(
            LocalTransport(self.coordinator),
            capacity=self.workers,
            name="embedded",
            simulate=simulate,
        )
        self._embedded_thread = threading.Thread(
            target=self._embedded_agent.run,
            name="serve-embedded-worker",
            daemon=True,
        )
        self._embedded_thread.start()

    def stop(self, wait: bool = True) -> None:
        """Stop dispatching; running simulations are abandoned."""
        with self._lock:
            self._stopping = True
            self._wake.notify_all()
            dispatcher = self._dispatcher
            threads = list(self._job_threads)
            executor = self._executor
        if wait and dispatcher is not None:
            dispatcher.join(timeout=10)
        for thread in threads:
            if wait:
                thread.join(timeout=10)
        if self._embedded_agent is not None:
            self._embedded_agent.drain()
            if wait and self._embedded_thread is not None:
                self._embedded_thread.join(timeout=10)
        if self.coordinator is not None:
            self.coordinator.stop()
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def drain(self) -> None:
        """Stop launching jobs; running jobs stop at the next point
        boundary (their manifests finalize as ``partial``). Queued jobs
        stay queued — a later restart can still see them in the job
        table. ``/healthz`` reports ``draining`` while this is in
        effect."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
            self._wake.notify_all()
        if self.coordinator is not None:
            # Lease / heartbeat replies now carry draining=true, telling
            # workers to finish their current lease and wind down.
            self.coordinator.drain()
        self._log.info("serve.draining")

    @property
    def draining(self) -> bool:
        return self._draining

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is executing; False if ``timeout`` expires."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._wake:
            while self._running > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._wake.wait(
                    timeout=0.5 if remaining is None else min(0.5, remaining)
                )
        return True

    def _maybe_rebuild(self, gen: int) -> None:
        """Replace a collapsed executor (once per collapse).

        ``gen`` is the generation the caller's future was submitted
        under; if another job thread already rebuilt (generation moved
        on) this is a no-op, so N threads observing the same
        ``BrokenProcessPool`` trigger exactly one rebuild. All in-flight
        futures belong to the dead pool at that point, so the dedup
        table is cleared wholesale — attachers observe the broken
        future and re-acquire against the new pool.
        """
        with self._lock:
            if self._stopping or self._executor_gen != gen:
                return
            old = self._executor
            self._executor = self._new_executor()
            self._executor_gen += 1
            self._inflight.clear()
        self.m_rebuilds.inc()
        self._log.warning("serve.pool.rebuild", workers=self.workers)
        old.shutdown(wait=False, cancel_futures=True)

    # -- submission / lookup / cancel -----------------------------------

    def _tenant_quota(self, tenant: str) -> int:
        """Effective queued-jobs quota for a tenant: its configured
        ``quota``, else ``queue_limit`` (per tenant) — which for a
        single-tenant deployment is exactly the old global bound."""
        config = self.tenants.get(tenant)
        return config.quota if config.quota is not None else self.queue_limit

    def submit(self, request: JobRequest) -> Job:
        """Queue a job; rejections raise a :class:`QueueFull` subclass.

        Admission is per tenant: a :class:`QuotaExceeded` names the
        tenant, its quota, and how many of its jobs are already queued
        (one tenant's backlog no longer starves admission for the
        rest); a :class:`RateLimited` fires when a configured ``rate``
        token bucket runs dry.
        """
        tenant = getattr(request, "tenant", DEFAULT_TENANT)
        config = self.tenants.get(tenant)
        with self._lock:
            usage = self._tenant_queued.get(tenant, 0)
            if config.rate is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = TokenBucket(config.rate, config.burst)
                    self._buckets[tenant] = bucket
                if not bucket.allow():
                    self.m_rejected.inc()
                    guarded_labels(
                        self.m_tenant_rejected, tenant=tenant, reason="rate"
                    ).inc()
                    raise RateLimited(tenant, config.rate, usage)
            quota = self._tenant_quota(tenant)
            if usage >= quota:
                self.m_rejected.inc()
                guarded_labels(
                    self.m_tenant_rejected, tenant=tenant, reason="quota"
                ).inc()
                raise QuotaExceeded(tenant, quota, usage)
            job = Job(request)
            self._jobs[job.id] = job
            self._queue.push(
                job,
                tenant=tenant,
                cost=float(max(1, len(request.specs))),
                priority=request.priority,
            )
            self._queued += 1
            self._tenant_queued[tenant] = usage + 1
            self.m_queue_depth.set(self._queued)
            self.m_submitted.inc()
            guarded_labels(self.m_tenant_submitted, tenant=tenant).inc()
            guarded_labels(self.m_tenant_queued_g, tenant=tenant).set(
                usage + 1
            )
            self._wake.notify_all()
        self._log.info(
            "serve.job.submitted",
            job=job.id,
            name=request.name,
            tenant=tenant,
            points=len(request.specs),
            priority=request.priority,
        )
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: j.created_unix
            )

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (terminal jobs are a no-op).

        The terminal transition happens *under the scheduler lock* and
        only the caller whose ``finish`` claims it touches the queue
        count and metrics — racing cancels of the same job can neither
        double-decrement ``_queued`` (driving ``serve_queue_depth``
        negative and leaking an admission slot) nor double-increment
        ``serve_jobs_finished_total``.
        """
        job = self.get(job_id)
        claimed = False
        with self._lock:
            job.cancel_requested = True
            if job.state == "queued" and job.finish("cancelled"):
                # Lazy queue deletion: the dispatcher skips finished jobs.
                claimed = True
                self._queued -= 1
                self.m_queue_depth.set(self._queued)
                self._dec_tenant_queued(job.request.tenant)
        if claimed:
            self.m_finished.labels(state="cancelled").inc()
        self._log.info("serve.job.cancel", job=job.id, state=job.state)
        return job

    def counts(self) -> Dict[str, int]:
        """Job counts by state (for /healthz)."""
        with self._lock:
            jobs = list(self._jobs.values())
        out = {state: 0 for state in ("queued", "running", "done", "failed", "cancelled")}
        for job in jobs:
            out[job.state] = out.get(job.state, 0) + 1
        return out

    def _dec_tenant_queued(self, tenant: str) -> None:
        """Drop one queued job from a tenant's count (lock held)."""
        left = self._tenant_queued.get(tenant, 1) - 1
        if left <= 0:
            self._tenant_queued.pop(tenant, None)
            left = 0
        else:
            self._tenant_queued[tenant] = left
        guarded_labels(self.m_tenant_queued_g, tenant=tenant).set(left)

    def tenant_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant queue/run/config snapshot (for ``/healthz``)."""
        with self._lock:
            queued = dict(self._tenant_queued)
            running = dict(self._tenant_running)
        names = set(queued) | set(running) | set(self.tenants.names())
        out: Dict[str, Dict[str, object]] = {}
        for name in sorted(names):
            config = self.tenants.get(name)
            out[name] = {
                "queued": queued.get(name, 0),
                "running": running.get(name, 0),
                "weight": config.weight,
                "quota": self._tenant_quota(name),
                "rate": config.rate,
            }
        return out

    # -- dispatch -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and (
                    self._draining
                    or not (
                        len(self._queue)
                        and self._running < self.max_concurrent_jobs
                    )
                ):
                    self._wake.wait(timeout=0.5)
                if self._stopping:
                    return
                job = self._queue.pop()
                if job is None or job.state != "queued":
                    continue  # lazily deleted (cancelled) entry
                # Still under the lock: once the job leaves "queued",
                # a racing cancel() can no longer treat it as queued.
                job.mark_running()
                tenant = job.request.tenant
                self._queued -= 1
                self._running += 1
                self._dec_tenant_queued(tenant)
                self._tenant_running[tenant] = (
                    self._tenant_running.get(tenant, 0) + 1
                )
                self.m_queue_depth.set(self._queued)
                self.m_running_jobs.set(self._running)
                thread = threading.Thread(
                    target=self._run_job_thread,
                    args=(job,),
                    name=f"serve-{job.id}",
                    daemon=True,
                )
                self._job_threads.append(thread)
            thread.start()

    def _run_job_thread(self, job: Job) -> None:
        try:
            self._run_job(job)
        except BaseException as exc:  # defensive: never kill the daemon
            if job.finish("failed", error=f"{type(exc).__name__}: {exc}"):
                self.m_finished.labels(state="failed").inc()
        finally:
            with self._lock:
                self._running -= 1
                tenant = job.request.tenant
                left = self._tenant_running.get(tenant, 1) - 1
                if left <= 0:
                    self._tenant_running.pop(tenant, None)
                else:
                    self._tenant_running[tenant] = left
                self.m_running_jobs.set(self._running)
                self._job_threads = [
                    t for t in self._job_threads
                    if t is not threading.current_thread()
                ]
                self._wake.notify_all()

    # -- per-job execution ----------------------------------------------

    def _acquire_point(
        self, spec, run_dir: Optional[str], tenant: str = DEFAULT_TENANT
    ) -> Tuple[str, Optional[object], Optional[Future], bool, int]:
        """Resolve one spec to (source, result, future, owner, gen).

        Cache hit -> ("cache", result, None, False, gen); in-flight
        identical simulation -> ("dedup", None, future, False, gen);
        otherwise submit a fresh simulation -> ("simulated", None,
        future, True, gen). ``gen`` is the executor generation the
        future belongs to, for :meth:`_maybe_rebuild`.

        With a cluster/hybrid backend the fresh submission goes to the
        coordinator's lease queue instead of the local executor; the
        returned future resolves when a worker uploads the result (or
        fails with :class:`repro.cluster.coordinator.LeaseExpired` when
        the worker misses its heartbeat deadline — charged and retried
        by the caller exactly like a local crash). Everything
        downstream — dedup, retries, timeouts, manifests — is backend
        agnostic.
        """
        fp = pointcache.fingerprint(spec)
        if pointcache.cache_enabled():
            cached = pointcache.load(fp, require_attrs=pointcache.RESULT_ATTRS)
            if cached is not None:
                cached.label = spec.label
                cached.from_cache = True
                cached.timeline_file = None
                cached.worker_id = None
                return "cache", cached, None, False, self._executor_gen
        with self._lock:
            future = self._inflight.get(fp)
            if future is not None:
                return "dedup", None, future, False, self._executor_gen
            if self.coordinator is not None:
                # Lock order scheduler -> coordinator shard; submit only
                # enqueues (it never resolves futures), so this cannot
                # re-enter the scheduler lock.
                future = self.coordinator.submit(spec, run_dir, tenant=tenant)
            else:
                try:
                    future = self._executor.submit(
                        self._simulate, spec, run_dir
                    )
                except BrokenProcessPool:
                    # The pool died between two jobs' submissions:
                    # rebuild inline (we already hold the lock) and
                    # resubmit.
                    old = self._executor
                    self._executor = self._new_executor()
                    self._executor_gen += 1
                    self._inflight.clear()
                    old.shutdown(wait=False, cancel_futures=True)
                    future = self._executor.submit(
                        self._simulate, spec, run_dir
                    )
            gen = self._executor_gen
            self._inflight[fp] = future
        future.add_done_callback(
            lambda fut, fp=fp: self._point_finished(fp, fut)
        )
        return "simulated", None, future, True, gen

    def _point_finished(self, fp: str, future: Future) -> None:
        """Executor callback: retire the in-flight entry, persist result."""
        with self._lock:
            # Identity check: an abandoned straggler completing late must
            # not evict the retry's fresh future from the dedup table.
            if self._inflight.get(fp) is future:
                self._inflight.pop(fp)
        if future.cancelled() or future.exception() is not None:
            return
        if pointcache.cache_enabled():
            try:
                pointcache.store(fp, future.result())
            except Exception:
                pass  # a failed store is only a lost cache entry

    def _abandon_inflight(self, spec, future: Future) -> bool:
        """Stop dedup-attaching to a straggler we gave up waiting on.

        Returns True when the attempt never started (the cancel landed
        while it was still queued) — such a timeout is the executor's
        backlog, not the point's fault, and must not be charged.
        """
        cancelled = future.cancel()  # only succeeds if it never started
        fp = pointcache.fingerprint(spec)
        with self._lock:
            if self._inflight.get(fp) is future:
                self._inflight.pop(fp)
        return cancelled

    def _run_job(self, job: Job) -> None:
        t0 = time.perf_counter()
        tenant = getattr(job.request, "tenant", DEFAULT_TENANT)
        manifest, run_dir = start_manifest(
            f"serve-{job.request.name}", self.workers, tenant=tenant
        )
        if manifest is not None:
            job.run_id = manifest.run_id
        run_dir_arg = str(run_dir) if run_dir is not None else None
        specs = job.request.specs
        total = len(specs)
        results: List[Optional[object]] = [None] * total
        attempts: List[int] = [0] * total
        errors: Dict[int, str] = {}
        retries = retry_limit()
        backoff = retry_backoff_s()
        timeout = point_timeout_s()

        def finalize(status: str) -> None:
            if manifest is not None and run_dir is not None:
                finish_manifest(
                    manifest,
                    run_dir,
                    specs,
                    results,
                    time.perf_counter() - t0,
                    status=status,
                    errors=errors,
                    attempts=attempts,
                )

        def interrupted() -> bool:
            return job.cancel_requested or self._draining

        try:
            # Acquire everything up front so identical points across the
            # job dedup onto one simulation. Warmup-group leaders are
            # acquired (and therefore submitted) first so the shared
            # warm-state snapshot likely exists by the time a follower
            # simulates — opportunistic, unlike run_points' hard gating:
            # a follower that races its leader just warms up normally.
            acquired: List[Optional[Tuple]] = [None] * total
            for index in snapshot.leader_order(specs):
                if interrupted():
                    break
                acquired[index] = self._acquire_point(
                    specs[index], run_dir_arg, tenant
                )
                attempts[index] = 1
            for index, spec in enumerate(specs):
                if interrupted() or errors:
                    break
                entry = acquired[index]
                if entry is None:  # acquisition was interrupted
                    break
                source, result, future, owner, gen = entry
                while True:
                    if future is None:  # cache hit
                        break
                    charged = True
                    error: Optional[str] = None
                    try:
                        if owner and timeout is not None:
                            result = future.result(timeout=timeout)
                        else:
                            result = future.result()
                    except FuturesTimeout:
                        if self._abandon_inflight(spec, future):
                            error = "cancelled before start (queued past timeout)"
                            charged = False
                        else:
                            error = (
                                f"TimeoutError: attempt exceeded {timeout}s"
                            )
                    except CancelledError:
                        # Collateral of a pool rebuild's cancel_futures:
                        # the attempt never ran, so it costs nothing.
                        error = "cancelled before start"
                        charged = False
                    except BrokenProcessPool as exc:
                        self._maybe_rebuild(gen)
                        error = f"{type(exc).__name__}: {exc}"
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    if error is None:
                        if not owner:
                            # Shared with the owning job: take a private
                            # copy and stamp our label; we did not pay
                            # for the simulation.
                            result = copy.copy(result)
                            result.label = spec.label
                            result.from_cache = True
                            result.timeline_file = None
                        break
                    if charged and attempts[index] > retries:
                        errors[index] = error
                        break
                    if interrupted():
                        break  # leave the point skipped, not retried
                    if charged:
                        delay = backoff_delay(backoff, attempts[index])
                        job.point_retry(spec.label, error, attempts[index])
                        self.m_retries.inc()
                        self._log.warning(
                            "serve.point.retry",
                            job=job.id,
                            label=spec.label,
                            attempt=attempts[index],
                            backoff_s=delay,
                            error=error,
                        )
                        if delay:
                            time.sleep(delay)
                        attempts[index] += 1
                    source, result, future, owner, gen = (
                        self._acquire_point(spec, run_dir_arg, tenant)
                    )
                if index in errors or (result is None and future is not None):
                    break  # permanent failure, or interrupted mid-wait
                if result is None:
                    break  # interrupted before a result materialized
                results[index] = result
                self.m_points.labels(source=source).inc()
                guarded_labels(self.m_tenant_points, tenant=tenant).inc()
                job.point_done(spec.label, source, result.sim_seconds)
        except BaseException:
            # Unexpected abort: still leave a finalized manifest behind
            # (the thread backstop records the error on the job).
            finalize("failed")
            raise
        wall = time.perf_counter() - t0
        completed = sum(1 for r in results if r is not None)
        if job.cancel_requested:
            status, final_state, error = "cancelled", "cancelled", None
        elif errors:
            first = min(errors)
            status, final_state = "failed", "failed"
            error = f"point {specs[first].label!r}: {errors[first]}"
        elif self._draining and completed < total:
            status, final_state = "partial", "cancelled"
            error = "drained: daemon shutting down"
        else:
            status, final_state, error = "done", "done", None
            job.results = [r for r in results if r is not None]
        # Finalize the manifest *before* the terminal transition: the
        # moment a client can observe the terminal state, the artifacts
        # and metrics must already agree with it.
        finalize(status)
        if job.finish(final_state, error=error):
            self.m_finished.labels(state=final_state).inc()
        if status != "done":
            return
        self.m_job_seconds.observe(wall)
        self._log.info(
            "serve.job.finish",
            job=job.id,
            name=job.request.name,
            points=len(job.results),
            cached=job.cached_points,
            deduped=job.deduped_points,
            retried=job.retried_points,
            wall_s=wall,
        )
