"""Priority job scheduler with admission control and in-flight dedup.

The scheduler owns three pieces of shared state, all guarded by one
lock:

* a **priority queue** of submitted jobs — higher ``priority`` first,
  FIFO within a priority (heap keyed ``(-priority, seq)``). Admission
  control bounds it: submissions beyond ``queue_limit`` waiting jobs
  raise :class:`QueueFull`, which the HTTP layer renders as 429.
* an **in-flight table** ``fingerprint -> Future`` keyed by
  :func:`repro.engine.pointcache.fingerprint`. When two jobs need the
  same point, the second *attaches* to the first's future instead of
  simulating again — cross-job dedup. Completed simulations are stored
  into the persistent point cache, so later identical submissions hit
  the cache without simulating at all.
* the **job table** ``id -> Job`` for the API's lookups.

Execution reuses the exact worker entry point of
:func:`repro.engine.parallel.run_points` (``run_spec``), fanned out over
a ``ProcessPoolExecutor`` (``REPRO_WORKERS`` > 1) or an in-process
single thread (``REPRO_WORKERS=1``); either way a served point is
bit-identical to a local run. Each job writes the usual run manifest
via the helpers shared with ``run_points``.

Cancellation: a queued job is dropped before it starts; a running job
stops waiting at the next point boundary. Points already handed to the
executor run to completion (their results still land in the point
cache — they may be shared with other jobs), they are just no longer
waited on.
"""

from __future__ import annotations

import copy
import heapq
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.engine import pointcache
from repro.engine.parallel import (
    default_workers,
    finish_manifest,
    run_spec,
    start_manifest,
)
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry
from repro.serve.jobs import Job, JobRequest

DEFAULT_QUEUE_LIMIT = 64
DEFAULT_MAX_CONCURRENT_JOBS = 4


class QueueFull(Exception):
    """Admission control rejected a submission (HTTP 429)."""


class UnknownJob(KeyError):
    """No job with the given id (HTTP 404)."""


class JobScheduler:
    """Schedules jobs onto a shared simulation executor."""

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        max_concurrent_jobs: int = DEFAULT_MAX_CONCURRENT_JOBS,
        registry: Optional[MetricsRegistry] = None,
        simulate=run_spec,
    ) -> None:
        self.workers = workers if workers is not None else default_workers()
        self.queue_limit = queue_limit
        self.max_concurrent_jobs = max_concurrent_jobs
        self.registry = registry if registry is not None else MetricsRegistry()
        self._simulate = simulate
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = 0
        self._queued = 0
        self._running = 0
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Future] = {}
        self._stopping = False
        self._dispatcher: Optional[threading.Thread] = None
        self._job_threads: List[threading.Thread] = []
        self._executor = None
        self._log = obs_events.get_event_log()
        self._init_metrics()

    def _init_metrics(self) -> None:
        r = self.registry
        self.m_queue_depth = r.gauge(
            "serve_queue_depth", "jobs waiting in the scheduler queue"
        )
        self.m_running_jobs = r.gauge(
            "serve_running_jobs", "jobs currently executing"
        )
        self.m_submitted = r.counter(
            "serve_jobs_submitted_total", "jobs accepted into the queue"
        )
        self.m_rejected = r.counter(
            "serve_jobs_rejected_total",
            "jobs rejected by admission control (429)",
        )
        self.m_finished = r.counter(
            "serve_jobs_finished_total",
            "jobs reaching a terminal state",
            labels=("state",),
        )
        self.m_points = r.counter(
            "serve_points_total", "points served, by provenance",
            labels=("source",),
        )
        self.m_job_seconds = r.histogram(
            "serve_job_seconds", "wall-clock seconds per finished job"
        )

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Create the executor and dispatcher thread (idempotent)."""
        with self._lock:
            if self._dispatcher is not None:
                return
            if self.workers > 1:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            else:
                # Single-worker mode stays in-process: no pool spawn cost
                # and injectable simulate callables (tests).
                self._executor = ThreadPoolExecutor(max_workers=1)
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatcher", daemon=True
            )
            self._dispatcher.start()

    def stop(self, wait: bool = True) -> None:
        """Stop dispatching; running simulations are abandoned."""
        with self._lock:
            self._stopping = True
            self._wake.notify_all()
            dispatcher = self._dispatcher
            threads = list(self._job_threads)
            executor = self._executor
        if wait and dispatcher is not None:
            dispatcher.join(timeout=10)
        for thread in threads:
            if wait:
                thread.join(timeout=10)
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- submission / lookup / cancel -----------------------------------

    def submit(self, request: JobRequest) -> Job:
        """Queue a job; raises :class:`QueueFull` beyond ``queue_limit``."""
        with self._lock:
            if self._queued >= self.queue_limit:
                self.m_rejected.inc()
                raise QueueFull(
                    f"queue full ({self._queued}/{self.queue_limit} jobs waiting)"
                )
            job = Job(request)
            self._jobs[job.id] = job
            self._seq += 1
            heapq.heappush(
                self._heap, (-request.priority, self._seq, job)
            )
            self._queued += 1
            self.m_queue_depth.set(self._queued)
            self.m_submitted.inc()
            self._wake.notify_all()
        self._log.info(
            "serve.job.submitted",
            job=job.id,
            name=request.name,
            points=len(request.specs),
            priority=request.priority,
        )
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: j.created_unix
            )

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (terminal jobs are a no-op)."""
        job = self.get(job_id)
        with self._lock:
            job.cancel_requested = True
            if job.state == "queued":
                # Lazy heap deletion: the dispatcher skips cancelled jobs.
                self._queued -= 1
                self.m_queue_depth.set(self._queued)
                finish_now = True
            else:
                finish_now = False
        if finish_now:
            job.finish("cancelled")
            self.m_finished.labels(state="cancelled").inc()
        self._log.info("serve.job.cancel", job=job.id, state=job.state)
        return job

    def counts(self) -> Dict[str, int]:
        """Job counts by state (for /healthz)."""
        with self._lock:
            jobs = list(self._jobs.values())
        out = {state: 0 for state in ("queued", "running", "done", "failed", "cancelled")}
        for job in jobs:
            out[job.state] = out.get(job.state, 0) + 1
        return out

    # -- dispatch -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and not (
                    self._heap and self._running < self.max_concurrent_jobs
                ):
                    self._wake.wait(timeout=0.5)
                if self._stopping:
                    return
                _prio, _seq, job = heapq.heappop(self._heap)
                if job.cancel_requested or job.state != "queued":
                    continue  # lazily deleted entry
                self._queued -= 1
                self._running += 1
                self.m_queue_depth.set(self._queued)
                self.m_running_jobs.set(self._running)
                thread = threading.Thread(
                    target=self._run_job_thread,
                    args=(job,),
                    name=f"serve-{job.id}",
                    daemon=True,
                )
                self._job_threads.append(thread)
            thread.start()

    def _run_job_thread(self, job: Job) -> None:
        try:
            self._run_job(job)
        except BaseException as exc:  # defensive: never kill the daemon
            job.finish("failed", error=f"{type(exc).__name__}: {exc}")
            self.m_finished.labels(state="failed").inc()
        finally:
            with self._lock:
                self._running -= 1
                self.m_running_jobs.set(self._running)
                self._job_threads = [
                    t for t in self._job_threads
                    if t is not threading.current_thread()
                ]
                self._wake.notify_all()

    # -- per-job execution ----------------------------------------------

    def _acquire_point(
        self, spec, run_dir: Optional[str]
    ) -> Tuple[str, Optional[object], Optional[Future], bool]:
        """Resolve one spec to (source, result, future, owner).

        Cache hit -> ("cache", result, None, False); in-flight identical
        simulation -> ("dedup", None, future, False); otherwise submit a
        fresh simulation -> ("simulated", None, future, True).
        """
        fp = pointcache.fingerprint(spec)
        if pointcache.cache_enabled():
            cached = pointcache.load(fp)
            if cached is not None:
                cached.label = spec.label
                cached.from_cache = True
                cached.timeline_file = None
                return "cache", cached, None, False
        with self._lock:
            future = self._inflight.get(fp)
            if future is not None:
                return "dedup", None, future, False
            future = self._executor.submit(self._simulate, spec, run_dir)
            self._inflight[fp] = future
        future.add_done_callback(
            lambda fut, fp=fp: self._point_finished(fp, fut)
        )
        return "simulated", None, future, True

    def _point_finished(self, fp: str, future: Future) -> None:
        """Executor callback: retire the in-flight entry, persist result."""
        with self._lock:
            self._inflight.pop(fp, None)
        if future.cancelled() or future.exception() is not None:
            return
        if pointcache.cache_enabled():
            try:
                pointcache.store(fp, future.result())
            except Exception:
                pass  # a failed store is only a lost cache entry

    def _run_job(self, job: Job) -> None:
        job.mark_running()
        t0 = time.perf_counter()
        manifest, run_dir = start_manifest(
            f"serve-{job.request.name}", self.workers
        )
        if manifest is not None:
            job.run_id = manifest.run_id
        run_dir_arg = str(run_dir) if run_dir is not None else None
        specs = job.request.specs
        pending: List[Tuple[int, str, Optional[object], Optional[Future], bool]] = []
        for index, spec in enumerate(specs):
            if job.cancel_requested:
                break
            pending.append(
                (index, *self._acquire_point(spec, run_dir_arg))
            )
        results: List[Optional[object]] = [None] * len(specs)
        failure: Optional[str] = None
        for index, source, result, future, owner in pending:
            if job.cancel_requested or failure is not None:
                break
            spec = specs[index]
            if future is not None:
                try:
                    result = future.result()
                except Exception as exc:
                    failure = f"point {spec.label!r}: {type(exc).__name__}: {exc}"
                    continue
                if not owner:
                    # Shared with the owning job: take a private copy and
                    # stamp our label; we did not pay for the simulation.
                    result = copy.copy(result)
                    result.label = spec.label
                    result.from_cache = True
                    result.timeline_file = None
            results[index] = result
            self.m_points.labels(source=source).inc()
            job.point_done(spec.label, source, result.sim_seconds)
        wall = time.perf_counter() - t0
        if job.cancel_requested:
            job.finish("cancelled")
            self.m_finished.labels(state="cancelled").inc()
            return
        if failure is not None:
            job.finish("failed", error=failure)
            self.m_finished.labels(state="failed").inc()
            return
        job.results = [r for r in results if r is not None]
        if manifest is not None and run_dir is not None:
            finish_manifest(manifest, run_dir, specs, job.results, wall)
        job.finish("done")
        self.m_finished.labels(state="done").inc()
        self.m_job_seconds.observe(wall)
        self._log.info(
            "serve.job.finish",
            job=job.id,
            name=job.request.name,
            points=len(job.results),
            cached=job.cached_points,
            deduped=job.deduped_points,
            wall_s=wall,
        )
