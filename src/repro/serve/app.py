"""HTTP/JSON front-end for the job scheduler (stdlib only).

API (all bodies JSON unless noted):

========  ======================  =======================================
Method    Path                    Meaning
========  ======================  =======================================
POST      /jobs                   submit a job (201; 400 bad request;
                                  429 tenant quota / rate exceeded —
                                  the body names the tenant, its
                                  limit, and current usage)
GET       /jobs                   list job snapshots
GET       /jobs/<id>              one job's state + progress
GET       /jobs/<id>/result       finished job's result (shared schema;
                                  409 until the job is done)
GET       /jobs/<id>/events       cursor-based event polling
                                  (``?cursor=N``)
DELETE    /jobs/<id>              cancel
GET       /healthz                liveness + job counts + backend
GET       /metrics                Prometheus text (``text/plain``)
GET       /workers                cluster fleet listing (404 when the
                                  backend is ``local``)
POST      /cluster/register       cluster work-lease protocol
POST      /cluster/lease          (DESIGN.md §10; bodies built by
POST      /cluster/heartbeat      ``repro.cluster.protocol``; served
POST      /cluster/complete       only with ``--backend cluster`` or
POST      /cluster/fail           ``hybrid``)
========  ======================  =======================================

``python -m repro.serve`` runs :func:`main`. The server is a
``ThreadingHTTPServer``: every request handler only touches the
scheduler through its lock-guarded methods, so concurrent polls and
submissions are safe.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigError
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry
from repro.sched.policy import POLICIES
from repro.serve.jobs import BadRequest, parse_job_request
from repro.serve.scheduler import (
    BACKENDS,
    DEFAULT_MAX_CONCURRENT_JOBS,
    DEFAULT_QUEUE_LIMIT,
    JobScheduler,
    QueueFull,
    UnknownJob,
)

DEFAULT_PORT = 8337
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServeServer(ThreadingHTTPServer):
    """HTTP server owning the scheduler and metrics registry."""

    daemon_threads = True

    def __init__(self, address, scheduler: JobScheduler) -> None:
        super().__init__(address, ServeHandler)
        self.scheduler = scheduler
        self.registry = scheduler.registry
        self.started_unix = time.time()


class ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        # Route access logs through the structured event log (quiet by
        # default, durable with REPRO_LOG_FILE) instead of raw stderr.
        obs_events.get_event_log().debug(
            "serve.http", request=fmt % args, client=self.client_address[0]
        )

    def _send(
        self,
        status: int,
        payload: Any = None,
        content_type: str = "application/json",
    ) -> None:
        if content_type == "application/json":
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        else:
            body = payload.encode() if isinstance(payload, str) else payload
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise BadRequest("a JSON body is required")
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}")

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {
            k: v[-1] for k, v in parse_qs(parsed.query).items()
        }
        return parsed.path.rstrip("/") or "/", query

    # -- methods --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        path, query = self._route()
        try:
            if path == "/healthz":
                return self._healthz()
            if path == "/metrics":
                return self._send(
                    200,
                    self.server.registry.render_text(),
                    content_type="text/plain; version=0.0.4",
                )
            if path == "/jobs":
                return self._send(
                    200,
                    {"jobs": [j.snapshot() for j in self.server.scheduler.jobs()]},
                )
            if path == "/workers":
                coordinator = self.server.scheduler.coordinator
                if coordinator is None:
                    return self._error(
                        404,
                        "cluster backend not enabled "
                        "(start the daemon with --backend cluster|hybrid)",
                    )
                stats = coordinator.stats()
                return self._send(
                    200,
                    {
                        "backend": self.server.scheduler.backend,
                        "workers": coordinator.workers_snapshot(),
                        "pending_points": stats["pending_points"],
                        "active_leases": stats["active_leases"],
                        "draining": stats["draining"],
                        "policy": stats["policy"],
                        "shards": stats["shards"],
                        "pending_by_tenant": stats["pending_by_tenant"],
                        "speculation": stats["speculation"],
                    },
                )
            parts = path.strip("/").split("/")
            if len(parts) >= 2 and parts[0] == "jobs":
                job = self.server.scheduler.get(parts[1])
                if len(parts) == 2:
                    return self._send(200, job.snapshot())
                if len(parts) == 3 and parts[2] == "result":
                    snapshot = job.snapshot()
                    if snapshot["state"] != "done":
                        return self._send(
                            409,
                            {
                                "error": f"job is {snapshot['state']}, not done",
                                "state": snapshot["state"],
                            },
                        )
                    return self._send(200, job.result_dict())
                if len(parts) == 3 and parts[2] == "events":
                    try:
                        cursor = int(query.get("cursor", "0"))
                    except ValueError:
                        raise BadRequest("'cursor' must be an integer")
                    events, next_cursor = job.events_since(cursor)
                    return self._send(
                        200, {"events": events, "cursor": next_cursor}
                    )
            return self._error(404, f"no route for GET {path}")
        except UnknownJob as exc:
            return self._error(404, f"unknown job {exc.args[0]!r}")
        except BadRequest as exc:
            return self._error(400, str(exc))
        except ConfigError as exc:
            return self._error(409, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        path, _query = self._route()
        if path.startswith("/cluster/"):
            return self._cluster_post(path)
        if path != "/jobs":
            return self._error(404, f"no route for POST {path}")
        try:
            request = parse_job_request(self._read_json())
            job = self.server.scheduler.submit(request)
        except BadRequest as exc:
            return self._error(400, str(exc))
        except QueueFull as exc:
            # Per-tenant rejections (QuotaExceeded / RateLimited) carry
            # structured context; surface it so clients can tell *whose*
            # limit fired and how far over it they are.
            body: Dict[str, Any] = {"error": str(exc)}
            for attr in ("tenant", "quota", "rate", "usage"):
                value = getattr(exc, attr, None)
                if value is not None:
                    body[attr] = value
            return self._send(429, body)
        return self._send(201, job.snapshot())

    def _cluster_post(self, path: str) -> None:
        """Dispatch a work-lease protocol message to the coordinator."""
        from repro.cluster import protocol

        coordinator = self.server.scheduler.coordinator
        if coordinator is None:
            return self._error(
                404,
                "cluster backend not enabled "
                "(start the daemon with --backend cluster|hybrid)",
            )
        handlers = {
            "/cluster/register": coordinator.register,
            "/cluster/lease": coordinator.lease,
            "/cluster/heartbeat": coordinator.heartbeat,
            "/cluster/complete": coordinator.complete,
            "/cluster/fail": coordinator.fail,
        }
        handler = handlers.get(path)
        if handler is None:
            return self._error(404, f"no route for POST {path}")
        try:
            reply = handler(self._read_json())
        except BadRequest as exc:
            return self._error(400, str(exc))
        except protocol.SaltMismatch as exc:
            return self._error(409, str(exc))
        except protocol.ProtocolError as exc:
            return self._error(400, str(exc))
        except protocol.UnknownWorker as exc:
            return self._error(404, f"unknown worker {exc.args[0]!r}")
        return self._send(200, reply)

    def do_DELETE(self) -> None:  # noqa: N802
        path, _query = self._route()
        parts = path.strip("/").split("/")
        if len(parts) != 2 or parts[0] != "jobs":
            return self._error(404, f"no route for DELETE {path}")
        try:
            job = self.server.scheduler.cancel(parts[1])
        except UnknownJob as exc:
            return self._error(404, f"unknown job {exc.args[0]!r}")
        return self._send(200, job.snapshot())

    def _healthz(self) -> None:
        scheduler = self.server.scheduler
        payload = {
            "ok": True,
            "status": "draining" if scheduler.draining else "ok",
            "uptime_seconds": time.time() - self.server.started_unix,
            "workers": scheduler.workers,
            "backend": scheduler.backend,
            "policy": scheduler.policy,
            "jobs": scheduler.counts(),
            "tenants": scheduler.tenant_stats(),
        }
        if scheduler.coordinator is not None:
            payload["cluster"] = scheduler.coordinator.stats()
        self._send(200, payload)


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    scheduler: Optional[JobScheduler] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ServeServer:
    """Build (but don't start) a server; ``port=0`` picks an ephemeral one.

    The caller owns the lifecycle: ``scheduler.start()``,
    ``serve_forever()`` (usually on a thread), then ``shutdown()`` +
    ``scheduler.stop()``.
    """
    if scheduler is None:
        scheduler = JobScheduler(registry=registry)
    return ServeServer((host, port), scheduler)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Simulation-as-a-service daemon over the repro engine.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="simulation worker processes (default: REPRO_WORKERS or CPUs)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=DEFAULT_QUEUE_LIMIT,
        help="max jobs waiting before submissions get 429",
    )
    parser.add_argument(
        "--max-jobs",
        type=int,
        default=DEFAULT_MAX_CONCURRENT_JOBS,
        help="jobs executing concurrently (they share the worker pool)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds SIGTERM waits for running jobs to reach a point "
        "boundary before the server exits",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="local",
        help="execution backend: 'local' uses this host's pool, "
        "'cluster' leases every point to repro.cluster.worker agents, "
        "'hybrid' does both (default %(default)s)",
    )
    parser.add_argument(
        "--policy",
        choices=POLICIES,
        default=None,
        help="scheduling policy for jobs and cluster points "
        "(default: REPRO_SCHED_POLICY or 'priority'); 'wfq' is "
        "weighted-fair across tenants (weights via REPRO_TENANTS)",
    )
    args = parser.parse_args(argv)
    scheduler = JobScheduler(
        workers=args.workers,
        queue_limit=args.queue_limit,
        max_concurrent_jobs=args.max_jobs,
        backend=args.backend,
        policy=args.policy,
    )
    server = create_server(args.host, args.port, scheduler=scheduler)
    scheduler.start()
    host, port = server.server_address[:2]
    log = obs_events.get_event_log()

    def _drain_and_exit(signum, _frame) -> None:
        # serve_forever() deadlocks if shutdown() is called from its own
        # thread, and a signal handler runs on the main thread (which is
        # inside serve_forever) — so the drain runs on a helper thread.
        def drain() -> None:
            log.emit(
                "serve.sigterm", force=True, signal=signum, host=host, port=port
            )
            scheduler.drain()
            scheduler.wait_idle(timeout=args.drain_timeout)
            server.shutdown()

        threading.Thread(target=drain, name="serve-drain", daemon=True).start()

    try:
        # Non-main-thread entry (tests embedding main()) can't install
        # signal handlers; graceful drain is then the caller's job.
        signal.signal(signal.SIGTERM, _drain_and_exit)
    except ValueError:
        pass
    log.emit(
        "serve.start",
        force=True,
        host=host,
        port=port,
        workers=scheduler.workers,
        backend=scheduler.backend,
        policy=scheduler.policy,
        queue_limit=scheduler.queue_limit,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        scheduler.stop(wait=False)
        log.emit("serve.stop", force=True, host=host, port=port)
    return 0


if __name__ == "__main__":
    sys.exit(main())
