"""Minimal stdlib client for the ``repro.serve`` HTTP API.

Used by the end-to-end tests, the CI smoke jobs, and the cluster worker
agent's transport; handy interactively::

    from repro.serve.client import ServeClient
    c = ServeClient("http://127.0.0.1:8337")
    job = c.submit_experiment("fig1", scale=0.05)
    snapshot = c.wait(job["id"])
    rows = c.result(job["id"])["rows"]

A connection-refused error (daemon restarting, coordinator not up yet)
is retried with bounded exponential backoff before it propagates —
refused means the request never reached the server, so retrying any
method (including POST) is safe. The per-request socket timeout
defaults to ``REPRO_SERVE_TIMEOUT_S`` (else 30s); pass ``timeout=`` to
override per client.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError

DEFAULT_TIMEOUT_S = 30.0
#: retries after a refused connection (so N+1 attempts total) ...
DEFAULT_CONNECT_RETRIES = 5
#: ... spaced by this first backoff, doubling each retry.
DEFAULT_CONNECT_BACKOFF_S = 0.1


def serve_timeout_s() -> float:
    """Default request timeout from ``REPRO_SERVE_TIMEOUT_S`` (else 30)."""
    env = os.environ.get("REPRO_SERVE_TIMEOUT_S", "").strip()
    if not env:
        return DEFAULT_TIMEOUT_S
    try:
        timeout = float(env)
    except ValueError:
        raise ConfigError(
            f"REPRO_SERVE_TIMEOUT_S must be a number, got {env!r}"
        )
    if timeout <= 0:
        raise ConfigError("REPRO_SERVE_TIMEOUT_S must be > 0")
    return timeout


class ServeError(ConfigError):
    """Non-2xx API response; carries the HTTP status and parsed body."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServeClient:
    def __init__(
        self,
        base_url: str,
        timeout: Optional[float] = None,
        connect_retries: int = DEFAULT_CONNECT_RETRIES,
        connect_backoff_s: float = DEFAULT_CONNECT_BACKOFF_S,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout if timeout is not None else serve_timeout_s()
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s

    # -- transport ------------------------------------------------------

    @staticmethod
    def _connection_refused(exc: urllib.error.URLError) -> bool:
        return isinstance(
            getattr(exc, "reason", None), ConnectionRefusedError
        )

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Any:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        attempt = 0
        while True:
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as resp:
                    body = resp.read().decode()
                break
            except urllib.error.HTTPError as exc:
                body = exc.read().decode()
                try:
                    parsed = json.loads(body)
                except json.JSONDecodeError:
                    parsed = body
                raise ServeError(exc.code, parsed)
            except urllib.error.URLError as exc:
                # Refused = the server socket isn't listening (restart
                # in progress): nothing was received, so retrying is
                # idempotent-safe. Anything else propagates untouched.
                if (
                    not self._connection_refused(exc)
                    or attempt >= self.connect_retries
                ):
                    raise
                time.sleep(self.connect_backoff_s * (2 ** attempt))
                attempt += 1
        if raw:
            return body
        return json.loads(body)

    # -- API ------------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs`` with an explicit body."""
        return self._request("POST", "/jobs", payload)

    def submit_experiment(
        self,
        name: str,
        scale: Optional[float] = None,
        measure: Optional[float] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": name, "priority": priority}
        if scale is not None:
            payload["scale"] = scale
        if measure is not None:
            payload["measure"] = measure
        if tenant is not None:
            payload["tenant"] = tenant
        return self.submit(payload)

    def submit_points(
        self,
        points: List[Dict[str, Any]],
        scale: Optional[float] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"points": points, "priority": priority}
        if scale is not None:
            payload["scale"] = scale
        if tenant is not None:
            payload["tenant"] = tenant
        return self.submit(payload)

    def submit_scenario(
        self,
        document: Dict[str, Any],
        scale: Optional[float] = None,
        measure: Optional[float] = None,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a declarative scenario document (repro.scenario DSL).

        ``document`` is the parsed TOML/JSON scenario; the daemon
        compiles it server-side, so the submitted grid is exactly what
        ``python -m repro.scenario run`` would simulate locally.
        ``tenant`` tags the job for fairness and admission (the daemon
        defaults it to ``"default"``).
        """
        payload: Dict[str, Any] = {"scenario": document, "priority": priority}
        if scale is not None:
            payload["scale"] = scale
        if measure is not None:
            payload["measure"] = measure
        if tenant is not None:
            payload["tenant"] = tenant
        return self.submit(payload)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str, cursor: int = 0) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/events?cursor={cursor}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics", raw=True)

    def metrics(self) -> Dict[str, float]:
        """Parsed ``/metrics`` samples: ``{sample_name: value}``."""
        out: Dict[str, float] = {}
        for line in self.metrics_text().splitlines():
            if not line or line.startswith("#"):
                continue
            key, _, value = line.rpartition(" ")
            try:
                out[key] = float(value)
            except ValueError:
                continue
        return out

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise ConfigError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)
