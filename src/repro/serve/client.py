"""Minimal stdlib client for the ``repro.serve`` HTTP API.

Used by the end-to-end tests and the CI smoke job; handy interactively::

    from repro.serve.client import ServeClient
    c = ServeClient("http://127.0.0.1:8337")
    job = c.submit_experiment("fig1", scale=0.05)
    snapshot = c.wait(job["id"])
    rows = c.result(job["id"])["rows"]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError


class ServeError(ConfigError):
    """Non-2xx API response; carries the HTTP status and parsed body."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServeClient:
    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        raw: bool = False,
    ) -> Any:
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = resp.read().decode()
        except urllib.error.HTTPError as exc:
            body = exc.read().decode()
            try:
                parsed = json.loads(body)
            except json.JSONDecodeError:
                parsed = body
            raise ServeError(exc.code, parsed)
        if raw:
            return body
        return json.loads(body)

    # -- API ------------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs`` with an explicit body."""
        return self._request("POST", "/jobs", payload)

    def submit_experiment(
        self,
        name: str,
        scale: Optional[float] = None,
        measure: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": name, "priority": priority}
        if scale is not None:
            payload["scale"] = scale
        if measure is not None:
            payload["measure"] = measure
        return self.submit(payload)

    def submit_points(
        self,
        points: List[Dict[str, Any]],
        scale: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"points": points, "priority": priority}
        if scale is not None:
            payload["scale"] = scale
        return self.submit(payload)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str, cursor: int = 0) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/events?cursor={cursor}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics", raw=True)

    def metrics(self) -> Dict[str, float]:
        """Parsed ``/metrics`` samples: ``{sample_name: value}``."""
        out: Dict[str, float] = {}
        for line in self.metrics_text().splitlines():
            if not line or line.startswith("#"):
                continue
            key, _, value = line.rpartition(" ")
            try:
                out[key] = float(value)
            except ValueError:
                continue
        return out

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_seconds: float = 0.2,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["state"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() >= deadline:
                raise ConfigError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            time.sleep(poll_seconds)
