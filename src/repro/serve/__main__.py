"""Entry point: ``python -m repro.serve [--host H --port P ...]``."""

import sys

from repro.serve.app import main

if __name__ == "__main__":
    sys.exit(main())
