"""Simulation-as-a-service: an HTTP daemon over the experiment engine.

``python -m repro.serve`` starts a stdlib-only daemon (DESIGN.md §8)
that accepts jobs — a named experiment grid like ``fig1`` or an
explicit point list — schedules them by priority with bounded-queue
admission control, dedups identical points across concurrently running
jobs (keyed by the point cache's content fingerprint), executes them
with the exact worker entry point ``run_points`` uses (bit-identical
results, same run manifests), and serves results in the same JSON
schema as ``python -m repro.experiments <fig> --json``.

Layers:

* :mod:`repro.serve.jobs` — job model, request validation, the shared
  result schema;
* :mod:`repro.serve.scheduler` — priority queue, admission control,
  cancellation, cross-job in-flight dedup, executor fan-out;
* :mod:`repro.serve.app` — the HTTP/JSON API (`POST /jobs`,
  ``GET /jobs/<id>``, ``.../result``, ``.../events``, ``DELETE``,
  ``/healthz``, ``/metrics``);
* :mod:`repro.serve.client` — a stdlib client used by tests and CI.

With ``--backend cluster`` (or ``hybrid``) the daemon doubles as the
coordinator of a :mod:`repro.cluster` worker fleet: fresh points go to
a lease queue that ``python -m repro.cluster.worker`` agents drain over
the same HTTP server (DESIGN.md §10).
"""

from repro.serve.app import ServeServer, create_server, main
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import (
    BadRequest,
    Job,
    JobRequest,
    parse_job_request,
)
from repro.serve.scheduler import BACKENDS, JobScheduler, QueueFull, UnknownJob

__all__ = [
    "BACKENDS",
    "BadRequest",
    "Job",
    "JobRequest",
    "JobScheduler",
    "QueueFull",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "UnknownJob",
    "create_server",
    "main",
    "parse_job_request",
]
