"""Job model for the ``repro.serve`` daemon.

A *job* is one client-submitted unit of work: either a named experiment
grid (``{"experiment": "fig1", "scale": 0.05}`` — built through the
same spec builders the figure harnesses use, so a served job simulates
exactly what a local run would) or an explicit list of point
descriptions (``{"points": [{...}, ...]}`` in the vocabulary of
:func:`repro.experiments.common.point_spec`).

Jobs move through ``queued -> running -> done`` (or ``failed`` /
``cancelled``). Every state change and per-point completion is recorded
as a monotonically numbered event, which ``GET /jobs/<id>/events``
exposes for cursor-based polling. The finished job's result serializes
to the same JSON schema ``python -m repro.experiments <fig> --json``
emits (:func:`repro.experiments.common.point_row`).
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.parallel import PointSpec
from repro.errors import ConfigError

#: every state a job can be in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


class BadRequest(ConfigError):
    """Client-side error in a job submission (rendered as HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequest(message)


class JobRequest:
    """Validated submission: a named spec list plus scheduling knobs."""

    def __init__(
        self,
        name: str,
        specs: List[PointSpec],
        scale: float,
        priority: int = 0,
    ) -> None:
        self.name = name
        self.specs = specs
        self.scale = scale
        self.priority = priority


def _number(payload: Dict[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{key!r} must be a number",
    )
    return float(value)


#: every key an explicit point object may carry; anything else is a 400
#: (a typo like "swepper" must not silently serve non-Sweeper results).
_POINT_KEYS = frozenset(
    (
        "workload",
        "scale",
        "buffers",
        "ways",
        "packet_bytes",
        "policy",
        "label",
        "measure",
        "sweeper",
        "queued_depth",
        "nic_tx_sweep",
        "seed",
        "observer",
        "burst",
    )
)

#: knobs an ``"observer"`` sub-object may carry (the ObserverConfig
#: fields); named in the 400 so clients can discover the vocabulary.
_OBSERVER_KEYS = frozenset(
    ("sets", "ways", "period", "jitter", "probe_seed", "mi_bins")
)

#: knobs a ``"burst"`` sub-object may carry (the BurstProfile fields).
_BURST_KEYS = frozenset(("low", "high", "window", "seed"))


def _int_field(entry: Dict[str, Any], key: str, default: int) -> int:
    value = entry.get(key, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{key!r} must be an integer",
    )
    return value


def _build_observer(entry: Any) -> Any:
    """Validate an ``"observer"`` sub-object into an ObserverConfig."""
    from repro.sidechannel import ObserverConfig

    _require(isinstance(entry, dict), "'observer' must be an object")
    unknown = sorted(set(entry) - _OBSERVER_KEYS)
    _require(
        not unknown,
        "unknown observer knob(s): " + ", ".join(repr(k) for k in unknown)
        + "; allowed: " + ", ".join(sorted(_OBSERVER_KEYS)),
    )
    ways = entry.get("ways")
    if ways is not None:
        _require(
            isinstance(ways, list)
            and all(
                isinstance(w, int) and not isinstance(w, bool) for w in ways
            ),
            "observer 'ways' must be a list of integers",
        )
        ways = tuple(ways)
    try:
        return ObserverConfig(
            sets=_int_field(entry, "sets", 16),
            ways=ways,
            period=_int_field(entry, "period", 8),
            jitter=_int_field(entry, "jitter", 0),
            probe_seed=_int_field(entry, "probe_seed", 7),
            mi_bins=_int_field(entry, "mi_bins", 4),
        )
    except BadRequest:
        raise
    except ConfigError as exc:
        raise BadRequest(f"invalid observer config: {exc}") from exc


def _build_burst(entry: Any) -> Any:
    """Validate a ``"burst"`` sub-object into a BurstProfile."""
    from repro.nic.arrivals import BurstProfile

    _require(isinstance(entry, dict), "'burst' must be an object")
    unknown = sorted(set(entry) - _BURST_KEYS)
    _require(
        not unknown,
        "unknown burst knob(s): " + ", ".join(repr(k) for k in unknown)
        + "; allowed: " + ", ".join(sorted(_BURST_KEYS)),
    )
    try:
        return BurstProfile(
            low=_int_field(entry, "low", 1),
            high=_int_field(entry, "high", 33),
            window=_int_field(entry, "window", 24),
            seed=_int_field(entry, "seed", 5),
        )
    except BadRequest:
        raise
    except ConfigError as exc:
        raise BadRequest(f"invalid burst profile: {exc}") from exc


def _build_point(entry: Dict[str, Any], default_scale: float) -> PointSpec:
    """One explicit point in the ``point_spec`` vocabulary."""
    from repro.experiments.common import (
        ExperimentSettings,
        kvs_system,
        kvs_workload,
        l3fwd_workload,
        point_spec,
    )

    _require(isinstance(entry, dict), "each point must be an object")
    unknown = sorted(set(entry) - _POINT_KEYS)
    _require(
        not unknown,
        "unknown point key(s): " + ", ".join(repr(k) for k in unknown)
        + "; allowed: " + ", ".join(sorted(_POINT_KEYS)),
    )
    workload_kind = entry.get("workload", "kvs")
    _require(
        workload_kind in ("kvs", "l3fwd"),
        f"point workload must be 'kvs' or 'l3fwd', got {workload_kind!r}",
    )
    scale = _number(entry, "scale", default_scale)
    _require(0 < scale <= 1, "point 'scale' must be in (0, 1]")
    buffers = int(_number(entry, "buffers", 512))
    ways = int(_number(entry, "ways", 2))
    packet_bytes = int(_number(entry, "packet_bytes", 1024))
    policy = entry.get("policy", "ddio")
    _require(
        policy in ("dma", "ddio", "ideal"),
        f"point policy must be dma/ddio/ideal, got {policy!r}",
    )
    label = entry.get("label") or (
        f"{workload_kind}/{packet_bytes}B/{buffers} bufs/{policy}{ways}"
    )
    _require(isinstance(label, str), "point 'label' must be a string")
    system = kvs_system(scale, buffers, ways, packet_bytes)
    if workload_kind == "kvs":
        workload = kvs_workload(scale, packet_bytes)
    else:
        workload = l3fwd_workload(packet_bytes)
    settings = ExperimentSettings(
        scale=scale, measure_multiplier=_number(entry, "measure", 1.0)
    )
    observer = None
    if entry.get("observer") is not None:
        observer = _build_observer(entry["observer"])
    burst = None
    if entry.get("burst") is not None:
        burst = _build_burst(entry["burst"])
    return point_spec(
        label,
        system,
        workload,
        policy,
        sweeper=bool(entry.get("sweeper", False)),
        queued_depth=int(_number(entry, "queued_depth", 1)),
        settings=settings,
        nic_tx_sweep=bool(entry.get("nic_tx_sweep", False)),
        seed=int(_number(entry, "seed", 42)),
        observer=observer,
        burst=burst,
    )


def parse_job_request(payload: Any) -> JobRequest:
    """Validate a ``POST /jobs`` body into a :class:`JobRequest`.

    Raises :class:`BadRequest` (HTTP 400) on any malformed field; an
    unknown experiment name lists the servable ids in the message.
    """
    from repro.experiments import SPEC_BUILDERS, UNSERVABLE
    from repro.experiments.common import DEFAULT_SCALE, ExperimentSettings

    _require(isinstance(payload, dict), "job body must be a JSON object")
    priority = payload.get("priority", 0)
    _require(
        isinstance(priority, int) and not isinstance(priority, bool),
        "'priority' must be an integer",
    )
    has_experiment = "experiment" in payload
    has_points = "points" in payload
    _require(
        has_experiment != has_points,
        "exactly one of 'experiment' or 'points' is required",
    )
    scale = _number(payload, "scale", DEFAULT_SCALE)
    _require(0 < scale <= 1, "'scale' must be in (0, 1]")
    if has_experiment:
        name = payload["experiment"]
        if isinstance(name, str) and name in UNSERVABLE:
            raise BadRequest(
                f"experiment {name!r} is intentionally not servable: "
                f"{UNSERVABLE[name]} (see DESIGN.md §8)"
            )
        _require(
            isinstance(name, str) and name in SPEC_BUILDERS,
            f"unknown experiment {payload['experiment']!r}; servable: "
            + ", ".join(sorted(SPEC_BUILDERS)),
        )
        measure = _number(payload, "measure", 1.0)
        _require(measure > 0, "'measure' must be > 0")
        settings = ExperimentSettings(scale=scale, measure_multiplier=measure)
        specs = SPEC_BUILDERS[name](settings)
        return JobRequest(name, specs, scale, priority=priority)
    points = payload["points"]
    _require(
        isinstance(points, list) and points,
        "'points' must be a non-empty list",
    )
    specs = [_build_point(entry, scale) for entry in points]
    labels = [s.label for s in specs]
    _require(
        len(labels) == len(set(labels)), "point labels must be unique"
    )
    return JobRequest("points", specs, scale, priority=priority)


class Job:
    """One scheduled unit of work; all mutation goes through its lock."""

    def __init__(self, request: JobRequest) -> None:
        self.id = f"job-{uuid.uuid4().hex[:12]}"
        self.request = request
        self.state = "queued"
        self.error: Optional[str] = None
        self.run_id: Optional[str] = None
        self.created_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.done_points = 0
        self.cached_points = 0
        self.deduped_points = 0
        self.simulated_points = 0
        self.retried_points = 0
        self.results: List[Any] = []
        self.cancel_requested = False
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self.add_event(
            "job.submitted",
            name=request.name,
            points=len(request.specs),
            priority=request.priority,
        )

    # -- events ---------------------------------------------------------

    def add_event(self, event: str, **fields: Any) -> None:
        with self._lock:
            record = {
                "seq": len(self._events),
                "ts": time.time(),
                "event": event,
            }
            record.update(fields)
            self._events.append(record)

    def events_since(self, cursor: int) -> Tuple[List[Dict[str, Any]], int]:
        """Events with seq >= cursor, plus the next cursor to poll with."""
        if cursor < 0:
            raise BadRequest("'cursor' must be >= 0")
        with self._lock:
            return list(self._events[cursor:]), len(self._events)

    # -- state transitions (called by the scheduler) --------------------

    def mark_running(self) -> None:
        with self._lock:
            self.state = "running"
            self.started_unix = time.time()
        self.add_event("job.started")

    def finish(self, state: str, error: Optional[str] = None) -> bool:
        """Move to a terminal state; True only for the claiming caller.

        The bool makes racing finishers (e.g. concurrent cancels, or a
        cancel racing the job thread) safe: exactly one caller claims
        the transition and owns the side effects (metrics, events).
        """
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.error = error
            self.finished_unix = time.time()
        fields = {"state": state}
        if error:
            fields["error"] = error
        self.add_event("job.finished", **fields)
        return True

    def point_done(self, label: str, source: str, sim_seconds: float) -> None:
        """Record one completed point (source: simulated|cache|dedup)."""
        with self._lock:
            self.done_points += 1
            if source == "cache":
                self.cached_points += 1
            elif source == "dedup":
                self.deduped_points += 1
            else:
                self.simulated_points += 1
            done, total = self.done_points, len(self.request.specs)
        self.add_event(
            "point.finish",
            label=label,
            source=source,
            sim_s=round(sim_seconds, 6),
            done=f"{done}/{total}",
        )

    def point_retry(self, label: str, error: str, attempt: int) -> None:
        """Record a failed attempt that the scheduler will retry."""
        with self._lock:
            self.retried_points += 1
        self.add_event(
            "point.retry", label=label, attempt=attempt, error=error
        )

    # -- serialization --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """State + progress, the ``GET /jobs/<id>`` body."""
        with self._lock:
            return {
                "id": self.id,
                "name": self.request.name,
                "state": self.state,
                "priority": self.request.priority,
                "error": self.error,
                "run_id": self.run_id,
                "created_unix": self.created_unix,
                "started_unix": self.started_unix,
                "finished_unix": self.finished_unix,
                "total_points": len(self.request.specs),
                "done_points": self.done_points,
                "cached_points": self.cached_points,
                "deduped_points": self.deduped_points,
                "simulated_points": self.simulated_points,
                "retried_points": self.retried_points,
                "events": len(self._events),
            }

    def result_dict(self) -> Dict[str, Any]:
        """The shared result schema (identical to the CLI's ``--json``)."""
        from repro.experiments.common import (
            RESULT_SCHEMA_VERSION,
            point_row,
        )

        with self._lock:
            if self.state != "done":
                raise ConfigError(
                    f"job {self.id} has no result (state={self.state})"
                )
            return {
                "schema": RESULT_SCHEMA_VERSION,
                "figure": self.request.name,
                "title": f"repro.serve job {self.id}",
                "scale": self.request.scale,
                "rows": [
                    point_row(p, self.request.scale) for p in self.results
                ],
                "series": {},
                "notes": [],
            }
