"""Job model for the ``repro.serve`` daemon.

A *job* is one client-submitted unit of work: a named experiment grid
(``{"experiment": "fig1", "scale": 0.05}`` — built through the same
spec builders the figure harnesses use, so a served job simulates
exactly what a local run would), an explicit list of point
descriptions (``{"points": [{...}, ...]}`` in the vocabulary of
:mod:`repro.scenario.points`), or a declarative scenario document
(``{"scenario": {...}}``, compiled by :mod:`repro.scenario` — sweeps
expanded and references resolved server-side, so a submitted document
runs the exact grid ``python -m repro.scenario run`` would).

Jobs move through ``queued -> running -> done`` (or ``failed`` /
``cancelled``). Every state change and per-point completion is recorded
as a monotonically numbered event, which ``GET /jobs/<id>/events``
exposes for cursor-based polling. The finished job's result serializes
to the same JSON schema ``python -m repro.experiments <fig> --json``
emits (:func:`repro.experiments.common.point_row`).
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.parallel import PointSpec
from repro.errors import ConfigError
from repro.sched.tenants import DEFAULT_TENANT, validate_tenant

#: every state a job can be in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


class BadRequest(ConfigError):
    """Client-side error in a job submission (rendered as HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequest(message)


class JobRequest:
    """Validated submission: a named spec list plus scheduling knobs."""

    def __init__(
        self,
        name: str,
        specs: List[PointSpec],
        scale: float,
        priority: int = 0,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        self.name = name
        self.specs = specs
        self.scale = scale
        self.priority = priority
        self.tenant = tenant


def _number(payload: Dict[str, Any], key: str, default: float) -> float:
    value = payload.get(key, default)
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{key!r} must be a number",
    )
    return float(value)


def _build_point(
    entry: Dict[str, Any], default_scale: float, index: int
) -> PointSpec:
    """One explicit point, validated by the shared scenario vocabulary.

    :mod:`repro.scenario.points` owns the key set and all error
    messages (each naming its exact key path, ``points[2].policy``);
    this wrapper only rebrands the failure as an HTTP 400.
    """
    from repro.scenario.points import ScenarioError, build_point

    try:
        return build_point(entry, default_scale, path=f"points[{index}]")
    except ScenarioError as exc:
        raise BadRequest(str(exc)) from exc


def parse_job_request(payload: Any) -> JobRequest:
    """Validate a ``POST /jobs`` body into a :class:`JobRequest`.

    Raises :class:`BadRequest` (HTTP 400) on any malformed field; an
    unknown experiment name lists the servable ids in the message, and
    a malformed point or scenario document names the exact key path of
    the offending field (``points[0].sweep.wayz``).
    """
    from repro.experiments import SPEC_BUILDERS, UNSERVABLE
    from repro.experiments.common import DEFAULT_SCALE, ExperimentSettings

    _require(isinstance(payload, dict), "job body must be a JSON object")
    priority = payload.get("priority", 0)
    _require(
        isinstance(priority, int) and not isinstance(priority, bool),
        "'priority' must be an integer",
    )
    try:
        tenant = validate_tenant(payload.get("tenant", DEFAULT_TENANT))
    except ConfigError as exc:
        raise BadRequest(str(exc)) from exc
    has_experiment = "experiment" in payload
    has_points = "points" in payload
    has_scenario = "scenario" in payload
    _require(
        int(has_experiment) + int(has_points) + int(has_scenario) == 1,
        "exactly one of 'experiment', 'points', or 'scenario' is required",
    )
    scale = _number(payload, "scale", DEFAULT_SCALE)
    _require(0 < scale <= 1, "'scale' must be in (0, 1]")
    if has_scenario:
        from repro.scenario import (
            ScenarioError,
            compile_scenario,
            scenario_from_dict,
        )

        # Top-level scale/measure, when present, override the document's
        # defaults (same fidelity knobs as experiment jobs); otherwise
        # the document speaks for itself.
        settings = None
        if "scale" in payload or "measure" in payload:
            measure = _number(payload, "measure", 1.0)
            _require(measure > 0, "'measure' must be > 0")
            settings = ExperimentSettings(
                scale=scale, measure_multiplier=measure
            )
        try:
            compiled = compile_scenario(
                scenario_from_dict(payload["scenario"]), settings=settings
            )
        except ScenarioError as exc:
            raise BadRequest(str(exc)) from exc
        return JobRequest(
            compiled.run_label,
            compiled.specs,
            compiled.scale,
            priority=priority,
            tenant=tenant,
        )
    if has_experiment:
        name = payload["experiment"]
        if isinstance(name, str) and name in UNSERVABLE:
            raise BadRequest(
                f"experiment {name!r} is intentionally not servable: "
                f"{UNSERVABLE[name]} (see DESIGN.md §8)"
            )
        _require(
            isinstance(name, str) and name in SPEC_BUILDERS,
            f"unknown experiment {payload['experiment']!r}; servable: "
            + ", ".join(sorted(SPEC_BUILDERS)),
        )
        measure = _number(payload, "measure", 1.0)
        _require(measure > 0, "'measure' must be > 0")
        settings = ExperimentSettings(scale=scale, measure_multiplier=measure)
        specs = SPEC_BUILDERS[name](settings)
        return JobRequest(name, specs, scale, priority=priority, tenant=tenant)
    points = payload["points"]
    _require(
        isinstance(points, list) and points,
        "'points' must be a non-empty list",
    )
    specs = [
        _build_point(entry, scale, index)
        for index, entry in enumerate(points)
    ]
    labels = [s.label for s in specs]
    _require(
        len(labels) == len(set(labels)), "point labels must be unique"
    )
    return JobRequest("points", specs, scale, priority=priority, tenant=tenant)


class Job:
    """One scheduled unit of work; all mutation goes through its lock."""

    def __init__(self, request: JobRequest) -> None:
        self.id = f"job-{uuid.uuid4().hex[:12]}"
        self.request = request
        self.state = "queued"
        self.error: Optional[str] = None
        self.run_id: Optional[str] = None
        self.created_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.done_points = 0
        self.cached_points = 0
        self.deduped_points = 0
        self.simulated_points = 0
        self.retried_points = 0
        self.results: List[Any] = []
        self.cancel_requested = False
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self.add_event(
            "job.submitted",
            name=request.name,
            tenant=getattr(request, "tenant", DEFAULT_TENANT),
            points=len(request.specs),
            priority=request.priority,
        )

    # -- events ---------------------------------------------------------

    def add_event(self, event: str, **fields: Any) -> None:
        with self._lock:
            record = {
                "seq": len(self._events),
                "ts": time.time(),
                "event": event,
            }
            record.update(fields)
            self._events.append(record)

    def events_since(self, cursor: int) -> Tuple[List[Dict[str, Any]], int]:
        """Events with seq >= cursor, plus the next cursor to poll with."""
        if cursor < 0:
            raise BadRequest("'cursor' must be >= 0")
        with self._lock:
            return list(self._events[cursor:]), len(self._events)

    # -- state transitions (called by the scheduler) --------------------

    def mark_running(self) -> None:
        with self._lock:
            self.state = "running"
            self.started_unix = time.time()
        self.add_event("job.started")

    def finish(self, state: str, error: Optional[str] = None) -> bool:
        """Move to a terminal state; True only for the claiming caller.

        The bool makes racing finishers (e.g. concurrent cancels, or a
        cancel racing the job thread) safe: exactly one caller claims
        the transition and owns the side effects (metrics, events).
        """
        with self._lock:
            if self.state in TERMINAL_STATES:
                return False
            self.state = state
            self.error = error
            self.finished_unix = time.time()
        fields = {"state": state}
        if error:
            fields["error"] = error
        self.add_event("job.finished", **fields)
        return True

    def point_done(self, label: str, source: str, sim_seconds: float) -> None:
        """Record one completed point (source: simulated|cache|dedup)."""
        with self._lock:
            self.done_points += 1
            if source == "cache":
                self.cached_points += 1
            elif source == "dedup":
                self.deduped_points += 1
            else:
                self.simulated_points += 1
            done, total = self.done_points, len(self.request.specs)
        self.add_event(
            "point.finish",
            label=label,
            source=source,
            sim_s=round(sim_seconds, 6),
            done=f"{done}/{total}",
        )

    def point_retry(self, label: str, error: str, attempt: int) -> None:
        """Record a failed attempt that the scheduler will retry."""
        with self._lock:
            self.retried_points += 1
        self.add_event(
            "point.retry", label=label, attempt=attempt, error=error
        )

    # -- serialization --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """State + progress, the ``GET /jobs/<id>`` body."""
        with self._lock:
            return {
                "id": self.id,
                "name": self.request.name,
                "state": self.state,
                "tenant": getattr(self.request, "tenant", DEFAULT_TENANT),
                "priority": self.request.priority,
                "error": self.error,
                "run_id": self.run_id,
                "created_unix": self.created_unix,
                "started_unix": self.started_unix,
                "finished_unix": self.finished_unix,
                "total_points": len(self.request.specs),
                "done_points": self.done_points,
                "cached_points": self.cached_points,
                "deduped_points": self.deduped_points,
                "simulated_points": self.simulated_points,
                "retried_points": self.retried_points,
                "events": len(self._events),
            }

    def result_dict(self) -> Dict[str, Any]:
        """The shared result schema (identical to the CLI's ``--json``)."""
        from repro.experiments.common import (
            RESULT_SCHEMA_VERSION,
            point_row,
        )

        with self._lock:
            if self.state != "done":
                raise ConfigError(
                    f"job {self.id} has no result (state={self.state})"
                )
            return {
                "schema": RESULT_SCHEMA_VERSION,
                "figure": self.request.name,
                "title": f"repro.serve job {self.id}",
                "scale": self.request.scale,
                "rows": [
                    point_row(p, self.request.scale) for p in self.results
                ],
                "series": {},
                "notes": [],
            }
