"""Sweeper (MICRO 2022) reproduction library.

Reproduces "Patching up Network Data Leaks with Sweeper" (Vemmou, Cho,
Daglis): a trace-driven cache/DDIO/DRAM simulator, the Sweeper
relinquish/clsweep mechanism, the paper's workloads (MICA-shaped KVS,
L3 forwarder, X-Mem), and experiment harnesses regenerating every figure
of the evaluation.

Quickstart::

    from repro import (
        SystemConfig, TraceConfig, TraceSimulator,
        KvsWorkload, KvsParams, ServiceProfile, solve_peak_throughput,
    )

    system = SystemConfig().with_nic(ddio_ways=2, rx_buffers_per_core=1024)
    cfg = TraceConfig(system=system, workload=KvsWorkload(), sweeper=True)
    trace = TraceSimulator(cfg).run()
    peak = solve_peak_throughput(ServiceProfile.from_trace(trace), system)
    print(trace.per_request(), peak.throughput_mrps)
"""

from repro.params import (
    CACHE_BLOCK_BYTES,
    CacheParams,
    CpuParams,
    MemoryParams,
    NicParams,
    SystemConfig,
    TABLE1,
)
from repro.traffic import MemCategory, TrafficCounter
from repro.mem.layout import AddressSpace, Region, RegionKind
from repro.mem.dram import DramModel, DramSampler
from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.api import Sweeper, SweepStats
from repro.core.pageguard import OsPageManager, ZeroingMethod
from repro.nic.ddio import DdioPolicy, DmaPolicy, IdealDdioPolicy, make_policy
from repro.nic.rings import RxRing, TxRing
from repro.nic.qp import NicEngine, QueuePair, WorkQueueEntry
from repro.workloads.kvs import KvsParams, KvsWorkload
from repro.workloads.l3fwd import L3fwdParams, L3fwdWorkload
from repro.workloads.xmem import XMemParams, XMemWorkload
from repro.workloads.spiky import SpikyKvsWorkload
from repro.engine.tracer import (
    CollocationSimulator,
    TraceConfig,
    TraceResult,
    TraceSimulator,
)
from repro.engine.analytic import (
    PerfPoint,
    ServiceProfile,
    perf_at_load,
    solve_peak_throughput,
    xmem_ipc,
)
from repro.engine.events import DropSimResult, FiniteRingSimulator
from repro.engine.dynamic import DynamicWaysSimulator
from repro.nic.dynamic import DynamicDdioController, DynamicWaysConfig
from repro.stack.dataplane import Dataplane, DataplaneConfig
from repro.stack.mbuf import Mbuf, MbufState
from repro.stack.mempool import Mempool

__version__ = "1.0.0"

__all__ = [
    "AccessLevel",
    "AddressSpace",
    "CACHE_BLOCK_BYTES",
    "CacheHierarchy",
    "CacheParams",
    "CollocationSimulator",
    "CpuParams",
    "DdioPolicy",
    "DmaPolicy",
    "DramModel",
    "DramSampler",
    "Dataplane",
    "DataplaneConfig",
    "DropSimResult",
    "DynamicDdioController",
    "DynamicWaysConfig",
    "DynamicWaysSimulator",
    "Mbuf",
    "MbufState",
    "Mempool",
    "FiniteRingSimulator",
    "IdealDdioPolicy",
    "KvsParams",
    "KvsWorkload",
    "L3fwdParams",
    "L3fwdWorkload",
    "MemCategory",
    "MemoryParams",
    "NicEngine",
    "NicParams",
    "OsPageManager",
    "PerfPoint",
    "QueuePair",
    "Region",
    "RegionKind",
    "RxRing",
    "ServiceProfile",
    "SetAssociativeCache",
    "SpikyKvsWorkload",
    "Sweeper",
    "SweepStats",
    "SystemConfig",
    "TABLE1",
    "TraceConfig",
    "TraceResult",
    "TraceSimulator",
    "TrafficCounter",
    "TxRing",
    "WorkQueueEntry",
    "XMemParams",
    "XMemWorkload",
    "ZeroingMethod",
    "make_policy",
    "perf_at_load",
    "solve_peak_throughput",
    "xmem_ipc",
]
