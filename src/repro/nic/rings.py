"""Per-core RX/TX descriptor rings.

Each core owns one RX ring of ``num_entries`` packet buffers and one TX
ring, matching the paper's per-core provisioning (§II-C, Appendix). Ring
slots map to contiguous block spans inside a region allocated from the
simulation :class:`~repro.mem.layout.AddressSpace`.

The RX ring tracks the NIC write pointer (``head``) and the CPU consume
pointer (``tail``). Overflow — an arrival finding ``backlog ==
num_entries`` — is a packet drop, the quantity Figure 10b reports.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ProtocolError
from repro.mem.layout import AddressSpace, Region, RegionKind
from repro.params import CACHE_BLOCK_BYTES


class _Ring:
    """Common geometry for RX and TX rings."""

    def __init__(
        self,
        core: int,
        region: Region,
        num_entries: int,
        blocks_per_packet: int,
    ) -> None:
        needed = num_entries * blocks_per_packet
        if region.num_blocks < needed:
            raise ProtocolError(
                f"region {region.name} holds {region.num_blocks} blocks, "
                f"ring needs {needed}"
            )
        self.core = core
        self.region = region
        self.num_entries = num_entries
        self.blocks_per_packet = blocks_per_packet
        self._base_block = region.start_block

    def slot_blocks(self, slot: int) -> range:
        """Block addresses of one ring slot (one packet buffer)."""
        index = slot % self.num_entries
        start = self._base_block + index * self.blocks_per_packet
        return range(start, start + self.blocks_per_packet)

    def slot_address(self, slot: int) -> int:
        """Byte address of a slot's buffer (the relinquish argument)."""
        return self.slot_blocks(slot).start * CACHE_BLOCK_BYTES

    @property
    def footprint_bytes(self) -> int:
        return self.num_entries * self.blocks_per_packet * CACHE_BLOCK_BYTES


class RxRing(_Ring):
    """Receive ring: NIC produces at ``head``, CPU consumes at ``tail``."""

    def __init__(
        self,
        core: int,
        region: Region,
        num_entries: int,
        blocks_per_packet: int,
    ) -> None:
        super().__init__(core, region, num_entries, blocks_per_packet)
        self.head = 0
        self.tail = 0
        self.drops = 0
        self.posted = 0

    @property
    def backlog(self) -> int:
        """Packets written by the NIC but not yet consumed."""
        return self.head - self.tail

    @property
    def free_entries(self) -> int:
        return self.num_entries - self.backlog

    def post(self) -> Optional[int]:
        """NIC delivers one packet; returns its slot, or None on drop."""
        if self.backlog >= self.num_entries:
            self.drops += 1
            return None
        slot = self.head
        self.head += 1
        self.posted += 1
        return slot

    def consume(self) -> int:
        """CPU picks up the oldest unconsumed packet; returns its slot."""
        if self.backlog <= 0:
            raise ProtocolError(f"core {self.core}: consume on empty RX ring")
        slot = self.tail
        self.tail += 1
        return slot

    def drop_rate(self) -> float:
        attempts = self.posted + self.drops
        if attempts == 0:
            return 0.0
        return self.drops / attempts


class TxRing(_Ring):
    """Transmit ring: CPU produces, NIC consumes; cycles round-robin."""

    def __init__(
        self,
        core: int,
        region: Region,
        num_entries: int,
        blocks_per_packet: int,
    ) -> None:
        super().__init__(core, region, num_entries, blocks_per_packet)
        self._next = 0

    def acquire(self) -> int:
        """Next TX slot for the CPU to fill (buffers recycle in order)."""
        slot = self._next
        self._next += 1
        return slot


def build_rings(
    space: AddressSpace,
    num_cores: int,
    rx_entries: int,
    tx_entries: int,
    blocks_per_packet: int,
) -> "tuple[List[RxRing], List[TxRing]]":
    """Allocate RX/TX regions for every core and wrap them in rings."""
    rx_rings: List[RxRing] = []
    tx_rings: List[TxRing] = []
    packet_bytes = blocks_per_packet * CACHE_BLOCK_BYTES
    for core in range(num_cores):
        rx_region = space.allocate(
            f"rx_ring[{core}]",
            rx_entries * packet_bytes,
            RegionKind.RX_BUFFER,
            owner_core=core,
        )
        tx_region = space.allocate(
            f"tx_ring[{core}]",
            tx_entries * packet_bytes,
            RegionKind.TX_BUFFER,
            owner_core=core,
        )
        rx_rings.append(RxRing(core, rx_region, rx_entries, blocks_per_packet))
        tx_rings.append(TxRing(core, tx_region, tx_entries, blocks_per_packet))
    return rx_rings, tx_rings
