"""Scale-Out-NUMA-style Queue Pairs and the NIC execution engine.

The paper's transport uses memory-mapped Queue Pairs similar to RDMA: the
CPU schedules a transmission by appending a Work Queue entry; the NIC
reads the referenced buffer and posts a Completion Queue entry.

Sweeper's TX-path extension (§V-D, Figure 4) adds one boolean field to
the Work Queue entry — ``sweep_buffer``. When set, the NIC injects sweep
messages for the buffer's cache blocks after the transmission completes
and before the buffer is released, so zero-copy NFs (which are the last
*NIC*, not CPU, users of the buffer) also avoid wasteful writebacks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Sequence

from repro.cache.hierarchy import CacheHierarchy
from repro.errors import ProtocolError
from repro.nic.ddio import InjectionPolicy


@dataclass(frozen=True)
class WorkQueueEntry:
    """One transmit descriptor written by the CPU (Figure 4 layout)."""

    dest_node: int
    qp_id: int
    op: str
    transfer_blocks: Sequence[int]
    sweep_buffer: bool = False

    def __post_init__(self) -> None:
        if not self.transfer_blocks:
            raise ProtocolError("work queue entry references an empty buffer")

    @property
    def transfer_length(self) -> int:
        return len(self.transfer_blocks) * 64


@dataclass(frozen=True)
class CompletionQueueEntry:
    """NIC's completion notification for one Work Queue entry."""

    qp_id: int
    op: str
    transfer_length: int
    swept: bool


@dataclass
class QueuePair:
    """A memory-mapped WQ/CQ pair owned by one core."""

    qp_id: int
    core: int
    wq: Deque[WorkQueueEntry] = field(default_factory=deque)
    cq: Deque[CompletionQueueEntry] = field(default_factory=deque)

    def post_send(
        self,
        transfer_blocks: Sequence[int],
        dest_node: int = 0,
        op: str = "send",
        sweep_buffer: bool = False,
    ) -> WorkQueueEntry:
        entry = WorkQueueEntry(
            dest_node=dest_node,
            qp_id=self.qp_id,
            op=op,
            # ranges pass through untouched: the batch engine recognises
            # them as contiguous runs without an O(n) scan
            transfer_blocks=(
                transfer_blocks
                if isinstance(transfer_blocks, (tuple, range))
                else tuple(transfer_blocks)
            ),
            sweep_buffer=sweep_buffer,
        )
        self.wq.append(entry)
        return entry

    def poll_completion(self) -> Optional[CompletionQueueEntry]:
        if not self.cq:
            return None
        return self.cq.popleft()


class NicEngine:
    """Executes Work Queue entries against the cache hierarchy.

    This is the TX half of the NIC; the RX half is driven by the traffic
    generator (the NIC writes arriving packets straight into ring slots
    via the injection policy).
    """

    def __init__(self, hier: CacheHierarchy, policy: InjectionPolicy) -> None:
        self.hier = hier
        self.policy = policy
        self.transmissions = 0
        self.nic_sweeps = 0

    def publish_metrics(self, registry) -> None:
        """Publish TX-engine counters and the active injection policy.

        Pull collector over the raw ints ``transmissions``/``nic_sweeps``
        (the per-WQE path stays untouched), plus a labelled info gauge
        naming the policy driving the RX/TX paths.
        """
        transmissions = registry.counter(
            "nic_transmissions_total", "Work Queue entries executed"
        )
        sweeps = registry.counter(
            "nic_sweeps_total", "Cache lines dropped by NIC-driven TX sweeps"
        )
        policy_info = registry.gauge(
            "nic_injection_policy_info",
            "Constant 1, labelled with the active injection policy",
            labels=("policy",),
        )
        policy_info.labels(policy=self.policy.name).set(1)

        def collect(_registry, nic=self) -> None:
            transmissions.set_total(nic.transmissions)
            sweeps.set_total(nic.nic_sweeps)

        registry.register_collector(collect)

    def process(self, qp: QueuePair) -> int:
        """Drain the QP's work queue; returns entries processed."""
        processed = 0
        while qp.wq:
            entry = qp.wq.popleft()
            self._transmit(qp, entry)
            processed += 1
        return processed

    def process_one(self, qp: QueuePair) -> bool:
        """Execute at most one work queue entry; True if one existed."""
        if not qp.wq:
            return False
        self._transmit(qp, qp.wq.popleft())
        return True

    def _transmit(self, qp: QueuePair, entry: WorkQueueEntry) -> None:
        self.policy.tx_read_run(self.hier, qp.core, entry.transfer_blocks)
        swept = False
        if entry.sweep_buffer:
            # NIC-driven buffer cleaning: once the payload is on the wire
            # the buffer is dead; sweep it before releasing it for reuse.
            self.nic_sweeps += self.hier.sweep_run(
                qp.core, entry.transfer_blocks
            )
            swept = True
        self.transmissions += 1
        qp.cq.append(
            CompletionQueueEntry(
                qp_id=qp.qp_id,
                op=entry.op,
                transfer_length=entry.transfer_length,
                swept=swept,
            )
        )
