"""Dynamic DDIO way reallocation — an IAT-style baseline (§VII).

The paper positions Sweeper against techniques that *dynamically resize*
the LLC share available to DDIO (IAT [58]): they delay the onset of
network data leaks by throwing capacity at the problem rather than
removing the wasteful writebacks. This module implements such a
controller so benchmarks can compare all three designs head to head:

* static DDIO (the paper's baseline),
* dynamic way reallocation (this controller),
* Sweeper (the paper's contribution).

The controller observes each epoch's RX-buffer eviction rate and the
collateral damage to application data, then grows or shrinks the DDIO
way mask between configured bounds — a deliberately simple additive-
increase/additive-decrease policy in the spirit of IAT's feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cache.hierarchy import CacheHierarchy
from repro.errors import ConfigError
from repro.traffic import MemCategory, TrafficCounter


@dataclass
class DynamicWaysConfig:
    """Bounds and thresholds for the way-reallocation feedback loop."""

    min_ways: int = 2
    max_ways: int = 8
    epoch_requests: int = 512
    #: grow when RX evictions per packet exceed this fraction of packet blocks
    grow_threshold: float = 0.25
    #: shrink when RX evictions per packet fall below this fraction
    shrink_threshold: float = 0.02

    def __post_init__(self) -> None:
        if not 1 <= self.min_ways <= self.max_ways:
            raise ConfigError("need 1 <= min_ways <= max_ways")
        if self.epoch_requests <= 0:
            raise ConfigError("epoch_requests must be positive")
        if self.shrink_threshold >= self.grow_threshold:
            raise ConfigError("shrink threshold must be below grow threshold")


class DynamicDdioController:
    """Feedback controller over the hierarchy's DDIO way mask."""

    def __init__(
        self,
        hier: CacheHierarchy,
        config: DynamicWaysConfig,
        packet_blocks: int,
    ) -> None:
        if config.max_ways > hier.llc.ways:
            raise ConfigError("max_ways exceeds LLC associativity")
        if packet_blocks <= 0:
            raise ConfigError("packet_blocks must be positive")
        self.hier = hier
        self.config = config
        self.packet_blocks = packet_blocks
        self.ways = max(len(hier.ddio_way_mask), config.min_ways)
        self.ways = min(self.ways, config.max_ways)
        hier.set_ddio_way_mask(range(self.ways))
        self.adjustments: List[int] = []

    def observe_epoch(self, window: TrafficCounter, requests: int) -> int:
        """Consume one epoch's traffic; returns the new way count."""
        if requests <= 0:
            raise ConfigError("epoch must contain requests")
        rx_evct_per_block = window.get(MemCategory.RX_EVCT) / (
            requests * self.packet_blocks
        )
        if (
            rx_evct_per_block > self.config.grow_threshold
            and self.ways < self.config.max_ways
        ):
            self.ways += 1
        elif (
            rx_evct_per_block < self.config.shrink_threshold
            and self.ways > self.config.min_ways
        ):
            self.ways -= 1
        self.hier.set_ddio_way_mask(range(self.ways))
        self.adjustments.append(self.ways)
        return self.ways


@dataclass
class DynamicTraceHook:
    """Drives a controller from a running trace simulation.

    Attach via :meth:`tick` once per serviced request; the hook snapshots
    the hierarchy's traffic counter at epoch boundaries and feeds the
    delta to the controller.
    """

    controller: DynamicDdioController
    _requests_in_epoch: int = 0
    _snapshot: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._snapshot = self.controller.hier.traffic.snapshot()

    def tick(self) -> None:
        self._requests_in_epoch += 1
        if self._requests_in_epoch < self.controller.config.epoch_requests:
            return
        traffic = self.controller.hier.traffic
        window = traffic.diff(self._snapshot)
        self.controller.observe_epoch(window, self._requests_in_epoch)
        self._snapshot = traffic.snapshot()
        self._requests_in_epoch = 0
