"""Packet injection policies: DMA, DDIO, and ideal-DDIO (§III baselines).

A policy decides what happens, cache- and memory-wise, when the NIC
writes an incoming packet block (RX path) or reads an outgoing one
(TX path), and whether CPU accesses to network buffers touch the real
hierarchy at all:

* **DMA** — conventional I/O. RX writes go to DRAM, invalidating any
  cached copies; TX reads flush dirty cached data and read from DRAM.
* **DDIO** — RX writes allocate directly in the LLC's DDIO ways; TX
  reads are serviced by the caches when possible and never allocate.
* **ideal-DDIO** — the paper's unrealistic upper bound: an infinite
  side cache holds all network buffers. Neither NIC nor CPU buffer
  accesses touch the hierarchy or memory; CPU accesses complete at LLC
  latency.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.traffic import MemCategory


class InjectionPolicy(abc.ABC):
    """Strategy object for NIC-side data movement."""

    #: short name used in experiment labels ("DMA", "DDIO 2 Ways", ...)
    name: str

    @abc.abstractmethod
    def rx_write(self, hier: CacheHierarchy, core: int, block: int) -> None:
        """NIC writes one incoming block destined for ``core``'s ring."""

    @abc.abstractmethod
    def tx_read(self, hier: CacheHierarchy, core: int, block: int) -> None:
        """NIC reads one outgoing block posted by ``core``."""

    def rx_write_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        """Write one whole packet buffer (hot-path batched variant)."""
        for block in blocks:
            self.rx_write(hier, core, block)

    def tx_read_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        """Read one whole packet buffer (hot-path batched variant)."""
        for block in blocks:
            self.tx_read(hier, core, block)

    def cpu_buffer_level(self, kind: RegionKind) -> Optional[AccessLevel]:
        """Fixed service level for CPU buffer accesses, or None.

        Non-None means the policy intercepts CPU accesses to network
        buffers (ideal-DDIO's side cache); None means they go through the
        real hierarchy.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class DmaPolicy(InjectionPolicy):
    """Conventional DMA through DRAM, bypassing the cache hierarchy."""

    name = "DMA"

    def rx_write(self, hier: CacheHierarchy, core: int, block: int) -> None:
        # The full-line NIC write supersedes any cached data; stale copies
        # are invalidated without writeback and the packet lands in DRAM.
        hier.invalidate_block(core, block, discard_dirty=True)
        hier.traffic.record(MemCategory.NIC_RX_WR)

    def tx_read(self, hier: CacheHierarchy, core: int, block: int) -> None:
        # The CPU-produced data must be visible in DRAM before the device
        # reads it: dirty copies are flushed (a TX writeback), then the
        # NIC reads from memory.
        hier.invalidate_block(core, block, discard_dirty=False)
        hier.traffic.record(MemCategory.NIC_TX_RD)

    def rx_write_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        hier.dma_rx_write_run(core, blocks)

    def tx_read_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        hier.dma_tx_read_run(core, blocks)


class DdioPolicy(InjectionPolicy):
    """Direct Cache Access into a configurable number of LLC ways."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ConfigError("DDIO needs at least one LLC way")
        self.ways = ways
        self.name = f"DDIO {ways} Ways"

    def bind(self, hier: CacheHierarchy) -> None:
        """Point the hierarchy's DDIO way mask at this policy's ways."""
        if self.ways > hier.llc.ways:
            raise ConfigError(
                f"DDIO ways {self.ways} exceed LLC associativity {hier.llc.ways}"
            )
        hier.set_ddio_way_mask(range(self.ways))

    def rx_write(self, hier: CacheHierarchy, core: int, block: int) -> None:
        hier.nic_llc_write(core, block, kind=RegionKind.RX_BUFFER)

    def tx_read(self, hier: CacheHierarchy, core: int, block: int) -> None:
        hier.nic_probe_read(core, block)

    def rx_write_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        hier.nic_llc_write_run(core, blocks, kind=RegionKind.RX_BUFFER)

    def tx_read_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        hier.nic_probe_read_run(core, blocks)


class IdealDdioPolicy(InjectionPolicy):
    """Infinite side LLC for network buffers; zero memory traffic."""

    name = "Ideal DDIO"

    def rx_write(self, hier: CacheHierarchy, core: int, block: int) -> None:
        # Buffers live entirely in the side structure; nothing to do.
        return None

    def tx_read(self, hier: CacheHierarchy, core: int, block: int) -> None:
        return None

    def rx_write_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        return None

    def tx_read_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        return None

    def cpu_buffer_level(self, kind: RegionKind) -> Optional[AccessLevel]:
        if kind in (RegionKind.RX_BUFFER, RegionKind.TX_BUFFER):
            return AccessLevel.LLC
        return None


def make_policy(spec: str, ddio_ways: int = 2) -> InjectionPolicy:
    """Build a policy from a short spec string.

    Accepted specs: ``"dma"``, ``"ddio"`` (uses ``ddio_ways``),
    ``"ideal"``, and the :mod:`repro.nic.zoo` policies (``"occamy"``,
    ``"rdca"`` — both also parameterized by ``ddio_ways``).
    """
    spec = spec.lower()
    if spec == "dma":
        return DmaPolicy()
    if spec == "ddio":
        return DdioPolicy(ddio_ways)
    if spec == "ideal":
        return IdealDdioPolicy()
    from repro.nic import zoo  # deferred: zoo subclasses DdioPolicy

    if spec in zoo.POLICIES and zoo.POLICIES[spec][0] is not None:
        return zoo.zoo_policy(spec, ddio_ways)
    raise ConfigError(
        f"unknown injection policy spec: {spec!r}; known: "
        + ", ".join(sorted(zoo.POLICIES))
    )
