"""Buffer-management policy zoo: injection policies beyond the paper.

The paper evaluates three baselines (DMA, DDIO, ideal-DDIO — see
:mod:`repro.nic.ddio`). The zoo seeds two more from the related work,
so Sweeper can be compared against *active* buffer management under the
same harness:

* **Occamy** — preemptive buffer management. The NIC still injects into
  the DDIO ways, but it tracks which RX buffers it has written and,
  when the tracked cache-resident footprint exceeds a pressure
  threshold, proactively evicts the *oldest* buffers (the ones most
  likely already consumed by the CPU) with a writeback. Eviction
  pressure is spent on known-stale network data instead of whatever the
  LLC's replacement policy happens to pick.
* **RDCA** — remote-direct-cache-access injection with a *bounded*
  cache-resident buffer pool. The NIC keeps at most ``pool_buffers``
  RX buffers per core resident; writing a buffer beyond the bound first
  evicts the least-recently-written pool entry. The cache-resident
  window is an explicit device-managed resource rather than implicit
  LRU collateral.

Both are built purely from :class:`~repro.cache.hierarchy.CacheHierarchy`
primitives that the batch engine rebinds natively
(``nic_llc_write_run`` / ``nic_probe_read_run`` / ``invalidate_block``),
and their internal bookkeeping depends only on the call sequence — so
``REPRO_ENGINE=object|batch`` produce bit-identical results by
construction, and both engines' cascade rules are inherited unchanged.

Policy knobs are class-level defaults on purpose: a policy's identity in
a :class:`~repro.engine.parallel.PointSpec` (and thus in the point-cache
fingerprint) is its short spec string, so knob changes must arrive as
code changes (which rotate the cache's code salt).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cache.hierarchy import CacheHierarchy
from repro.mem.layout import RegionKind
from repro.nic.ddio import DdioPolicy, InjectionPolicy


class OccamyPolicy(DdioPolicy):
    """DDIO + preemptive eviction of stale RX buffers under pressure.

    The policy tracks, per core, the buffers it has written (keyed by
    first block; re-posting a ring slot replaces the stale entry). When
    the tracked footprint across all cores exceeds
    ``pressure_fraction`` of the DDIO-way capacity, the oldest tracked
    buffers of the writing core are evicted — dirty data written back,
    so an unconsumed packet survives in DRAM — until the footprint is
    back under the threshold or only ``protect_buffers`` recent buffers
    remain on that core.
    """

    #: start evicting when tracked blocks exceed this fraction of the
    #: DDIO-way capacity (num_sets * |way mask| blocks)
    pressure_fraction = 0.5
    #: never evict the newest N buffers of a core (likely unconsumed)
    protect_buffers = 16

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self.name = f"Occamy {ways} Ways"
        #: core -> {first block -> block run}, insertion-ordered (FIFO)
        self._posted: Dict[int, Dict[int, Sequence[int]]] = {}
        self._resident_blocks = 0
        #: buffers preemptively evicted (observability/debugging)
        self.preempted = 0

    def rx_write(self, hier: CacheHierarchy, core: int, block: int) -> None:
        self.rx_write_run(hier, core, range(block, block + 1))

    def rx_write_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        posted = self._posted.setdefault(core, {})
        start = blocks[0]
        stale = posted.pop(start, None)
        if stale is None:
            self._resident_blocks += len(blocks)
        posted[start] = blocks
        capacity = hier.llc.num_sets * len(hier.ddio_way_mask)
        threshold = self.pressure_fraction * capacity
        while (
            self._resident_blocks > threshold
            and len(posted) > self.protect_buffers
        ):
            victim_start = next(iter(posted))
            if victim_start == start:
                break
            victim = posted.pop(victim_start)
            self._resident_blocks -= len(victim)
            self.preempted += 1
            for b in victim:
                hier.invalidate_block(core, b, discard_dirty=False)
        hier.nic_llc_write_run(core, blocks, kind=RegionKind.RX_BUFFER)


class RdcaPolicy(DdioPolicy):
    """Direct cache access with a bounded device-managed buffer pool.

    At most ``pool_buffers`` RX buffers per core stay cache-resident.
    Writing a new buffer while the pool is full first evicts the
    least-recently-written entry (writeback, not discard); rewriting a
    pooled buffer refreshes its position. TX reads inherit DDIO's
    non-allocating probe.
    """

    #: cache-resident RX buffers the device keeps per core
    pool_buffers = 32

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self.name = f"RDCA {ways} Ways"
        #: core -> {first block -> block run}, insertion-ordered (LRU
        #: by write: oldest entry is the first key)
        self._pool: Dict[int, Dict[int, Sequence[int]]] = {}
        #: pool-overflow evictions (observability/debugging)
        self.pool_evictions = 0

    def rx_write(self, hier: CacheHierarchy, core: int, block: int) -> None:
        self.rx_write_run(hier, core, range(block, block + 1))

    def rx_write_run(
        self, hier: CacheHierarchy, core: int, blocks: Sequence[int]
    ) -> None:
        pool = self._pool.setdefault(core, {})
        start = blocks[0]
        pool.pop(start, None)
        while len(pool) >= self.pool_buffers:
            victim_start = next(iter(pool))
            victim = pool.pop(victim_start)
            self.pool_evictions += 1
            for b in victim:
                hier.invalidate_block(core, b, discard_dirty=False)
        pool[start] = blocks
        hier.nic_llc_write_run(core, blocks, kind=RegionKind.RX_BUFFER)


#: policy spec string -> (factory(ddio_ways) -> InjectionPolicy, summary).
#: The single source of truth for ``make_policy`` extensions and the
#: ``python -m repro.scenario list-policies`` listing; the paper's three
#: baselines are listed too so one table shows the whole vocabulary.
POLICIES = {
    "dma": (
        None,  # built directly by repro.nic.ddio.make_policy
        "conventional DMA through DRAM; caches bypassed (paper §III)",
    ),
    "ddio": (
        None,
        "direct cache access into N LLC ways, LRU collateral evictions "
        "(paper §III)",
    ),
    "ideal": (
        None,
        "infinite side cache for network buffers; zero memory traffic "
        "(paper's upper bound)",
    ),
    "occamy": (
        OccamyPolicy,
        "DDIO + preemptive writeback-eviction of oldest RX buffers under "
        "LLC pressure (Occamy-style)",
    ),
    "rdca": (
        RdcaPolicy,
        "direct cache access with a bounded device-managed buffer pool "
        "per core (RDCA-style)",
    ),
}


def zoo_policy(spec: str, ddio_ways: int) -> InjectionPolicy:
    """Build one of the zoo-only policies (occamy/rdca)."""
    factory = POLICIES[spec][0]
    assert factory is not None, spec
    return factory(ddio_ways)


def describe_policies() -> List[str]:
    """One ``name: summary`` line per known policy, zoo and baselines."""
    return [f"{name}: {summary}" for name, (_, summary) in POLICIES.items()]
