"""NIC model: injection policies, RX/TX rings, QPs, arrival processes."""

from repro.nic.ddio import (
    DdioPolicy,
    DmaPolicy,
    IdealDdioPolicy,
    InjectionPolicy,
    make_policy,
)
from repro.nic.rings import RxRing, TxRing
from repro.nic.qp import CompletionQueueEntry, NicEngine, QueuePair, WorkQueueEntry
from repro.nic.arrivals import BacklogController, PoissonArrivals, SpikeSampler
from repro.nic.dynamic import (
    DynamicDdioController,
    DynamicTraceHook,
    DynamicWaysConfig,
)
from repro.nic.zoo import OccamyPolicy, RdcaPolicy, describe_policies

__all__ = [
    "BacklogController",
    "OccamyPolicy",
    "RdcaPolicy",
    "describe_policies",
    "CompletionQueueEntry",
    "DdioPolicy",
    "DynamicDdioController",
    "DynamicTraceHook",
    "DynamicWaysConfig",
    "DmaPolicy",
    "IdealDdioPolicy",
    "InjectionPolicy",
    "NicEngine",
    "PoissonArrivals",
    "QueuePair",
    "RxRing",
    "SpikeSampler",
    "TxRing",
    "WorkQueueEntry",
    "make_policy",
]
