"""Packet arrival processes and queue-backlog control.

Three generators cover every load shape the paper uses:

* :class:`PoissonArrivals` — the traffic generator of the appendix
  ("injects packets at configurable Poisson arrival rate").
* :class:`BacklogController` — §IV-B's modified load generator, which
  keeps at least ``D`` unconsumed packets in every core's RX ring to
  emulate batched processing of degree ``D``.
* :class:`SpikeSampler` — §VI-F's microbenchmark behaviour: a small
  probability of an extra service delay sampled uniformly from
  [1, 100] µs, functionally equivalent to packet arrival bursts.
* :class:`BurstProfile` — a seeded square-wave modulation of the
  backlog target, used by the ``figS*`` side-channel experiments: a
  constant-rate victim posts exactly one packet per serviced request,
  which makes every arrival statistic a deterministic function of
  elapsed requests and therefore carries no information an attacker
  could not get from a wall clock. Bursty load is what creates a
  nontrivial arrival signal for the prime+probe observer to infer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError


class PoissonArrivals:
    """Exponentially distributed inter-arrival times at a fixed rate."""

    def __init__(
        self,
        rate_per_us: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_per_us <= 0:
            raise ConfigError("arrival rate must be positive")
        self.rate_per_us = rate_per_us
        self._rng = rng if rng is not None else np.random.default_rng(1)

    def next_interval_us(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate_per_us))

    def sample_batch_us(self, count: int) -> np.ndarray:
        """Arrival *times* (cumulative) for ``count`` packets."""
        gaps = self._rng.exponential(1.0 / self.rate_per_us, size=count)
        return np.cumsum(gaps)


class BacklogController:
    """Keeps each RX ring's backlog at a target depth ``D``.

    ``refill(backlog)`` returns how many packets the generator must
    inject right now so that the ring again holds at least ``D``
    unconsumed packets (the paper's emulation of batching of degree D).
    A target of zero degenerates to "one packet per service" closed-loop
    operation.
    """

    def __init__(self, target_depth: int) -> None:
        if target_depth < 0:
            raise ConfigError("target backlog depth must be non-negative")
        self.target_depth = target_depth

    def refill(self, current_backlog: int) -> int:
        if current_backlog < 0:
            raise ConfigError("backlog cannot be negative")
        deficit = max(self.target_depth, 1) - current_backlog
        return max(deficit, 0)


@dataclass(frozen=True)
class BurstProfile:
    """Seeded square-wave load: backlog target per absolute request.

    Requests are grouped into fixed ``window``-sized windows; each
    window's backlog target is drawn (seeded, stateless) from
    ``{low, high}``. A low->high transition posts ``high - low`` packets
    in one request (a burst); a high->low transition posts nothing while
    the backlog drains. ``depth`` is a pure function of the absolute
    request index, so epoch-chunked runs see the identical load shape
    and the warmup/measure phases replay the same sequence.
    """

    #: calm-phase backlog target (>= 1: the ring never runs dry).
    low: int = 1
    #: burst-phase backlog target; the burst amplitude is ``high - low``.
    high: int = 33
    #: requests per window (same-depth windows merge into longer runs).
    window: int = 24
    #: seed for the per-window depth draw.
    seed: int = 5

    def __post_init__(self) -> None:
        if self.low < 1:
            raise ConfigError("burst low depth must be >= 1")
        if self.high < self.low:
            raise ConfigError("burst high depth must be >= low")
        if self.window < 1:
            raise ConfigError("burst window must be >= 1")

    def depth(self, request_index: int) -> int:
        """Backlog target for one request; stateless and seeded."""
        w = request_index // self.window
        x = (w * 2246822519 + self.seed * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF
        x ^= x >> 15
        x = (x * 2246822519) & 0xFFFFFFFF
        x ^= x >> 13
        return self.high if x & 0x10000 else self.low


class SpikeSampler:
    """Occasional long service delays (Figure 10's spiky workload)."""

    def __init__(
        self,
        probability: float = 0.001,
        low_us: float = 1.0,
        high_us: float = 100.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigError("spike probability must be in [0, 1]")
        if low_us > high_us or low_us < 0:
            raise ConfigError("spike delay range is invalid")
        self.probability = probability
        self.low_us = low_us
        self.high_us = high_us
        self._rng = rng if rng is not None else np.random.default_rng(2)

    def sample_extra_delay_us(self) -> float:
        """Zero most of the time; uniform [low, high] µs on a spike."""
        if float(self._rng.random()) >= self.probability:
            return 0.0
        return float(self._rng.uniform(self.low_us, self.high_us))

    def mean_extra_delay_us(self) -> float:
        return self.probability * 0.5 * (self.low_us + self.high_us)
