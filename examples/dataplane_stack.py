#!/usr/bin/env python3
"""The networking-library view: a DPDK-style dataplane with Sweeper.

The paper's §V-A places ``relinquish`` inside the networking library —
after the application's last read of a packet, before the buffer is
recycled for NIC reuse. This example runs that exact loop on the
simulated hardware twice (baseline stack vs Sweeper stack) and shows:

* the lifecycle contract enforced (read-after-relinquish and
  recycle-without-relinquish are rejected like memory bugs);
* the memory-traffic difference the library-level integration buys.

Run:  python examples/dataplane_stack.py
"""

import sys

from repro import Dataplane, DataplaneConfig, MemCategory, SystemConfig
from repro.errors import ProtocolError
from repro.report.tables import Table


def run_stack(sweeper: bool, packets: int = 5000):
    system = SystemConfig().scaled(0.1).with_nic(ddio_ways=2)
    dp = Dataplane(
        system,
        DataplaneConfig(
            burst_size=32,
            pool_capacity=1024,
            packet_bytes=1024,
            sweeper_enabled=sweeper,
        ),
    )
    handled = dp.run(packets)
    return dp, handled


def demonstrate_contract() -> None:
    dp, _ = run_stack(sweeper=True, packets=0)
    dp.nic_receive(2)
    first, second = dp.rx_burst(2).mbufs
    dp.read_packet(first)
    first.relinquish()  # contents are now conclusively dead
    try:
        first.app_read()
    except ProtocolError as exc:
        print(f"contract enforced: {exc}")
    try:
        second.recycle(require_relinquish=True)  # skipped relinquish
    except ProtocolError as exc:
        print(f"contract enforced: {exc}")


def main() -> int:
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    table = Table(
        ["Stack", "Packets", "RX Evct/pkt", "Total mem acc/pkt",
         "clsweeps issued"],
        title="DPDK-style dataplane: baseline vs Sweeper-integrated library",
    )
    for sweeper in (False, True):
        dp, handled = run_stack(sweeper, packets)
        traffic = dp.hier.traffic
        table.add_row(
            "Sweeper" if sweeper else "baseline",
            handled,
            traffic.get(MemCategory.RX_EVCT) / handled,
            traffic.total() / handled,
            dp.sweeper.stats.clsweep_instructions,
        )
    print(table.render())
    print()
    demonstrate_contract()
    print(
        "\nThe library owns the ordering guarantee: relinquish always "
        "precedes buffer recycling, so the NIC never races a sweep (§V-A)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
