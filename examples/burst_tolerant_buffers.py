#!/usr/bin/env python3
"""Sizing receive rings for bursty traffic without losing throughput.

The §VI-F dilemma: a latency-sensitive KVS occasionally stalls for
1-100 µs (GC pauses, lock contention, arrival bursts). Shallow rings
drop packets during the stalls; deep rings leak network data and lose
steady-state throughput. This script measures the no-drop peak across
ring depths and shows Sweeper removing the deep-buffer penalty — size
for the worst burst, keep peak throughput.

Run:  python examples/burst_tolerant_buffers.py [scale]
"""

import sys

from repro import ServiceProfile, TraceConfig, TraceSimulator
from repro.engine.analytic import bandwidth_gbps, service_cycles
from repro.engine.events import FiniteRingSimulator
from repro.experiments.common import kvs_system
from repro.mem.dram import DramModel
from repro.report.tables import Table
from repro.workloads.kvs import KvsParams
from repro.workloads.spiky import SpikyKvsWorkload

DEPTHS = (128, 512, 2048)


def no_drop_peak(scale, buffers, sweeper):
    system = kvs_system(scale, buffers, 2, 1024)
    workload = SpikyKvsWorkload(
        KvsParams(item_bytes=1024).scaled(scale), spike_probability=0.001
    )
    cfg = TraceConfig(
        system=system, workload=workload, policy="ddio", sweeper=sweeper
    )
    profile = ServiceProfile.from_trace(TraceSimulator(cfg).run())
    dram = DramModel(system.memory, system.cpu.freq_ghz)

    def base_service_us(mrps):
        latency = dram.avg_latency_cycles(bandwidth_gbps(profile, mrps))
        return service_cycles(profile, system, latency) / system.cpu.cycles_per_us

    sim = FiniteRingSimulator(
        system, buffers, base_service_us,
        spike_sampler=workload.extra_delay_us,
    )
    return sim.peak_no_drop_mrps(packets_per_core=8000)


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    table = Table(
        ["RX buffers/core", "Baseline no-drop Mrps", "Sweeper no-drop Mrps"],
        title="No-drop peak under 0.1% x [1,100]us service spikes "
              "(full-scale numbers)",
    )
    peaks = {}
    for depth in DEPTHS:
        base = no_drop_peak(scale, depth, sweeper=False) / scale
        sw = no_drop_peak(scale, depth, sweeper=True) / scale
        peaks[depth] = (base, sw)
        table.add_row(depth, base, sw)
    print(table.render())

    deep, shallow = peaks[DEPTHS[-1]], peaks[DEPTHS[0]]
    print(
        f"\nDeep buffers deliver {deep[0] / shallow[0]:.2f}x the drop-free "
        f"throughput of shallow ones ({deep[1] / shallow[0]:.2f}x with "
        "Sweeper; paper: 3.3x and 3.7x). With Sweeper, provisioning for "
        "the worst burst costs nothing in the steady state."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
