#!/usr/bin/env python3
"""Multi-tenant server: an L3 forwarder collocated with a memory-bound
analytics tenant (the paper's §VI-E scenario).

Half the cores run a DPDK-style L3 forwarder with deep RX rings; the
other half run X-Mem, a memory-intensive tenant. The LLC is partitioned:
DDIO gets A ways, the analytics tenant the remaining 12-A. The script
sweeps the partition point and prints the Pareto frontier with and
without Sweeper — Sweeper's frontier dominates, so *both* tenants win.

Run:  python examples/nf_collocation.py [scale]
"""

import dataclasses
import sys

from repro.engine.analytic import ServiceProfile, solve_collocated
from repro.engine.tracer import CollocationSimulator, TraceConfig
from repro.experiments.common import kvs_system, l3fwd_workload
from repro.report.tables import Table
from repro.traffic import MemCategory
from repro.workloads.xmem import XMemWorkload

PARTITIONS = ((2, 10), (4, 8), (6, 6), (8, 4))


def evaluate(scale, ddio_ways, sweeper):
    system = kvs_system(scale, 2048, ddio_ways, 1024)
    cores = system.cpu.num_cores
    xmem_cores = list(range(cores // 2, cores))
    cfg = TraceConfig(
        system=system,
        workload=l3fwd_workload(1024, l1_resident=True),
        policy="ddio",
        sweeper=sweeper,
    )
    sim = CollocationSimulator(
        cfg, XMemWorkload(), xmem_cores,
        xmem_ways_mask=list(range(ddio_ways, 12)),
    )
    for core in range(cores - len(xmem_cores)):
        sim.hier.set_core_fill_mask(core, list(range(ddio_ways)))
    colo = sim.run_collocated()
    trace = colo.nf_result
    per = trace.per_request()
    app = per[MemCategory.CPU_OTHER_RD] + per[MemCategory.OTHER_EVCT]
    nf_profile = dataclasses.replace(
        ServiceProfile.from_trace(trace),
        mem_blocks_total=trace.mem_accesses_per_request() - app,
    )
    xmem_blocks = app * trace.requests / max(colo.xmem_accesses, 1)
    return solve_collocated(
        nf_profile,
        colo.xmem_level_counts,
        xmem_blocks,
        system,
        nf_cores=cores - len(xmem_cores),
        xmem_cores=len(xmem_cores),
    )


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    scale = max(scale, 2.01 / 24)  # need one core per tenant
    table = Table(
        ["(DDIO, X-Mem) ways", "Sweeper", "L3fwd Mrps (full-scale)",
         "X-Mem IPC"],
        title="Collocation Pareto frontier (paper Figure 9a)",
    )
    results = {}
    for a, b in PARTITIONS:
        for sweeper in (False, True):
            perf = evaluate(scale, a, sweeper)
            results[(a, sweeper)] = perf
            table.add_row(
                f"({a},{b})",
                "yes" if sweeper else "no",
                perf.nf_throughput_mrps / scale,
                perf.xmem_ipc,
            )
    print(table.render())

    a = 4
    base, sw = results[(a, False)], results[(a, True)]
    print(
        f"\nAt the balanced (4,8) split, Sweeper boosts the forwarder by "
        f"{sw.nf_throughput_mrps / base.nf_throughput_mrps:.2f}x and the "
        f"analytics tenant by {sw.xmem_ipc / base.xmem_ipc:.2f}x "
        "(paper: 1.5x and 1.14x) — the frontier moves out on both axes."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
