#!/usr/bin/env python3
"""Quickstart: measure network data leaks and fix them with Sweeper.

Builds the paper's 24-core server (scaled down for laptop runtimes),
runs the MICA-style KVS under plain 2-way DDIO and under DDIO+Sweeper,
and prints what the paper's Figures 1c/5 show: consumed-buffer
evictions (RX Evct) dominate the baseline's memory traffic, Sweeper
eliminates them, and peak sustainable throughput rises accordingly.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro import (
    KvsParams,
    KvsWorkload,
    ServiceProfile,
    SystemConfig,
    TraceConfig,
    TraceSimulator,
    solve_peak_throughput,
)
from repro.report.tables import Table, format_breakdown


def run_config(scale: float, sweeper: bool):
    system = (
        SystemConfig()
        .scaled(scale)
        .with_nic(ddio_ways=2, rx_buffers_per_core=2048, packet_bytes=1024)
    )
    workload = KvsWorkload(KvsParams(item_bytes=1024).scaled(scale))
    cfg = TraceConfig(
        system=system, workload=workload, policy="ddio", sweeper=sweeper
    )
    trace = TraceSimulator(cfg).run()
    peak = solve_peak_throughput(ServiceProfile.from_trace(trace), system)
    return trace, peak


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Simulating at machine scale {scale} "
          f"({max(1, round(24 * scale))} of 24 cores)...\n")

    table = Table(
        ["Config", "Peak Mrps (full-scale)", "Mem BW (GB/s)", "Mem acc/req"],
        title="KVS, 1 KB items, 2048 RX buffers/core, 2-way DDIO",
    )
    rows = {}
    for sweeper in (False, True):
        trace, peak = run_config(scale, sweeper)
        label = "DDIO + Sweeper" if sweeper else "DDIO"
        rows[label] = (trace, peak)
        table.add_row(
            label,
            peak.throughput_mrps / scale,
            peak.mem_bandwidth_gbps / scale,
            trace.mem_accesses_per_request(),
        )
    print(table.render())

    print("\nPer-request memory access breakdown:")
    for label, (trace, _peak) in rows.items():
        print(f"  {label:16s} {format_breakdown(trace.per_request())}")

    base = rows["DDIO"][1].throughput_mrps
    swept = rows["DDIO + Sweeper"][1].throughput_mrps
    print(f"\nSweeper throughput gain: {swept / base:.2f}x "
          "(paper: up to 2.6x at this configuration)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
