#!/usr/bin/env python3
"""Capacity planning for a KVS appliance: how many DDIO ways, how deep
a receive ring, and is Sweeper worth it?

The scenario the paper's introduction motivates: a 24-core server runs a
high-performance key-value store behind a multi-hundred-gigabit NIC.
The operator must choose (a) how many LLC ways to hand to DDIO and
(b) how many RX buffers to provision per core. This script sweeps both
knobs, reports peak sustainable throughput and the network bandwidth it
corresponds to, and shows how Sweeper collapses the whole decision
space (any deep-buffer configuration becomes near-optimal).

Run:  python examples/kvs_capacity_planning.py [scale]
"""

import sys

from repro import ServiceProfile, TraceConfig, TraceSimulator, solve_peak_throughput
from repro.experiments.common import kvs_system, kvs_workload
from repro.report.tables import Table

ITEM_BYTES = 1024
BUFFERS = (512, 2048)
WAYS = (2, 6, 12)


def evaluate(scale, buffers, ways, sweeper):
    system = kvs_system(scale, buffers, ways, ITEM_BYTES)
    cfg = TraceConfig(
        system=system,
        workload=kvs_workload(scale, ITEM_BYTES),
        policy="ddio",
        sweeper=sweeper,
    )
    trace = TraceSimulator(cfg).run()
    peak = solve_peak_throughput(ServiceProfile.from_trace(trace), system)
    return peak


def main() -> int:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    table = Table(
        ["RX bufs/core", "DDIO ways", "Baseline Mrps", "Baseline Gbps",
         "Sweeper Mrps", "Sweeper Gbps", "Gain"],
        title=f"KVS appliance planning grid (scale {scale}, full-scale numbers)",
    )
    best = {}
    for buffers in BUFFERS:
        for ways in WAYS:
            base = evaluate(scale, buffers, ways, sweeper=False)
            sw = evaluate(scale, buffers, ways, sweeper=True)
            table.add_row(
                buffers,
                ways,
                base.throughput_mrps / scale,
                base.network_gbps(ITEM_BYTES) / scale,
                sw.throughput_mrps / scale,
                sw.network_gbps(ITEM_BYTES) / scale,
                f"{sw.throughput_mrps / base.throughput_mrps:.2f}x",
            )
            best[(buffers, ways, False)] = base.throughput_mrps
            best[(buffers, ways, True)] = sw.throughput_mrps
    print(table.render())

    base_spread = max(
        v for (b, w, s), v in best.items() if not s
    ) / min(v for (b, w, s), v in best.items() if not s)
    sw_spread = max(v for (b, w, s), v in best.items() if s) / min(
        v for (b, w, s), v in best.items() if s
    )
    print(
        f"\nWithout Sweeper, the best/worst configuration differ by "
        f"{base_spread:.2f}x -> provisioning is a real decision.\n"
        f"With Sweeper they differ by only {sw_spread:.2f}x -> deploy deep "
        "buffers for burst resilience and stop tuning (§VI-A, §VI-F)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
