"""Figure 2: L3fwd with D queued packets per core (premature evictions)."""

from repro.experiments import fig2
from repro.traffic import MemCategory

from benchmarks.conftest import emit


def test_fig2(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig2.run(settings=settings), rounds=1, iterations=1
    )
    emit(results_dir, "fig2_l3fwd_queued", result.render())

    # Premature evictions (CPU RX Rd) grow with D, strongest at 2-way.
    d50 = result.point("D=50 / DDIO 2 Ways").breakdown
    d450 = result.point("D=450 / DDIO 2 Ways").breakdown
    assert d450[MemCategory.CPU_RX_RD] > d50[MemCategory.CPU_RX_RD]
    w12 = result.point("D=450 / DDIO 12 Ways").breakdown
    assert w12[MemCategory.CPU_RX_RD] < d450[MemCategory.CPU_RX_RD]
    # Ideal-DDIO bandwidth negligible (L3fwd dataset is cache-resident).
    ideal = result.point("D=450 / Ideal DDIO")
    assert ideal.trace.mem_accesses_per_request() < 3.0
