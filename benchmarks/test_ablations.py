"""Ablation benches for the design choices DESIGN.md calls out, plus
micro-benchmarks of the simulator's hot paths."""

import dataclasses

from repro.engine.tracer import TraceConfig, TraceSimulator
from repro.experiments.common import kvs_system, kvs_workload
from repro.report.tables import Table
from repro.traffic import MemCategory
from repro.workloads.zipf import ZipfGenerator

from benchmarks.conftest import emit


def _trace(settings, replacement=None, victim_fill_clean=False,
           in_place=True, sweeper=False, queued_depth=1, ways=2):
    system = kvs_system(settings.scale, 1024, ways, 1024)
    if replacement is not None:
        system = system.replace(
            llc=dataclasses.replace(system.llc, replacement=replacement)
        )
    workload = kvs_workload(settings.scale, 1024)
    workload.params = dataclasses.replace(
        workload.params, update_in_place=in_place
    )
    cfg = TraceConfig(system=system, workload=workload, policy="ddio",
                      sweeper=sweeper, queued_depth=queued_depth)
    cfg.measure_requests = settings.measure_requests(cfg)
    sim = TraceSimulator(cfg)
    sim.hier.victim_fill_clean = victim_fill_clean
    return sim.run()


def test_ablation_llc_replacement(benchmark, settings, results_dir):
    """Random vs LRU LLC replacement: random softens the ring-cycling
    cliff into the proportional survival the paper's gradient shows."""

    def run():
        return {
            repl: _trace(settings, replacement=repl, ways=6)
            for repl in ("random", "lru")
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["LLC replacement", "RX Evct/req", "Mem acc/req"],
              title="Ablation: LLC replacement policy (6-way DDIO)")
    for repl, trace in out.items():
        t.add_row(repl, trace.per_request()[MemCategory.RX_EVCT],
                  trace.mem_accesses_per_request())
    emit(results_dir, "ablation_replacement", t.render())


def test_ablation_clean_victim_fills(benchmark, settings, results_dir):
    """§VI-C runaway buffers: clean L2-victim fills let prematurely
    evicted buffers park outside the DDIO ways."""

    def run():
        return {
            fill: _trace(settings, victim_fill_clean=fill, queued_depth=64)
            for fill in (False, True)
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        ["Clean victim fills", "CPU RX Rd/req", "RX Evct/req",
         "RX blocks in LLC"],
        title="Ablation: clean-victim LLC fills under deep queues",
    )
    from repro.mem.layout import RegionKind

    for fill, trace in out.items():
        per = trace.per_request()
        t.add_row(
            "on" if fill else "off",
            per[MemCategory.CPU_RX_RD],
            per[MemCategory.RX_EVCT],
            trace.llc_occupancy_by_kind[RegionKind.RX_BUFFER],
        )
    emit(results_dir, "ablation_clean_fills", t.render())
    assert (
        out[True].llc_occupancy_by_kind[RegionKind.RX_BUFFER]
        >= out[False].llc_occupancy_by_kind[RegionKind.RX_BUFFER]
    )


def test_ablation_kvs_update_mode(benchmark, settings, results_dir):
    """In-place item updates (HERD-style) vs log appends: appends stream
    dirty data through the LLC and triple the app-side traffic."""

    def run():
        return {
            mode: _trace(settings, in_place=(mode == "in-place"))
            for mode in ("in-place", "append")
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(["SET mode", "CPU Other Rd/req", "Other Evct/req"],
              title="Ablation: KVS SET update mode")
    for mode, trace in out.items():
        per = trace.per_request()
        t.add_row(mode, per[MemCategory.CPU_OTHER_RD],
                  per[MemCategory.OTHER_EVCT])
    emit(results_dir, "ablation_kvs_mode", t.render())
    assert (
        out["append"].per_request()[MemCategory.OTHER_EVCT]
        > out["in-place"].per_request()[MemCategory.OTHER_EVCT]
    )


def test_microbench_cache_access(benchmark):
    """Raw simulator throughput: one cpu_read on a warm hierarchy."""
    from repro.cache.hierarchy import CacheHierarchy
    from repro.mem.layout import RegionKind
    from repro.params import SystemConfig

    hier = CacheHierarchy(SystemConfig().scaled(0.125))
    blocks = list(range(4096))
    for b in blocks:
        hier.cpu_read(0, b, RegionKind.APP)
    i = 0

    def access():
        nonlocal i
        i = (i + 1) % 4096
        hier.cpu_read(0, blocks[i], RegionKind.APP)

    benchmark(access)


def test_microbench_sweep(benchmark):
    """clsweep cost: invalidate one resident block across three levels."""
    from repro.cache.hierarchy import CacheHierarchy
    from repro.mem.layout import RegionKind
    from repro.params import SystemConfig

    hier = CacheHierarchy(SystemConfig().scaled(0.125))

    def sweep():
        hier.nic_llc_write(0, 7, RegionKind.RX_BUFFER)
        hier.sweep_block(0, 7)

    benchmark(sweep)


def test_microbench_zipf_sampling(benchmark):
    z = ZipfGenerator(300_000)
    benchmark(z.sample)
