"""Benchmark configuration.

Each benchmark regenerates one paper artifact (table or figure), prints
the rows the paper reports, and archives them under ``results/``.

Fidelity is environment-controlled:

* ``REPRO_SCALE``   — machine scale factor (default ``DEFAULT_SCALE``
  from ``repro.experiments.common``, the single source of truth: a 2-3
  core slice with all capacity ratios preserved; set 1.0 for the full
  24-core machine, at ~100x the runtime);
* ``REPRO_MEASURE`` — multiplier on measured request counts (default 0.5);
* ``REPRO_WORKERS`` — process count for grid fan-out (see
  ``repro.engine.parallel``);
* ``REPRO_NO_CACHE=1`` — bypass the persistent point-result cache.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.common import DEFAULT_SCALE, ExperimentSettings

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    scale = float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
    measure = float(os.environ.get("REPRO_MEASURE", 0.5))
    return ExperimentSettings(scale=scale, measure_multiplier=measure)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a figure's rows and archive them."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
