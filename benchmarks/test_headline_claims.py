"""Abstract headline claims: up to 1.3x bandwidth saved, 2.6x throughput."""

from repro.experiments import headline

from benchmarks.conftest import emit


def test_headline(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: headline.run(settings=settings), rounds=1, iterations=1
    )
    emit(results_dir, "headline_claims", result.render())

    # The reproduction should land in the paper's ballpark: a large
    # throughput gain at the bandwidth-starved corner and a >1.3x
    # reduction in memory traffic per request.
    assert result.series["max_throughput_gain"] > 1.6
    assert result.series["max_bandwidth_saving"] > 1.3
