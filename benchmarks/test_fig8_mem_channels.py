"""Figure 8: sensitivity to memory-channel provisioning (3/4/8)."""

from repro.experiments import fig8
from repro.report.tables import Table

from benchmarks.conftest import emit


def test_fig8(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig8.run(settings=settings), rounds=1, iterations=1
    )
    gains = result.series["sweeper_gain_by_channels"]
    t = Table(["Channels", "Sweeper gain (min)", "Sweeper gain (max)"],
              title="Sweeper gain vs memory provisioning")
    for ch, (lo, hi) in gains.items():
        t.add_row(ch, lo, hi)
    emit(results_dir, "fig8_mem_channels", result.render() + "\n\n" + t.render())

    # Paper shape: the gain grows as channels shrink and persists at 8.
    assert gains[3][1] >= gains[4][1] >= gains[8][1]
    assert gains[8][1] > 1.1
    # Throughput rises with channel count for every DDIO config.
    for packet, buffers in fig8.SCENARIOS:
        for ways in fig8.DDIO_WAYS:
            series = [
                result.point(
                    f"{packet}B/{buffers} bufs / {ch}ch / DDIO {ways} Ways"
                ).throughput_mrps
                for ch in fig8.CHANNELS
            ]
            assert series == sorted(series)
