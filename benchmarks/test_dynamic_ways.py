"""Head-to-head: static DDIO vs IAT-style dynamic ways vs Sweeper (§VII).

The paper argues capacity-juggling techniques (IAT, IDIO) only delay the
onset of leaks while Sweeper removes their root cause. This bench pits
the three designs against the same leak-heavy KVS configuration.
"""

from repro.engine.analytic import ServiceProfile, solve_peak_throughput
from repro.engine.dynamic import DynamicWaysSimulator
from repro.engine.tracer import TraceConfig, TraceSimulator
from repro.experiments.common import kvs_system, kvs_workload
from repro.nic.dynamic import DynamicWaysConfig
from repro.report.tables import Table
from repro.traffic import MemCategory

from benchmarks.conftest import emit


def _run(settings, variant):
    system = kvs_system(settings.scale, 2048, 2, 1024)
    cfg = TraceConfig(
        system=system,
        workload=kvs_workload(settings.scale, 1024),
        policy="ddio",
        sweeper=(variant == "sweeper"),
    )
    cfg.measure_requests = settings.measure_requests(cfg)
    if variant == "dynamic":
        sim = DynamicWaysSimulator(
            cfg, DynamicWaysConfig(min_ways=2, max_ways=8, epoch_requests=256)
        )
    else:
        sim = TraceSimulator(cfg)
    trace = sim.run()
    peak = solve_peak_throughput(ServiceProfile.from_trace(trace), system)
    ways = sim.final_ways if variant == "dynamic" else 2
    return trace, peak, ways


def test_static_vs_dynamic_vs_sweeper(benchmark, settings, results_dir):
    def run():
        return {
            v: _run(settings, v) for v in ("static", "dynamic", "sweeper")
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    t = Table(
        ["Design", "DDIO ways (final)", "RX Evct/req", "Mem acc/req",
         "Peak Mrps (full-scale)"],
        title="Static DDIO vs dynamic way reallocation vs Sweeper "
              "(KVS, 2048 bufs, 1 KB)",
    )
    for variant, (trace, peak, ways) in out.items():
        t.add_row(
            variant,
            ways,
            trace.per_request()[MemCategory.RX_EVCT],
            trace.mem_accesses_per_request(),
            peak.throughput_mrps / settings.scale,
        )
    emit(results_dir, "ablation_dynamic_ways", t.render())

    static, dynamic, sweeper = out["static"], out["dynamic"], out["sweeper"]
    # Dynamic reallocation helps, Sweeper wins outright.
    assert dynamic[2] > 2  # it did grow the DDIO allocation
    assert sweeper[1].throughput_mrps >= dynamic[1].throughput_mrps
    assert (
        sweeper[0].per_request()[MemCategory.RX_EVCT]
        < 0.2 * max(dynamic[0].per_request()[MemCategory.RX_EVCT], 0.05)
        or dynamic[0].per_request()[MemCategory.RX_EVCT] < 0.05
    )
