"""Figure 9: collocated L3fwd + X-Mem, partitioned and overlapping."""

from repro.experiments import fig9
from repro.report.tables import Table

from benchmarks.conftest import emit


def _frontier_table(result) -> str:
    t = Table(
        ["(DDIO, X-Mem) ways", "Sweeper", "L3fwd (norm)", "X-Mem IPC (norm)"],
        title="Figure 9a: normalized to (4,8)+Sweeper",
    )
    for (a, sw), (nf, xm) in sorted(result.series["frontier_normalized"].items()):
        t.add_row(f"({a},{12 - a})", "yes" if sw else "no", nf, xm)
    return t.render()


def _overlap_table(result) -> str:
    t = Table(
        ["DDIO ways", "Sweeper", "L3fwd Mrps (scaled)", "X-Mem IPC"],
        title="Figure 9b: X-Mem over the whole LLC",
    )
    for (w, sw), p in sorted(result.series["overlapping"].items()):
        t.add_row(w, "yes" if sw else "no", p.perf.nf_throughput_mrps,
                  p.perf.xmem_ipc)
    return t.render()


def test_fig9(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig9.run(settings=settings), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [result.render(), _frontier_table(result), _overlap_table(result)]
    )
    emit(results_dir, "fig9_collocation", text)

    part = result.series["partitioned"]
    for a, _b in fig9.PARTITIONS_9A:
        base, sw = part[(a, False)].perf, part[(a, True)].perf
        # Sweeper shifts the Pareto frontier outward on both axes.
        assert sw.nf_throughput_mrps >= base.nf_throughput_mrps
        assert sw.xmem_ipc >= 0.98 * base.xmem_ipc
    over = result.series["overlapping"]
    sw_nf = [over[(w, True)].perf.nf_throughput_mrps
             for w in fig9.OVERLAP_WAYS_9B]
    # With Sweeper, L3fwd is insensitive to its DDIO way allocation.
    assert max(sw_nf) / min(sw_nf) < 1.25
