"""Figure 5: the central grid — DDIO ways x Sweeper x packet x buffers."""

from repro.experiments import fig5
from repro.traffic import MemCategory

from benchmarks.conftest import emit


def test_fig5(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig5.run(settings=settings), rounds=1, iterations=1
    )
    emit(results_dir, "fig5_ddio_ways", result.render())

    assert result.series["sweeper_gain_min"] >= 0.95
    assert result.series["sweeper_gain_max"] >= 1.5

    for packet in fig5.PACKET_SIZES:
        for buffers in fig5.BUFFER_SWEEP:
            base = result.point(
                fig5.point_label(packet, buffers, "ddio", 2, False)
            )
            sw = result.point(fig5.point_label(packet, buffers, "ddio", 2, True))
            ideal = result.point(
                fig5.point_label(packet, buffers, "ideal", 2, False)
            )
            # Sweeper wipes out consumed-buffer evictions...
            if base.breakdown[MemCategory.RX_EVCT] > 0.5:
                assert sw.breakdown[MemCategory.RX_EVCT] < 0.15 * (
                    base.breakdown[MemCategory.RX_EVCT]
                )
            # ...and lands near the unrealizable ideal (paper: within 2-18%).
            assert sw.throughput_mrps >= 0.7 * ideal.throughput_mrps
