"""Figure 7: Sweeper's effect under premature buffer evictions."""

import pytest

from repro.experiments import fig7

from benchmarks.conftest import emit


def test_fig7(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig7.run(settings=settings), rounds=1, iterations=1
    )
    emit(results_dir, "fig7_premature", result.render())

    gains = result.series["sweeper_gains"]
    assert min(gains) > 1.0  # Sweeper helps even with premature evictions
    # Figure 7b signature: residual RX Evct == CPU RX Rd with Sweeper.
    for rx_evct, rx_rd in result.series["residual_match"]:
        assert rx_evct == pytest.approx(rx_rd, rel=0.15, abs=0.05)
