"""Table I: print the simulated system parameters (paper vs scaled)."""

from repro.experiments import table1

from benchmarks.conftest import emit


def test_table1(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: table1.run(settings=settings), rounds=1, iterations=1
    )
    text = (
        result.series["rendered"]
        + "\n\nBenchmark-scale machine:\n"
        + result.series["scaled_rendered"]
    )
    emit(results_dir, "table1", text)
    assert "DDR4-3200" in text
