"""Figure 6: loaded memory-latency CDFs, peak and iso-throughput panels."""

import numpy as np

from repro.engine.events import sample_memory_latencies
from repro.experiments import fig6
from repro.report.tables import Table

from benchmarks.conftest import emit


def _panel_table(title, curves) -> str:
    t = Table(
        ["Configuration", "Throughput (Mrps, scaled)", "Mean lat (cyc)",
         "p99 lat (cyc)"],
        title=title,
    )
    for c in curves:
        t.add_row(c.label, c.throughput_mrps, c.mean_cycles, c.p99_cycles)
    return t.render()


def test_fig6(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig6.run(settings=settings), rounds=1, iterations=1
    )
    text = "\n\n".join(
        [
            result.render(),
            _panel_table("Left panel: each config at its own peak",
                         result.series["at_peak"]),
            _panel_table(
                "Right panel: iso-throughput at the 2-way DDIO peak "
                f"({result.series['iso_throughput_mrps']:.2f} scaled Mrps)",
                result.series["iso_throughput"],
            ),
        ]
    )
    emit(results_dir, "fig6_latency_cdf", text)

    curves = fig6.curves_by_label(result, "iso_throughput")
    base = curves["DDIO 2 Ways"]
    sw = curves["DDIO 2 Ways + Sweeper"]
    assert sw.mean_cycles < base.mean_cycles
    assert sw.p99_cycles < base.p99_cycles

    # Cross-check the closed-form curve with the event-driven DRAM
    # sampler at the baseline's operating bandwidth.
    point = result.point("DDIO 2 Ways")
    empirical = sample_memory_latencies(
        point.system, point.mem_bandwidth_gbps, num_accesses=30000
    )
    assert np.mean(empirical) > point.system.memory.idle_latency_cycles
