"""Figure 10: shallow vs deep buffering under spiky service times."""

from repro.experiments import fig10
from repro.report.tables import Table

from benchmarks.conftest import emit


def _tables(result) -> str:
    peaks = result.series["peak_no_drop_mrps"]
    t = Table(["Buffers", "Baseline peak (scaled Mrps)", "Sweeper peak"],
              title="Figure 10a: no-drop peak throughput")
    for buffers in fig10.BUFFER_SWEEP:
        t.add_row(buffers, peaks[(buffers, False)], peaks[(buffers, True)])
    lines = [t.render(), "", "Figure 10b: drop rate vs offered load"]
    for curve in result.series["drop_curves"]:
        pairs = "  ".join(
            f"{x:.2f}->{100 * d:.2f}%"
            for x, d in zip(curve.offered_mrps, curve.drop_rate)
        )
        lines.append(f"  {curve.label:22s} {pairs}")
    return "\n".join(lines)


def test_fig10(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig10.run(settings=settings, packets_per_core=8000),
        rounds=1,
        iterations=1,
    )
    emit(results_dir, "fig10_shallow", result.render() + "\n\n" + _tables(result))

    peaks = result.series["peak_no_drop_mrps"]
    # Deeper buffering beats shallow on drop-free throughput (paper: 3.3x
    # for its best depth), and 2048 + Sweeper beats every baseline depth
    # (paper: 3.7x over shallow).
    best_base = max(peaks[(b, False)] for b in fig10.BUFFER_SWEEP)
    assert best_base > 1.2 * peaks[(128, False)]
    assert peaks[(2048, True)] >= best_base
    # Drop curves are (noise-tolerant) monotone in offered load.
    for curve in result.series["drop_curves"]:
        assert all(
            b >= a - 0.02 for a, b in zip(curve.drop_rate, curve.drop_rate[1:])
        )
