"""Figure 1: KVS under DMA / DDIO{2,4,6} / ideal across buffer depths."""

from repro.experiments import fig1
from repro.traffic import MemCategory

from benchmarks.conftest import emit


def test_fig1(benchmark, settings, results_dir):
    result = benchmark.pedantic(
        lambda: fig1.run(settings=settings), rounds=1, iterations=1
    )
    emit(results_dir, "fig1_kvs_leaks", result.render())

    for buffers in fig1.BUFFER_SWEEP:
        dma = result.point(f"{buffers} bufs / DMA")
        ddio = result.point(f"{buffers} bufs / DDIO 4 Ways")
        ideal = result.point(f"{buffers} bufs / Ideal DDIO")
        # Paper: DDIO yields up to 2.1x over DMA; ideal bounds everything.
        assert ddio.throughput_mrps > dma.throughput_mrps
        assert ideal.throughput_mrps >= 0.95 * ddio.throughput_mrps
        # Consumed evictions dominate; premature negligible (§IV-A).
        b = ddio.breakdown
        if b[MemCategory.RX_EVCT] > 0.5:
            assert b[MemCategory.CPU_RX_RD] < 0.2 * b[MemCategory.RX_EVCT]
