"""Microbenchmark of the simulator's hot paths (insert / cpu_access).

Measures raw operation throughput of the set-associative cache and the
hierarchy cascade, plus one end-to-end trace point, and archives the
numbers to ``results/hotpath_micro.txt`` so speedups/regressions are
visible across commits. The thresholds only guard against catastrophic
regressions — absolute ops/sec are machine-dependent.
"""

from __future__ import annotations

import json
import os
import time

from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.engine.batch import BatchHierarchy
from repro.experiments.common import (
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_spec,
)
from repro.engine.parallel import run_spec
from repro.mem.layout import RegionKind
from repro.params import CacheParams, SystemConfig

from benchmarks.conftest import emit


def _ops_per_sec(fn, n: int) -> float:
    start = time.perf_counter()
    fn(n)
    return n / (time.perf_counter() - start)


def _bench_insert(cache: SetAssociativeCache, blocks: int):
    def body(n: int) -> None:
        insert = cache.insert
        kind = int(RegionKind.APP)
        for i in range(n):
            insert(i % blocks, True, kind)

    return body


def _bench_access(cache: SetAssociativeCache, blocks: int):
    def body(n: int) -> None:
        access = cache.access
        for i in range(n):
            access(i % blocks)

    return body


def _bench_cpu_access(hier: CacheHierarchy, blocks: int):
    def body(n: int) -> None:
        cpu_access = hier.cpu_access
        kind = RegionKind.APP
        for i in range(n):
            cpu_access(0, i % blocks, kind, False)

    return body


def _bench_cpu_access_run(hier: CacheHierarchy, blocks: int, run: int = 16):
    def body(n: int) -> None:
        counts = {lv: 0 for lv in AccessLevel}
        cpu_access_run = hier.cpu_access_run
        kind = RegionKind.APP
        for i in range(n // run):
            cpu_access_run(0, (i * run) % blocks, run, kind, False, counts)

    return body


def test_hotpath_micro(results_dir):
    params = CacheParams(size_bytes=12 * 64 * 1024, ways=12, latency_cycles=10)
    lru = SetAssociativeCache(params)
    rnd = SetAssociativeCache(
        CacheParams(
            size_bytes=12 * 64 * 1024, ways=12, latency_cycles=10, replacement="random"
        )
    )
    hier = CacheHierarchy(SystemConfig().scaled(0.1))
    # Working set ~4x the cache so steady state mixes hits and evictions.
    blocks = 4 * params.num_blocks

    n = 200_000
    rows = [
        ("insert (LRU)", _ops_per_sec(_bench_insert(lru, blocks), n)),
        ("insert (random)", _ops_per_sec(_bench_insert(rnd, blocks), n)),
        ("access (LRU)", _ops_per_sec(_bench_access(lru, blocks), n)),
        ("cpu_access (3-level)", _ops_per_sec(_bench_cpu_access(hier, blocks), n)),
        (
            "cpu_access_run (3-level)",
            _ops_per_sec(_bench_cpu_access_run(hier, blocks), n),
        ),
    ]

    # One end-to-end point at the profiling reference configuration
    # (REPRO_SCALE=0.1): the ISSUE's >=2x speedup target is over this.
    settings = ExperimentSettings(scale=0.1, measure_multiplier=1.0)
    spec = point_spec(
        "end-to-end point",
        kvs_system(0.1, 1024, 2, 1024),
        kvs_workload(0.1, 1024),
        "ddio",
        settings=settings,
    )
    point = run_spec(spec)
    rows.append(("end-to-end point (s)", point.sim_seconds))

    lines = ["hot-path microbenchmark (ops/sec unless noted)"]
    lines += [f"  {name:28s} {value:>14,.0f}" for name, value in rows[:-1]]
    lines.append(f"  {rows[-1][0]:28s} {rows[-1][1]:>14.3f}")
    emit(results_dir, "hotpath_micro", "\n".join(lines))

    # Catastrophic-regression guards only (generous: CI machines vary).
    assert dict(rows)["insert (LRU)"] > 100_000
    assert dict(rows)["cpu_access (3-level)"] > 50_000
    assert point.sim_seconds < 60.0


def _bench_point(engine: str):
    """Simulate the reference end-to-end point under one engine."""
    settings = ExperimentSettings(scale=0.1, measure_multiplier=1.0)
    spec = point_spec(
        "engine bench",
        kvs_system(0.1, 1024, 2, 1024),
        kvs_workload(0.1, 1024),
        "ddio",
        settings=settings,
    )
    prev = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = engine
    try:
        return run_spec(spec)
    finally:
        if prev is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prev


def test_batch_engine_speedup(results_dir):
    """Object vs batch engine on the reference point -> BENCH_pr6.json.

    The committed JSON is the PR's perf receipt: per-engine wall time,
    the measured speedup, the batch backend in use, and per-op rates for
    the batched hierarchy entry points. Asserted thresholds are again
    catastrophic-regression guards only; the real numbers live in the
    artifact.
    """
    # batched hierarchy ops/sec (the vectorized seam the engine adds)
    batch_hier = BatchHierarchy(SystemConfig().scaled(0.1))
    blocks = 4 * batch_hier.llc.params.num_blocks
    rows = [
        (
            "cpu_access (batch)",
            _ops_per_sec(_bench_cpu_access(batch_hier, blocks), 200_000),
        ),
        (
            "cpu_access_run (batch)",
            _ops_per_sec(_bench_cpu_access_run(batch_hier, blocks), 200_000),
        ),
    ]

    obj = _bench_point("object")
    bat = _bench_point("batch")
    speedup = obj.sim_seconds / bat.sim_seconds
    # equal results are the contract that lets us compare wall time only
    assert bat.throughput_mrps == obj.throughput_mrps
    assert bat.trace.cache_totals == obj.trace.cache_totals

    payload = {
        "benchmark": "hotpath_micro/engine",
        "point": "kvs_system(0.1, 1024, 2, 1024) @ scale 0.1",
        "backend": batch_hier.backend,
        "object_seconds": round(obj.sim_seconds, 4),
        "batch_seconds": round(bat.sim_seconds, 4),
        "speedup": round(speedup, 2),
        "ops_per_sec": {name: round(value) for name, value in rows},
    }
    (results_dir / "BENCH_pr6.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = ["batch engine vs object engine (reference point)"]
    lines += [f"  {name:28s} {value:>14,.0f}" for name, value in rows]
    lines.append(f"  {'object (s)':28s} {obj.sim_seconds:>14.3f}")
    lines.append(f"  {'batch (s)':28s} {bat.sim_seconds:>14.3f}")
    lines.append(f"  {'speedup':28s} {speedup:>14.2f}x")
    lines.append(f"  {'backend':28s} {batch_hier.backend:>14s}")
    emit(results_dir, "hotpath_engine", "\n".join(lines))

    if batch_hier.backend == "native":
        # ISSUE target is >=5x; the guard is looser so slow shared CI
        # machines don't flap, while a real regression still fails.
        assert speedup > 2.0


def test_policy_zoo_bench(results_dir):
    """Per-policy timings of the zoo's headline point -> BENCH_pr8.json.

    One reference point (the deep-backlog end of the policy-zoo
    scenario: D=16 on the MICA-style workload) simulated under every
    injection policy, cache bypassed so every wall time is a real
    simulation. The committed JSON is the scenario subsystem's perf
    receipt: the zoo policies must not make the hot path meaningfully
    slower than plain DDIO, and their traffic must differ from it.
    """
    from repro.scenario.points import POLICY_SPECS, build_point

    settings = ExperimentSettings(scale=0.1, measure_multiplier=1.0)

    def bench(policy):
        spec = build_point(
            {
                "label": f"zoo bench {policy}",
                "buffers": 1024,
                "ways": 2,
                "packet_bytes": 1024,
                "policy": policy,
                "queued_depth": 16,
            },
            default_scale=settings.scale,
        )
        prev = os.environ.get("REPRO_NO_CACHE")
        os.environ["REPRO_NO_CACHE"] = "1"
        try:
            return run_spec(spec)
        finally:
            if prev is None:
                os.environ.pop("REPRO_NO_CACHE", None)
            else:
                os.environ["REPRO_NO_CACHE"] = prev

    points = {policy: bench(policy) for policy in POLICY_SPECS}
    ddio = points["ddio"]
    payload = {
        "benchmark": "hotpath_micro/policy_zoo",
        "point": "kvs 1024B, 1024 buffers, 2 ways, D=16 @ scale 0.1",
        "policies": {
            policy: {
                "sim_seconds": round(p.sim_seconds, 4),
                "mem_accesses_per_request": round(
                    p.trace.mem_accesses_per_request(), 4
                ),
                "vs_ddio_seconds": round(
                    p.sim_seconds / ddio.sim_seconds, 2
                ),
            }
            for policy, p in points.items()
        },
    }
    (results_dir / "BENCH_pr8.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = ["policy zoo: headline point per policy (D=16, no cache)"]
    for policy, p in points.items():
        lines.append(
            f"  {policy:28s} {p.sim_seconds:>10.3f}s "
            f"{p.trace.mem_accesses_per_request():>8.2f} mem/req"
        )
    emit(results_dir, "hotpath_policy_zoo", "\n".join(lines))

    # The zoo members must actually change behaviour vs plain DDIO...
    for policy in ("occamy", "rdca"):
        assert (
            points[policy].trace.mem_accesses_per_request()
            != ddio.trace.mem_accesses_per_request()
        ), policy
        # ...without catastrophically slowing the hot path (their
        # bookkeeping is O(1) per buffer by design).
        assert points[policy].sim_seconds < 5.0 * max(
            ddio.sim_seconds, 0.1
        ), policy


def test_observer_overhead(results_dir):
    """Observer-off vs observer-on wall time -> BENCH_pr7.json.

    Both runs pin the object engine so the numbers isolate the
    prime+probe tenant's cost (per-request tick + periodic probes), not
    an engine switch: observer-on runs force the object engine anyway,
    so the honest baseline is the object engine too.
    """
    from repro.experiments.figS1 import OBSERVER, burst_profile

    settings = ExperimentSettings(scale=0.1, measure_multiplier=1.0)

    def bench(observer, burst):
        spec = point_spec(
            "observer bench",
            kvs_system(0.1, 1024, 2, 1024),
            kvs_workload(0.1, 1024),
            "ddio",
            settings=settings,
            observer=observer,
            burst=burst,
        )
        prev = os.environ.get("REPRO_ENGINE")
        os.environ["REPRO_ENGINE"] = "object"
        try:
            return run_spec(spec)
        finally:
            if prev is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = prev

    off = bench(None, None)
    on = bench(OBSERVER, burst_profile(1))
    overhead = on.sim_seconds / off.sim_seconds
    assert off.trace.leak is None
    assert on.trace.leak is not None and on.trace.leak["probes"] > 0

    payload = {
        "benchmark": "hotpath_micro/observer",
        "point": "kvs_system(0.1, 1024, 2, 1024) @ scale 0.1, object engine",
        "observer": repr(OBSERVER),
        "burst": repr(burst_profile(1)),
        "observer_off_seconds": round(off.sim_seconds, 4),
        "observer_on_seconds": round(on.sim_seconds, 4),
        "overhead": round(overhead, 2),
        "probes": on.trace.leak["probes"],
        "mi_bits": round(on.trace.leak["mi_bits"], 4),
    }
    (results_dir / "BENCH_pr7.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = ["prime+probe observer overhead (reference point, object engine)"]
    lines.append(f"  {'observer off (s)':28s} {off.sim_seconds:>14.3f}")
    lines.append(f"  {'observer on (s)':28s} {on.sim_seconds:>14.3f}")
    lines.append(f"  {'overhead':28s} {overhead:>14.2f}x")
    lines.append(f"  {'probes':28s} {on.trace.leak['probes']:>14d}")
    emit(results_dir, "hotpath_observer", "\n".join(lines))

    # Catastrophic-regression guard: the tick is a cheap integer check
    # per request plus a probe sweep every OBSERVER.period requests.
    assert overhead < 3.0


def test_snapshot_sweep_bench(results_dir, tmp_path, monkeypatch):
    """Warm-state snapshots on a way-mask sweep -> BENCH_pr9.json.

    A fig5-style sweep of 8 points that differ only in the measured
    window's DDIO way mask (``measure_ddio_ways``) shares one warmup
    fingerprint, so with snapshots on the warmup is simulated once and
    the other 7 points fork off the restored state. The committed JSON
    is the snapshot subsystem's perf receipt: sweep wall time with
    snapshots off vs on, the restored count from the run manifest, and
    the bit-identity of every row against the snapshots-off baseline.
    """
    from repro.engine.parallel import last_run_dir, run_points
    from repro.experiments.common import point_row
    from repro.obs.manifest import RunManifest

    settings = ExperimentSettings(scale=0.1, measure_multiplier=0.5)
    masks = list(range(1, 9))

    def sweep_specs():
        # Fresh specs per run: simulators mutate workload state in place.
        return [
            point_spec(
                f"mask-{ways}",
                kvs_system(0.1, 1024, 2, 1024),
                kvs_workload(0.1, 1024),
                "ddio",
                settings=settings,
                measure_ddio_ways=ways,
            )
            for ways in masks
        ]

    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)

    def sweep(snapshots: bool, workers: int = 1, tag: str = ""):
        monkeypatch.setenv(
            "REPRO_CACHE_DIR",
            str(tmp_path / f"cache-{'on' if snapshots else 'off'}{tag}"),
        )
        monkeypatch.setenv("REPRO_SNAPSHOTS", "1" if snapshots else "0")
        start = time.perf_counter()
        points = run_points(
            sweep_specs(), max_workers=workers, run_label="snapshot-bench"
        )
        wall = time.perf_counter() - start
        manifest = RunManifest.load(last_run_dir() / "manifest.json")
        restored = sum(p.warm_restored for p in manifest.points)
        return points, wall, restored, manifest.engine

    off_points, off_seconds, off_restored, engine = sweep(snapshots=False)
    on_points, on_seconds, on_restored, _ = sweep(snapshots=True)
    par_points, _, par_restored, _ = sweep(
        snapshots=True, workers=2, tag="-w2"
    )

    # The whole contract: restoring a warm snapshot must not change a
    # single bit of any row relative to re-simulating the warmup.
    def strip(result):
        row = point_row(result, settings.scale)
        row.pop("sim_seconds")
        row.pop("from_cache")
        return row

    assert off_restored == 0
    assert on_restored == len(masks) - 1, on_restored
    # Across workers the leader is gated to finish first, so the
    # followers all restore too — and must stay bit-identical.
    assert par_restored == len(masks) - 1, par_restored
    for off, on, par in zip(off_points, on_points, par_points):
        assert strip(off) == strip(on), off.label
        assert strip(off) == strip(par), off.label

    speedup = off_seconds / on_seconds
    payload = {
        "benchmark": "hotpath_micro/snapshot_sweep",
        "point": "kvs 1024B, 1024 buffers, 2 ways @ scale 0.1, "
        "measure_ddio_ways 1..8",
        "engine": engine,
        "sweep_points": len(masks),
        "snapshots_off_seconds": round(off_seconds, 4),
        "snapshots_on_seconds": round(on_seconds, 4),
        "speedup": round(speedup, 2),
        "warm_restored_serial": on_restored,
        "warm_restored_workers2": par_restored,
        "rows_bit_identical": True,
    }
    (results_dir / "BENCH_pr9.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    lines = ["warm-state snapshots: 8-point way-mask sweep"]
    lines.append(f"  {'snapshots off (s)':28s} {off_seconds:>14.3f}")
    lines.append(f"  {'snapshots on (s)':28s} {on_seconds:>14.3f}")
    lines.append(f"  {'speedup':28s} {speedup:>14.2f}x")
    lines.append(f"  {'restored':28s} {on_restored:>14d}")
    emit(results_dir, "hotpath_snapshot", "\n".join(lines))

    # Catastrophic-regression guard only: warmup is ~60% of each point
    # at this scale, so the amortized sweep should be well under the
    # baseline even on noisy shared CI machines.
    assert on_seconds < off_seconds
