"""Microbenchmark of the simulator's hot paths (insert / cpu_access).

Measures raw operation throughput of the set-associative cache and the
hierarchy cascade, plus one end-to-end trace point, and archives the
numbers to ``results/hotpath_micro.txt`` so speedups/regressions are
visible across commits. The thresholds only guard against catastrophic
regressions — absolute ops/sec are machine-dependent.
"""

from __future__ import annotations

import time

from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.experiments.common import (
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_spec,
)
from repro.engine.parallel import run_spec
from repro.mem.layout import RegionKind
from repro.params import CacheParams, SystemConfig

from benchmarks.conftest import emit


def _ops_per_sec(fn, n: int) -> float:
    start = time.perf_counter()
    fn(n)
    return n / (time.perf_counter() - start)


def _bench_insert(cache: SetAssociativeCache, blocks: int):
    def body(n: int) -> None:
        insert = cache.insert
        kind = int(RegionKind.APP)
        for i in range(n):
            insert(i % blocks, True, kind)

    return body


def _bench_access(cache: SetAssociativeCache, blocks: int):
    def body(n: int) -> None:
        access = cache.access
        for i in range(n):
            access(i % blocks)

    return body


def _bench_cpu_access(hier: CacheHierarchy, blocks: int):
    def body(n: int) -> None:
        cpu_access = hier.cpu_access
        kind = RegionKind.APP
        for i in range(n):
            cpu_access(0, i % blocks, kind, False)

    return body


def _bench_cpu_access_run(hier: CacheHierarchy, blocks: int, run: int = 16):
    def body(n: int) -> None:
        counts = {lv: 0 for lv in AccessLevel}
        cpu_access_run = hier.cpu_access_run
        kind = RegionKind.APP
        for i in range(n // run):
            cpu_access_run(0, (i * run) % blocks, run, kind, False, counts)

    return body


def test_hotpath_micro(results_dir):
    params = CacheParams(size_bytes=12 * 64 * 1024, ways=12, latency_cycles=10)
    lru = SetAssociativeCache(params)
    rnd = SetAssociativeCache(
        CacheParams(
            size_bytes=12 * 64 * 1024, ways=12, latency_cycles=10, replacement="random"
        )
    )
    hier = CacheHierarchy(SystemConfig().scaled(0.1))
    # Working set ~4x the cache so steady state mixes hits and evictions.
    blocks = 4 * params.num_blocks

    n = 200_000
    rows = [
        ("insert (LRU)", _ops_per_sec(_bench_insert(lru, blocks), n)),
        ("insert (random)", _ops_per_sec(_bench_insert(rnd, blocks), n)),
        ("access (LRU)", _ops_per_sec(_bench_access(lru, blocks), n)),
        ("cpu_access (3-level)", _ops_per_sec(_bench_cpu_access(hier, blocks), n)),
        (
            "cpu_access_run (3-level)",
            _ops_per_sec(_bench_cpu_access_run(hier, blocks), n),
        ),
    ]

    # One end-to-end point at the profiling reference configuration
    # (REPRO_SCALE=0.1): the ISSUE's >=2x speedup target is over this.
    settings = ExperimentSettings(scale=0.1, measure_multiplier=1.0)
    spec = point_spec(
        "end-to-end point",
        kvs_system(0.1, 1024, 2, 1024),
        kvs_workload(0.1, 1024),
        "ddio",
        settings=settings,
    )
    point = run_spec(spec)
    rows.append(("end-to-end point (s)", point.sim_seconds))

    lines = ["hot-path microbenchmark (ops/sec unless noted)"]
    lines += [f"  {name:28s} {value:>14,.0f}" for name, value in rows[:-1]]
    lines.append(f"  {rows[-1][0]:28s} {rows[-1][1]:>14.3f}")
    emit(results_dir, "hotpath_micro", "\n".join(lines))

    # Catastrophic-regression guards only (generous: CI machines vary).
    assert dict(rows)["insert (LRU)"] > 100_000
    assert dict(rows)["cpu_access (3-level)"] > 50_000
    assert point.sim_seconds < 60.0
