"""Unit tests for the address-space layout."""

import pytest

from repro.errors import AddressError, ConfigError
from repro.mem.layout import AddressSpace, Region, RegionKind
from repro.params import CACHE_BLOCK_BYTES


class TestRegion:
    def test_block_accessors(self):
        r = Region("r", RegionKind.APP, start=128, size=256)
        assert r.start_block == 2
        assert r.num_blocks == 4
        assert r.end_block == 6
        assert r.end == 384

    def test_contains(self):
        r = Region("r", RegionKind.APP, start=64, size=128)
        assert r.contains(64)
        assert r.contains(191)
        assert not r.contains(192)
        assert not r.contains(63)

    def test_block_at_offset(self):
        r = Region("r", RegionKind.RX_BUFFER, start=1024, size=512)
        assert r.block_at(0) == 16
        assert r.block_at(64) == 17
        assert r.block_at(511) == 23

    def test_block_at_rejects_out_of_range(self):
        r = Region("r", RegionKind.APP, start=0, size=64)
        with pytest.raises(AddressError):
            r.block_at(64)

    def test_rejects_unaligned(self):
        with pytest.raises(ConfigError):
            Region("r", RegionKind.APP, start=10, size=64)
        with pytest.raises(ConfigError):
            Region("r", RegionKind.APP, start=64, size=10)


class TestAddressSpace:
    def test_sequential_non_overlapping_allocation(self):
        space = AddressSpace()
        a = space.allocate("a", 256, RegionKind.APP)
        b = space.allocate("b", 128, RegionKind.RX_BUFFER)
        assert a.end <= b.start
        assert space.total_bytes == b.end

    def test_size_rounds_up_to_block(self):
        space = AddressSpace()
        r = space.allocate("r", 100, RegionKind.APP)
        assert r.size == 128

    def test_find_by_address_and_block(self):
        space = AddressSpace()
        a = space.allocate("a", 256, RegionKind.APP)
        b = space.allocate("b", 256, RegionKind.TX_BUFFER)
        assert space.find(a.start) is a
        assert space.find(b.start + 100) is b
        assert space.find_block(b.start_block) is b
        assert space.kind_of_block(a.start_block) is RegionKind.APP

    def test_find_outside_raises(self):
        space = AddressSpace()
        space.allocate("a", 64, RegionKind.APP)
        with pytest.raises(AddressError):
            space.find(1 << 30)

    def test_region_by_name(self):
        space = AddressSpace()
        r = space.allocate("rx", 64, RegionKind.RX_BUFFER, owner_core=3)
        assert space.region("rx") is r
        assert r.owner_core == 3
        with pytest.raises(AddressError):
            space.region("missing")

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.allocate("a", 64, RegionKind.APP)
        with pytest.raises(ConfigError):
            space.allocate("a", 64, RegionKind.APP)

    def test_custom_alignment(self):
        space = AddressSpace()
        space.allocate("a", 64, RegionKind.APP)
        r = space.allocate("b", 64, RegionKind.APP, align=4096)
        assert r.start % 4096 == 0

    def test_bad_alignment_rejected(self):
        space = AddressSpace()
        with pytest.raises(ConfigError):
            space.allocate("a", 64, RegionKind.APP, align=100)

    def test_unaligned_base_rejected(self):
        with pytest.raises(ConfigError):
            AddressSpace(base=100)

    def test_many_regions_bisect_lookup(self):
        space = AddressSpace()
        regions = [
            space.allocate(f"r{i}", CACHE_BLOCK_BYTES, RegionKind.APP)
            for i in range(100)
        ]
        for r in regions:
            assert space.find(r.start) is r
            assert space.find(r.end - 1) is r
