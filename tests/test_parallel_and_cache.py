"""Tests for the parallel grid runner and the persistent point cache."""

from __future__ import annotations

import pytest

from repro.engine import pointcache
from repro.engine.parallel import (
    PointSpec,
    default_workers,
    run_cached_spec,
    run_points,
    run_tasks,
)
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_spec,
)

SCALE = 0.05
SETTINGS = ExperimentSettings(scale=SCALE, measure_multiplier=0.1)


def tiny_spec(label="p", ways=2, sweeper=False, seed=42, **overrides) -> PointSpec:
    spec = point_spec(
        label,
        kvs_system(SCALE, 64, ways, 512),
        kvs_workload(0.02, 512),
        "ddio",
        sweeper=sweeper,
        settings=SETTINGS,
        seed=seed,
    )
    if overrides:
        import dataclasses

        spec = dataclasses.replace(spec, **overrides)
    return spec


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pointcache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path / "pointcache"


def assert_identical(a, b):
    assert a.label == b.label
    assert a.trace.traffic.counts == b.trace.traffic.counts
    assert a.trace.level_counts == b.trace.level_counts
    assert a.trace.requests == b.trace.requests
    assert a.perf.throughput_mrps == b.perf.throughput_mrps
    assert a.perf.mem_bandwidth_gbps == b.perf.mem_bandwidth_gbps


class TestParallelRunner:
    def test_serial_and_parallel_identical(self, monkeypatch, cache_dir):
        # Bypass the cache so both paths genuinely simulate.
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        specs = [
            tiny_spec(label=f"{w}/{s}", ways=w, sweeper=s)
            for w, s in ((2, False), (2, True))
        ]
        serial = run_points(specs, max_workers=1)
        parallel = run_points(specs, max_workers=2)
        assert [p.label for p in parallel] == [s.label for s in specs]
        for a, b in zip(serial, parallel):
            assert_identical(a, b)

    def test_same_seed_same_result_serial(self, monkeypatch, cache_dir):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        a = run_cached_spec(tiny_spec(seed=7))
        b = run_cached_spec(tiny_spec(seed=7))
        assert_identical(a, b)

    def test_empty_spec_list(self):
        assert run_points([]) == []

    def test_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ConfigError):
            default_workers()
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        with pytest.raises(ConfigError):
            default_workers()

    def test_run_tasks_preserves_order(self):
        results = run_tasks(divmod, [(7, 3), (9, 4)], max_workers=1)
        assert results == [(2, 1), (2, 1)]

    def test_run_tasks_preserves_order_across_workers(self):
        # Regression: completion-order results must land back at their
        # submission index (the old list.index lookup was also O(n²)).
        import operator

        tasks = [(i, 0) for i in range(10)]
        results = run_tasks(operator.sub, tasks, max_workers=2)
        assert results == list(range(10))


class TestPointCache:
    def test_hit_equals_fresh_simulation(self, cache_dir):
        fresh = run_cached_spec(tiny_spec())
        assert not fresh.from_cache
        hit = run_cached_spec(tiny_spec())
        assert hit.from_cache
        assert_identical(fresh, hit)
        assert hit.sim_seconds == fresh.sim_seconds

    def test_hit_restamps_label(self, cache_dir):
        run_cached_spec(tiny_spec(label="first"))
        hit = run_cached_spec(tiny_spec(label="second"))
        assert hit.from_cache
        assert hit.label == "second"

    def test_no_cache_env_bypasses(self, monkeypatch, cache_dir):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        first = run_cached_spec(tiny_spec())
        second = run_cached_spec(tiny_spec())
        assert not first.from_cache
        assert not second.from_cache
        assert not cache_dir.exists()

    def test_fingerprint_covers_every_field(self):
        base = tiny_spec()
        variants = [
            tiny_spec(ways=4),
            tiny_spec(sweeper=True),
            tiny_spec(seed=43),
            tiny_spec(nic_tx_sweep=True),
            tiny_spec(queued_depth=2),
            tiny_spec(warmup_requests=10),
            tiny_spec(measure_requests=999),
            point_spec(
                "p",
                kvs_system(SCALE, 128, 2, 512),  # different rx buffers
                kvs_workload(0.02, 512),
                "ddio",
                settings=SETTINGS,
            ),
            point_spec(
                "p",
                kvs_system(SCALE, 64, 2, 512),
                kvs_workload(0.02, 256),  # different workload params
                "ddio",
                settings=SETTINGS,
            ),
            point_spec(
                "p",
                kvs_system(SCALE, 64, 2, 512),
                kvs_workload(0.02, 512),
                "dma",  # different policy
                settings=SETTINGS,
            ),
        ]
        base_fp = pointcache.fingerprint(base)
        fps = [pointcache.fingerprint(v) for v in variants]
        assert all(fp != base_fp for fp in fps)
        assert len(set(fps)) == len(fps)

    def test_label_not_in_fingerprint(self):
        assert pointcache.fingerprint(tiny_spec(label="a")) == (
            pointcache.fingerprint(tiny_spec(label="b"))
        )

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        run_cached_spec(tiny_spec())
        entries = list(cache_dir.rglob("*.pkl"))
        assert len(entries) == 1
        entries[0].write_bytes(b"not a pickle")
        again = run_cached_spec(tiny_spec())
        assert not again.from_cache


class TestPointCacheGC:
    @staticmethod
    def _put(fp: str, size: int, mtime: float):
        import os

        pointcache.store(fp, b"x" * size)
        path = pointcache._entry_path(fp)
        os.utime(path, (mtime, mtime))
        return path

    def test_cache_max_bytes_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert pointcache.cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "2")
        assert pointcache.cache_max_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "abc")
        with pytest.raises(ConfigError):
            pointcache.cache_max_bytes()
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
        with pytest.raises(ConfigError):
            pointcache.cache_max_bytes()

    def test_store_prunes_oldest_first(self, cache_dir, monkeypatch):
        a = self._put("a" * 8, 2000, 100)
        b = self._put("b" * 8, 2000, 200)
        # Bound fits two entries but not three (5000 B; each ~2 KB).
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", str(5000 / (1024 * 1024)))
        c = self._put("c" * 8, 2000, 300)
        assert not a.exists()  # oldest mtime evicted
        assert b.exists() and c.exists()

    def test_load_refreshes_mtime_lru(self, cache_dir, monkeypatch):
        a = self._put("a" * 8, 2000, 100)
        b = self._put("b" * 8, 2000, 200)
        assert pointcache.load("a" * 8) is not None  # touch: now newest
        assert a.stat().st_mtime > 200
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", str(5000 / (1024 * 1024)))
        c = self._put("c" * 8, 2000, 300)
        assert not b.exists()  # b became the LRU entry, not a
        assert a.exists() and c.exists()

    def test_stats_and_gc_remove_orphans(self, cache_dir):
        self._put("a" * 8, 100, 100)
        orphan = pointcache.cache_dir() / ("0" * pointcache.GENERATION_CHARS)
        orphan.mkdir(parents=True)
        (orphan / "old.pkl").write_bytes(b"x")
        (pointcache.cache_dir() / "stray.pkl").write_bytes(b"x")
        (pointcache.cache_dir() / "writer.tmp").write_bytes(b"x")

        stats = pointcache.stats()
        current = pointcache.code_salt()[: pointcache.GENERATION_CHARS]
        assert stats["total_entries"] == 3  # a + old.pkl + stray.pkl
        assert stats["generations"][current]["current"] is True
        assert stats["generations"][orphan.name]["current"] is False

        report = pointcache.gc()
        assert report["removed_generations"] == [orphan.name]
        assert report["removed_stray_files"] == 2  # stray.pkl + writer.tmp
        assert report["pruned_entries"] == 0
        assert not orphan.exists()
        assert pointcache.load("a" * 8) is not None  # current entry survives

    def test_cli_stats_and_gc(self, cache_dir, capsys):
        import json

        self._put("a" * 8, 100, 100)
        assert pointcache._main(["--stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["total_entries"] == 1
        assert stats["cache_dir"] == str(cache_dir)
        # A ~1-byte bound prunes everything.
        assert pointcache._main(["--gc", "--max-mb", "0.000001"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["pruned_entries"] == 1
        assert list(cache_dir.rglob("*.pkl")) == []
