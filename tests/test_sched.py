"""Tests for the ``repro.sched`` fair-scheduling subsystem.

Five layers:

* policy units — fifo / priority / wfq pop order, WFQ service shares
  within 10% of configured weights, and ``peek_key`` ordering heads of
  sharded queues exactly like one unsharded queue;
* tenant units — ``REPRO_TENANTS`` parsing, quota defaulting, the
  token bucket against a fake clock;
* metrics guard — ``guarded_labels`` folding client-controlled tenant
  names into ``_overflow`` (then the null instrument) at the registry's
  cardinality cap instead of crashing;
* scheduler admission — per-tenant quota / rate 429s carrying the
  tenant, its limit, and current usage;
* sharded coordinator + speculation — cross-shard grants in global
  policy order, duplicate leases for stragglers, first-upload-wins
  with bit-identical rows, and the win/wasted counters;
* engine seam — ``run_points(policy=..., tenant=...)`` stays
  bit-identical to the serial path and records the tenant in the run
  manifest and ``timeline --list``.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import protocol
from repro.cluster.coordinator import ClusterCoordinator
from repro.engine import pointcache
from repro.engine.parallel import run_points
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_row,
    point_spec,
)
from repro.obs.manifest import RunManifest, runs_dir
from repro.obs.metrics import NULL_INSTRUMENT, MetricsRegistry
from repro.report.timeline import list_runs
from repro.sched import (
    DEFAULT_POLICY,
    POLICIES,
    DurationTracker,
    SpeculationConfig,
    TenantTable,
    TokenBucket,
    guarded_labels,
    make_policy,
    sched_policy,
    validate_tenant,
)
from repro.sched.speculate import percentile
from repro.sched.tenants import OVERFLOW_TENANT
from repro.serve.jobs import JobRequest, parse_job_request
from repro.serve.scheduler import JobScheduler, QuotaExceeded, RateLimited

SCALE = 0.05
SETTINGS = ExperimentSettings(scale=SCALE, measure_multiplier=0.1)


def one_spec(seed: int, label: str = ""):
    return point_spec(
        label or f"s{seed}",
        kvs_system(SCALE, 64, 2, 512),
        kvs_workload(0.02, 512),
        "ddio",
        settings=SETTINGS,
        seed=seed,
    )


class FakeResult:
    """The minimal result surface the cluster path touches (picklable)."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.sim_seconds = 0.0
        self.from_cache = False
        self.timeline_file = None
        self.worker_id = None


def register(coord: ClusterCoordinator, capacity: int = 8) -> str:
    reply = coord.register(
        protocol.register_request(
            code_salt=pointcache.code_salt(),
            capacity=capacity,
            host="testhost",
            pid=1234,
        )
    )
    return reply["worker_id"]


def upload(coord, wid, lease_id, points):
    return coord.complete(
        protocol.complete_request(
            wid,
            lease_id,
            [
                {
                    "fingerprint": p["fingerprint"],
                    "payload": protocol.encode_payload(FakeResult(p["label"])),
                }
                for p in points
            ],
        )
    )


# -- policy units ---------------------------------------------------------


class TestPolicies:
    def test_fifo_ignores_priority_and_tenant(self):
        q = make_policy("fifo")
        q.push("a", tenant="t1", priority=0)
        q.push("b", tenant="t2", priority=9)
        q.push("c", tenant="t1", priority=-5)
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]
        assert q.pop() is None

    def test_priority_heap_is_default_and_orders_by_priority(self):
        assert DEFAULT_POLICY == "priority"
        q = make_policy("priority")
        q.push("low", priority=0)
        q.push("high", priority=5)
        q.push("low2", priority=0)
        assert [q.pop(), q.pop(), q.pop()] == ["high", "low", "low2"]

    def test_wfq_shares_match_weights_within_ten_percent(self):
        tenants = TenantTable.from_env()
        tenants.configs["alice"] = tenants.get("alice").__class__(
            "alice", weight=3.0
        )
        q = make_policy("wfq", tenants)
        # Both tenants fully backlogged: 120 unit-cost items each.
        for i in range(120):
            q.push(("alice", i), tenant="alice")
            q.push(("bob", i), tenant="bob")
        served = {"alice": 0, "bob": 0}
        for _ in range(80):  # while both stay backlogged
            tenant, _i = q.pop()
            served[tenant] += 1
        share = served["alice"] / 80
        assert abs(share - 0.75) <= 0.10 * 0.75, served

    def test_wfq_idle_tenant_cannot_bank_credit(self):
        q = make_policy("wfq")
        # bob works alone for a while; alice was idle, not saving up.
        for i in range(10):
            q.push(("bob", i), tenant="bob")
        for _ in range(10):
            q.pop()
        for i in range(6):
            q.push(("alice", i), tenant="alice")
            q.push(("bob", 100 + i), tenant="bob")
        first_six = [q.pop()[0] for _ in range(6)]
        # Equal weights from here on: alice must not get a catch-up
        # burst; service alternates.
        assert first_six.count("alice") == 3

    @pytest.mark.parametrize("name", POLICIES)
    def test_peek_key_matches_pop_order_across_shards(self, name):
        """Always popping the shard with the smallest peek_key yields
        exactly the order one unsharded queue would give."""
        tenants = TenantTable.from_env()
        reference = make_policy(name, tenants)
        shards = [make_policy(name, tenants) for _ in range(3)]
        for i in range(30):
            item = (f"t{i % 3}", i)
            reference.push(item, tenant=item[0], priority=i % 4)
            shards[i % 3].push(item, tenant=item[0], priority=i % 4)
        merged = []
        while True:
            best = None
            best_key = None
            for shard in shards:
                key = shard.peek_key()
                if key is not None and (best_key is None or key < best_key):
                    best_key, best = key, shard
            if best is None:
                break
            merged.append(best.pop())
        expected = []
        while len(reference):
            expected.append(reference.pop())
        assert merged == expected

    def test_policy_selection_and_validation(self, monkeypatch):
        assert sched_policy() == DEFAULT_POLICY
        monkeypatch.setenv("REPRO_SCHED_POLICY", "wfq")
        assert sched_policy() == "wfq"
        assert make_policy().name == "wfq"
        monkeypatch.setenv("REPRO_SCHED_POLICY", "sjf")
        with pytest.raises(ConfigError):
            sched_policy()
        with pytest.raises(ConfigError):
            make_policy("lifo")

    def test_tenants_queued_introspection(self):
        q = make_policy("priority")
        q.push("a", tenant="alice")
        q.push("b", tenant="alice")
        q.push("c", tenant="bob")
        assert q.tenants_queued() == {"alice": 2, "bob": 1}


# -- tenant units ---------------------------------------------------------


class TestTenants:
    def test_from_env_parses_knobs(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TENANTS",
            "alice:weight=3,quota=16,rate=10;bob:weight=1;carol:burst=2,rate=0.5",
        )
        table = TenantTable.from_env(default_quota=64)
        alice = table.get("alice")
        assert (alice.weight, alice.quota, alice.rate) == (3.0, 16, 10.0)
        assert table.weight("bob") == 1.0
        assert table.get("bob").quota == 64  # default_quota fills in
        carol = table.get("carol")
        assert (carol.rate, carol.burst) == (0.5, 2)
        # Unlisted tenants default rather than being rejected.
        assert table.get("mallory").weight == 1.0
        assert table.get("mallory").quota == 64
        assert table.names() == ["alice", "bob", "carol"]

    @pytest.mark.parametrize(
        "raw",
        [
            "alice:weight=0",
            "alice:quota=0",
            "alice:rate=-1",
            "alice:burst=0",
            "alice:speed=9",
            "alice:weight",
            "alice;alice",
            "bad name:weight=1",
        ],
    )
    def test_from_env_rejects_malformed(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TENANTS", raw)
        with pytest.raises(ConfigError):
            TenantTable.from_env()

    def test_validate_tenant(self):
        assert validate_tenant("team-a.prod_1") == "team-a.prod_1"
        for bad in ("", "-lead", "a" * 65, "sp ace", None, 7):
            with pytest.raises(ConfigError):
                validate_tenant(bad)

    def test_token_bucket_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
        assert bucket.allow() and bucket.allow()
        assert not bucket.allow()  # burst drained, no time passed
        now[0] = 0.5  # one token refilled at 2/s
        assert bucket.allow()
        assert not bucket.allow()
        now[0] = 10.0  # refill caps at burst, not rate * elapsed
        assert bucket.allow() and bucket.allow()
        assert not bucket.allow()

    def test_token_bucket_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate=0.0)


# -- cardinality guard ----------------------------------------------------


class TestGuardedLabels:
    def test_degrades_to_overflow_then_null(self):
        registry = MetricsRegistry(max_label_sets=2)
        family = registry.counter(
            "serve_tenant_test_total", "per-tenant test", labels=("tenant",)
        )
        guarded_labels(family, tenant="alice").inc()
        # Second slot goes to the overflow bucket; later tenants fold in.
        guarded_labels(family, tenant="bob").inc()
        guarded_labels(family, tenant="carol").inc()
        text = registry.render_text()
        assert 'tenant="alice"' in text
        assert f'tenant="{OVERFLOW_TENANT}"' in text
        assert 'tenant="bob"' not in text and 'tenant="carol"' not in text
        # Totals survive the fold: alice=1, _overflow=2.
        samples = family.samples()
        assert sum(samples.values()) == 3

    def test_null_instrument_when_cap_exhausted_by_others(self):
        registry = MetricsRegistry(max_label_sets=1)
        family = registry.gauge(
            "serve_tenant_test_gauge", "per-tenant test", labels=("tenant",)
        )
        family.labels(tenant="alice").set(1)
        # Cap is full of a non-overflow value: even _overflow cannot be
        # created, and the caller gets the shared no-op instrument.
        got = guarded_labels(family, tenant="bob")
        assert got is NULL_INSTRUMENT
        got.set(5)  # must not raise
        assert registry.render_text()  # rendering still works


# -- scheduler admission --------------------------------------------------


class TestAdmission:
    def _scheduler(self, **kwargs):
        # Never started: jobs stay queued, which is exactly what the
        # admission tests need.
        return JobScheduler(workers=1, registry=MetricsRegistry(), **kwargs)

    def request(self, name, tenant, n=1):
        return JobRequest(
            name=name,
            specs=[one_spec(i, f"{name}-{i}") for i in range(n)],
            scale=SCALE,
            tenant=tenant,
        )

    def test_quota_rejection_names_tenant_and_usage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TENANTS", "alice:quota=2")
        sched = self._scheduler(tenants=TenantTable.from_env())
        sched.submit(self.request("j1", "alice"))
        sched.submit(self.request("j2", "alice"))
        with pytest.raises(QuotaExceeded) as err:
            sched.submit(self.request("j3", "alice"))
        assert (err.value.tenant, err.value.quota, err.value.usage) == (
            "alice", 2, 2,
        )
        assert "alice" in str(err.value) and "2/2" in str(err.value)
        # Another tenant is not collateral damage of alice's backlog.
        job = sched.submit(self.request("j4", "bob"))
        assert job.state == "queued"
        stats = sched.tenant_stats()
        assert stats["alice"]["queued"] == 2
        assert stats["bob"]["queued"] == 1
        text = sched.registry.render_text()
        assert (
            'serve_tenant_jobs_rejected_total{reason="quota",tenant="alice"} 1'
            in text
        )

    def test_per_tenant_quota_defaults_to_queue_limit(self):
        sched = self._scheduler(queue_limit=1)
        sched.submit(self.request("j1", "alice"))
        with pytest.raises(QuotaExceeded):
            sched.submit(self.request("j2", "alice"))
        # The bound is per tenant now, not the old global 429.
        assert sched.submit(self.request("j3", "bob")).state == "queued"

    def test_rate_limit_rejection(self, monkeypatch):
        monkeypatch.setenv("REPRO_TENANTS", "alice:rate=0.001,burst=1")
        sched = self._scheduler(tenants=TenantTable.from_env())
        sched.submit(self.request("j1", "alice"))
        with pytest.raises(RateLimited) as err:
            sched.submit(self.request("j2", "alice"))
        assert err.value.tenant == "alice"
        assert err.value.rate == 0.001
        assert "rate limited" in str(err.value)

    def test_parse_job_request_tenant(self):
        payload = {
            "name": "n",
            "scale": SCALE,
            "points": [{"label": "p", "policy": "ddio"}],
            "tenant": "alice",
        }
        assert parse_job_request(payload).tenant == "alice"
        del payload["tenant"]
        assert parse_job_request(payload).tenant == "default"
        payload["tenant"] = "no spaces"
        from repro.serve.jobs import BadRequest

        with pytest.raises(BadRequest):
            parse_job_request(payload)


# -- sharded coordinator + speculation ------------------------------------


def spec_coord(**kwargs):
    defaults = dict(
        registry=MetricsRegistry(),
        lease_ttl=30.0,
        batch=4,
        shards=4,
        speculation=SpeculationConfig(
            enabled=True, pctl=50.0, factor=1.0, min_delay_s=0.0, min_samples=1
        ),
    )
    defaults.update(kwargs)
    return ClusterCoordinator(**defaults)


class TestShardedCoordinator:
    def test_grants_follow_global_policy_order_across_shards(self):
        coord = spec_coord(policy="fifo", batch=8)
        specs = [one_spec(i, f"g{i}") for i in range(8)]
        futures = [coord.submit(s, None) for s in specs]
        # Points landed in more than one shard (else the test is vacuous).
        spread = {coord._shard_of(pointcache.fingerprint(s)).index for s in specs}
        assert len(spread) > 1
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 8))
        labels = [p["label"] for p in grant["points"]]
        assert labels == [f"g{i}" for i in range(8)]  # submission order
        upload(coord, wid, grant["lease_id"], grant["points"])
        for future in futures:
            assert future.result(timeout=1).label.startswith("g")

    def test_leases_route_by_shard_id(self):
        coord = spec_coord()
        coord.submit(one_spec(1, "r1"), None)
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 4))
        shard = coord._lease_shard(grant["lease_id"])
        assert shard is not None
        assert grant["lease_id"] in shard.leases
        # Heartbeat renews through the same routing.
        before = coord._leases[grant["lease_id"]].deadline_unix
        time.sleep(0.01)
        reply = coord.heartbeat(
            protocol.heartbeat_request(wid, [grant["lease_id"]])
        )
        assert reply["renewed"] == [grant["lease_id"]]
        assert coord._leases[grant["lease_id"]].deadline_unix > before

    def test_stats_aggregate_across_shards(self):
        coord = spec_coord(policy="wfq")
        for i in range(6):
            coord.submit(one_spec(i, f"t{i}"), None, tenant="alice")
        coord.submit(one_spec(99, "b0"), None, tenant="bob")
        stats = coord.stats()
        assert stats["pending_points"] == 7
        assert stats["pending_by_tenant"] == {"alice": 6, "bob": 1}
        assert len(stats["shards"]) == coord.nshards
        assert sum(s["pending_points"] for s in stats["shards"]) == 7
        text = coord.registry.render_text()
        assert 'cluster_tenant_pending_points{tenant="alice"} 6' in text


class TestSpeculation:
    def test_percentile_nearest_rank(self):
        values = sorted([1.0, 2.0, 3.0, 4.0, 5.0])
        assert percentile(values, 50) == 3.0
        assert percentile(values, 95) == 5.0
        assert percentile(values, 1) == 1.0
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_tracker_gates_on_samples_and_enable(self):
        tracker = DurationTracker()
        config = SpeculationConfig(min_samples=3)
        assert tracker.delay_s(config) is None
        for _ in range(3):
            tracker.record(2.0)
        assert tracker.delay_s(config) == pytest.approx(6.0)  # p95 * 3
        disabled = SpeculationConfig(enabled=False)
        assert tracker.delay_s(disabled) is None

    def test_first_upload_wins_and_counters(self):
        coord = spec_coord(batch=1)
        with coord._dur_lock:
            coord._durations.record(0.01)
        future = coord.submit(one_spec(1, "slow"), None)
        w1 = register(coord)
        w2 = register(coord)
        grant1 = coord.lease(protocol.lease_request(w1, 1))
        assert len(grant1["points"]) == 1
        assert grant1["points"][0]["speculative"] is False
        # The monitor would do this; force the straggler check directly.
        launched = coord.speculate_stragglers(now=time.time() + 60.0)
        assert launched == 1
        assert coord.speculate_stragglers(now=time.time() + 60.0) == 0  # once
        grant2 = coord.lease(protocol.lease_request(w2, 1))
        assert grant2["points"][0]["speculative"] is True
        assert grant2["points"][0]["fingerprint"] == (
            grant1["points"][0]["fingerprint"]
        )
        # Duplicate worker uploads first and wins the future.
        reply2 = upload(coord, w2, grant2["lease_id"], grant2["points"])
        assert (reply2["resolved"], reply2["duplicates"]) == (1, 0)
        assert future.result(timeout=1).worker_id == w2
        # The straggler's upload is a harmless duplicate, not an error.
        reply1 = upload(coord, w1, grant1["lease_id"], grant1["points"])
        assert reply1["accepted"] is True
        assert (reply1["resolved"], reply1["duplicates"]) == (0, 1)
        text = coord.registry.render_text()
        assert "cluster_speculative_leases_total 1" in text
        assert "cluster_speculative_wins_total 1" in text
        assert "cluster_speculative_wasted_total 1" in text

    def test_original_win_counts_duplicate_as_wasted(self):
        coord = spec_coord(batch=1)
        with coord._dur_lock:
            coord._durations.record(0.01)
        future = coord.submit(one_spec(2, "orig-wins"), None)
        w1 = register(coord)
        w2 = register(coord)
        grant1 = coord.lease(protocol.lease_request(w1, 1))
        assert coord.speculate_stragglers(now=time.time() + 60.0) == 1
        grant2 = coord.lease(protocol.lease_request(w2, 1))
        upload(coord, w1, grant1["lease_id"], grant1["points"])
        assert future.result(timeout=1).worker_id == w1
        reply2 = upload(coord, w2, grant2["lease_id"], grant2["points"])
        assert reply2["duplicates"] == 1
        text = coord.registry.render_text()
        assert "cluster_speculative_wins_total 0" in text
        assert "cluster_speculative_wasted_total 1" in text

    def test_expiry_with_live_duplicate_spares_the_future(self):
        coord = spec_coord(batch=1)
        with coord._dur_lock:
            coord._durations.record(0.01)
        future = coord.submit(one_spec(3, "survivor"), None)
        w1 = register(coord)
        w2 = register(coord)
        grant1 = coord.lease(protocol.lease_request(w1, 1))
        assert coord.speculate_stragglers(now=time.time() + 60.0) == 1
        grant2 = coord.lease(protocol.lease_request(w2, 1))
        # Only the original lease dies; a duplicate copy is still live:
        # the future must NOT fail — the duplicate IS the retry.
        coord._leases[grant1["lease_id"]].deadline_unix = time.time() - 1.0
        assert coord.expire_stale() == 1
        assert not future.done()
        reply2 = upload(coord, w2, grant2["lease_id"], grant2["points"])
        assert reply2["resolved"] == 1
        assert future.result(timeout=1).worker_id == w2

    def test_expiry_of_every_copy_fails_the_future(self):
        coord = spec_coord(batch=1)
        with coord._dur_lock:
            coord._durations.record(0.01)
        future = coord.submit(one_spec(5, "dead"), None)
        w1 = register(coord)
        w2 = register(coord)
        coord.lease(protocol.lease_request(w1, 1))
        assert coord.speculate_stragglers(now=time.time() + 60.0) == 1
        coord.lease(protocol.lease_request(w2, 1))
        # Both workers go silent: no copy is live, so the point charges
        # an attempt (the scheduler's retry loop re-enqueues it).
        assert coord.expire_stale(now=time.time() + 60.0) == 2
        with pytest.raises(Exception) as err:
            future.result(timeout=1)
        assert "lease deadline missed" in str(err.value)

    def test_disabled_speculation_never_launches(self):
        coord = spec_coord(
            speculation=SpeculationConfig(enabled=False), batch=1
        )
        with coord._dur_lock:
            for _ in range(5):
                coord._durations.record(0.01)
        coord.submit(one_spec(4, "nospec"), None)
        wid = register(coord)
        coord.lease(protocol.lease_request(wid, 1))
        assert coord.speculate_stragglers(now=time.time() + 60.0) == 0

    def test_stats_expose_speculation(self):
        coord = spec_coord()
        stats = coord.stats()["speculation"]
        assert stats["enabled"] is True
        with coord._dur_lock:
            coord._durations.record(2.0)
        assert coord.stats()["speculation"]["delay_s"] is not None


# -- engine seam ----------------------------------------------------------


class TestEngineSeam:
    def test_policy_dispatch_bit_identical_and_manifest_tenant(self, tmp_path):
        specs = [one_spec(i, f"seam{i}") for i in range(4)]
        serial = run_points(specs, max_workers=1)
        fair = run_points(
            specs,
            max_workers=2,
            run_label="sched-seam",
            tenant="alice",
            policy="wfq",
        )
        assert [point_row(r, SCALE) for r in serial] == [
            point_row(r, SCALE) for r in fair
        ]
        run_dirs = sorted(runs_dir().glob("sched-seam-*"))
        assert run_dirs, "run manifest missing"
        manifest = RunManifest.load(run_dirs[-1] / "manifest.json")
        assert manifest.tenant == "alice"
        listing = list_runs(runs_dir())
        assert "tenant=alice" in listing
