"""Side-channel observability pack: observer, burst, probes, figS*.

Four contracts under test:

1. **Seed bit-identity** — with no observer and no burst configured, the
   simulator is byte-for-byte the pre-observer code: golden digests of a
   fig1 spec and the fig9 collocation run, captured from the seed tree
   before the observer hook existed, must still match exactly.
2. **Observer determinism** — with a fixed probe seed, serial runs,
   ``REPRO_WORKERS>1`` runs, and ``REPRO_EPOCH`` chunked runs all
   produce identical probe timelines, leak summaries, and result rows.
3. **Engine seam** — the observer forces the object engine (logged
   fallback, identical results to an explicit object run); a burst
   profile alone still runs under the batch engine bit-identically.
4. **Leak physics** — on the tiny machine the figS1 ordering holds:
   DMA pins MI near zero, DDIO maximizes it, DDIO+Sweeper lands below
   DDIO (and preserves more attacker lines).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.soa import SoaCache
from repro.engine.batch import BatchHierarchy
from repro.engine.parallel import (
    PointSpec,
    last_run_dir,
    run_cached_spec,
    run_points,
)
from repro.engine.pointcache import fingerprint
from repro.engine.tracer import (
    CollocationSimulator,
    TraceConfig,
    TraceSimulator,
)
from repro.errors import ConfigError
from repro.experiments import figS1, figS2
from repro.experiments.common import ExperimentSettings, point_row
from repro.experiments import fig1
from repro.nic.arrivals import BurstProfile
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.probes import validate_probe_record, validate_probe_timeline
from repro.obs.validate import validate_run_dir
from repro.params import CacheParams
from repro.serve.jobs import BadRequest, parse_job_request
from repro.sidechannel import (
    ObserverConfig,
    binned_mutual_information,
    hit_rate_trace,
    per_set_eviction_counts,
)
from repro.workloads.xmem import XMemWorkload
from tests.conftest import make_tiny_kvs, make_tiny_l3fwd, make_tiny_system

#: tiny-machine observer/burst used throughout (64-set LLC, 2 DDIO ways).
TINY_OBSERVER = ObserverConfig(sets=8, period=8, probe_seed=23, mi_bins=4)
TINY_BURST = BurstProfile(low=1, high=9, window=16, seed=5)


def tiny_cfg(
    policy: str = "ddio",
    sweeper: bool = False,
    engine: str = "object",
    observer: ObserverConfig = TINY_OBSERVER,
    burst: BurstProfile = TINY_BURST,
    measure: int = 512,
) -> TraceConfig:
    return TraceConfig(
        system=make_tiny_system(),
        workload=make_tiny_kvs(),
        policy=policy,
        sweeper=sweeper,
        warmup_requests=128,
        measure_requests=measure,
        engine=engine,
        observer=observer,
        burst=burst,
    )


def tiny_spec(
    label: str, sweeper: bool = False, measure: int = 384
) -> PointSpec:
    return PointSpec(
        label=label,
        system=make_tiny_system(),
        workload=make_tiny_kvs(),
        policy="ddio",
        sweeper=sweeper,
        warmup_requests=128,
        measure_requests=measure,
        observer=TINY_OBSERVER,
        burst=TINY_BURST,
    )


# ----------------------------------------------------------------------
# 1. observer-off runs are bit-identical to the seed
# ----------------------------------------------------------------------

# Golden digests captured from the seed tree (before the observer hook
# existed in run_requests): fig1's first spec and the fig9 collocation
# run. Any drift here means the observer seam perturbed the hot path.
GOLDEN_FIG1 = {
    "cache_totals": {
        "evictions_clean": 4539, "evictions_dirty": 3336, "hits": 4880,
        "insertions": 15771, "invalidations": 992, "misses": 23171,
        "sweeps": 0,
    },
    "cpu_work": 629.5,
    "levels": {"L1": 573, "L2": 971, "LLC": 0, "MEM": 7400},
    "occ": {"APP": 0, "RX_BUFFER": 0, "TX_BUFFER": 0},
    "traffic": {
        "CPU_OTHER_RD": 2808, "CPU_RX_RD": 4096, "CPU_TX_RDWR": 496,
        "NIC_RX_WR": 4096, "NIC_TX_RD": 496, "OTHER_EVCT": 0,
        "RX_EVCT": 0, "TX_EVCT": 496,
    },
}
GOLDEN_FIG9 = {
    "cache_totals": {
        "evictions_clean": 9282, "evictions_dirty": 5687, "hits": 4378,
        "insertions": 18212, "invalidations": 3077, "misses": 21806,
        "sweeps": 3072,
    },
    "levels": {"L1": 762, "L2": 436, "LLC": 1024, "MEM": 338},
    "sweeps": 1024,
    "traffic": {
        "CPU_OTHER_RD": 6420, "CPU_RX_RD": 0, "CPU_TX_RDWR": 0,
        "NIC_RX_WR": 0, "NIC_TX_RD": 0, "OTHER_EVCT": 1791,
        "RX_EVCT": 0, "TX_EVCT": 0,
    },
    "xmem_accesses": 6144,
    "xmem_levels": {"L1": 15, "L2": 32, "LLC": 15, "MEM": 6082},
}


def _trace_digest(t) -> dict:
    return {
        "traffic": {
            c.name: n
            for c, n in sorted(
                t.traffic.counts.items(), key=lambda kv: int(kv[0])
            )
        },
        "levels": {lv.name: n for lv, n in t.level_counts.items()},
        "cache_totals": t.cache_totals,
    }


def test_fig1_observer_off_bit_identical_to_seed():
    spec = fig1.specs(ExperimentSettings(scale=0.05))[0]
    cfg = TraceConfig(
        system=spec.system,
        workload=spec.workload,
        policy=spec.policy,
        sweeper=spec.sweeper,
        nic_tx_sweep=spec.nic_tx_sweep,
        queued_depth=spec.queued_depth,
        seed=spec.seed,
        warmup_requests=192,
        measure_requests=256,
        engine="object",
    )
    t = TraceSimulator(cfg).run()
    digest = _trace_digest(t)
    digest["occ"] = {k.name: v for k, v in t.llc_occupancy_by_kind.items()}
    digest["cpu_work"] = t.cpu_work_cycles
    assert digest == GOLDEN_FIG1
    assert t.leak is None


def test_fig9_observer_off_bit_identical_to_seed():
    cfg = TraceConfig(
        system=make_tiny_system(num_cores=4),
        workload=make_tiny_l3fwd(),
        sweeper=True,
        warmup_requests=128,
        measure_requests=256,
        engine="object",
    )
    sim = CollocationSimulator(
        cfg, XMemWorkload(), xmem_cores=[2, 3], xmem_ways_mask=[0, 1, 2]
    )
    c = sim.run_collocated()
    digest = _trace_digest(c.nf_result)
    digest["sweeps"] = c.nf_result.sweep_instructions
    digest["xmem_accesses"] = c.xmem_accesses
    digest["xmem_levels"] = {
        lv.name: n for lv, n in c.xmem_level_counts.items()
    }
    assert digest == GOLDEN_FIG9


def test_observer_off_cache_key_keeps_legacy_format():
    spec = tiny_spec("k")
    plain = PointSpec(
        label="k",
        system=spec.system,
        workload=spec.workload,
        policy=spec.policy,
        warmup_requests=128,
        measure_requests=384,
    )
    key = plain.cache_key()
    assert "observer=" not in key and "burst=" not in key
    observed = spec.cache_key()
    assert observed.startswith(key)
    assert "observer=ObserverConfig(" in observed
    assert "burst=BurstProfile(" in observed
    assert fingerprint(plain) != fingerprint(spec)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"sets": 0},
        {"period": 0},
        {"jitter": 8, "period": 8},
        {"jitter": -1},
        {"mi_bins": 1},
        {"ways": ()},
        {"ways": (0, -1)},
    ],
)
def test_observer_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigError):
        ObserverConfig(**kwargs)


def test_observer_config_coerces_ways_to_tuple():
    assert ObserverConfig(ways=[1, 2]).ways == (1, 2)


def test_observer_ways_beyond_llc_associativity_raise():
    cfg = tiny_cfg(observer=ObserverConfig(sets=4, ways=(15,)), measure=64)
    with pytest.raises(ConfigError):
        TraceSimulator(cfg).run()


@pytest.mark.parametrize(
    "kwargs",
    [{"low": 0}, {"low": 5, "high": 4}, {"window": 0}],
)
def test_burst_profile_rejects_bad_knobs(kwargs):
    with pytest.raises(ConfigError):
        BurstProfile(**kwargs)


def test_burst_depth_is_a_pure_function_of_the_index():
    a = BurstProfile(low=2, high=10, window=8, seed=3)
    b = BurstProfile(low=2, high=10, window=8, seed=3)
    forward = [a.depth(i) for i in range(256)]
    backward = [b.depth(i) for i in reversed(range(256))]
    assert forward == list(reversed(backward))
    assert set(forward) == {2, 10}  # both phases occur
    for w in range(0, 256, 8):  # constant within a window
        assert len({x for x in forward[w : w + 8]}) == 1


# ----------------------------------------------------------------------
# probe records and validators
# ----------------------------------------------------------------------


def test_probe_timeline_validates_and_accounts_every_line():
    sim = TraceSimulator(tiny_cfg())
    t = sim.run()
    records = sim.observer.records
    assert len(records) == 512 // TINY_OBSERVER.period
    validate_probe_timeline(records)
    lines = TINY_OBSERVER.sets * len(sim.observer.probe_ways)
    for r in records:
        assert r["hits"] + r["misses"] == lines
    assert t.leak["probes"] == len(records)
    assert t.leak["hits"] == sum(r["hits"] for r in records)
    assert t.leak["probe_ways"] == [0, 1]  # tracked the DDIO mask
    assert t.leak["engine"] == "object"


@pytest.mark.parametrize(
    "mutate",
    [
        lambda r: r.update(schema=99),
        lambda r: r.update(misses="3"),
        lambda r: r.update(hits=-1),
        lambda r: r.update(set_misses={"x": 1}),
        lambda r: r.update(set_misses={"5": 0}),
        lambda r: r.update(set_misses={"5": r["misses"] + 1}),
    ],
)
def test_probe_record_validator_rejects_corruption(mutate):
    record = {
        "schema": 1, "probe": 0, "request": 7, "interval": 8,
        "arrivals": 8, "hits": 13, "misses": 3, "set_misses": {"5": 3},
    }
    validate_probe_record(record)
    mutate(record)
    with pytest.raises(ConfigError):
        validate_probe_record(record)


def test_probe_timeline_validator_rejects_bad_ordering():
    def rec(probe, request):
        return {
            "schema": 1, "probe": probe, "request": request, "interval": 8,
            "arrivals": 0, "hits": 16, "misses": 0, "set_misses": {},
        }

    with pytest.raises(ConfigError):
        validate_probe_timeline([])
    with pytest.raises(ConfigError):  # non-sequential probe index
        validate_probe_timeline([rec(0, 7), rec(2, 15)])
    with pytest.raises(ConfigError):  # request not strictly increasing
        validate_probe_timeline([rec(0, 7), rec(1, 7)])


def test_analysis_helpers():
    records = [
        {"hits": 3, "misses": 1, "set_misses": {"4": 1}},
        {"hits": 0, "misses": 4, "set_misses": {"4": 2, "11": 2}},
        {"hits": 4, "misses": 0, "set_misses": {}},
    ]
    assert hit_rate_trace(records) == [0.75, 0.0, 1.0]
    assert per_set_eviction_counts(records) == {"4": 3, "11": 2}
    # perfectly dependent variables carry log2(range) bits; constants none
    xs = [0, 1, 2, 3] * 8
    assert binned_mutual_information(xs, xs, 4) == pytest.approx(2.0)
    assert binned_mutual_information(xs, [5] * len(xs), 4) == 0.0
    assert binned_mutual_information([], [], 4) == 0.0


# ----------------------------------------------------------------------
# 2. observer-on determinism: serial / workers / epoch chunking
# ----------------------------------------------------------------------


def _run_grid(monkeypatch, tmp_path, tag, workers, epoch=None):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / tag))
    if epoch is None:
        monkeypatch.delenv("REPRO_EPOCH", raising=False)
    else:
        monkeypatch.setenv("REPRO_EPOCH", str(epoch))
    specs = [tiny_spec("plain"), tiny_spec("swept", sweeper=True)]
    results = run_points(specs, max_workers=workers, run_label=tag)
    run_dir = last_run_dir()
    probes = {}
    for r in results:
        assert r.probe_file is not None
        probes[r.label] = (run_dir / r.probe_file).read_text()
    rows = [point_row(r, 0.05) for r in results]
    for row in rows:
        row.pop("sim_seconds")  # wall-clock, the one nondeterministic key
    return rows, probes


def test_observer_deterministic_across_execution_modes(
    monkeypatch, tmp_path
):
    serial = _run_grid(monkeypatch, tmp_path, "serial", workers=1)
    parallel = _run_grid(monkeypatch, tmp_path, "parallel", workers=2)
    chunked = _run_grid(
        monkeypatch, tmp_path, "chunked", workers=1, epoch=64
    )
    assert serial == parallel
    assert serial == chunked
    rows = serial[0]
    assert rows[0]["leak"]["probes"] == 384 // TINY_OBSERVER.period
    # identical runs serialize byte-identically
    assert json.dumps(serial[0], sort_keys=True) == json.dumps(
        parallel[0], sort_keys=True
    )


def test_probe_seed_selects_different_monitored_sets():
    sims = []
    for seed in (23, 24):
        sim = TraceSimulator(
            tiny_cfg(
                observer=ObserverConfig(sets=8, period=8, probe_seed=seed)
            )
        )
        sim.run()
        sims.append(sim)
    assert sims[0].observer.monitored_sets != sims[1].observer.monitored_sets


def test_jittered_schedule_stays_deterministic():
    cfg = ObserverConfig(sets=8, period=8, jitter=3, probe_seed=23)
    runs = []
    for _ in range(2):
        sim = TraceSimulator(tiny_cfg(observer=cfg))
        sim.run()
        runs.append(sim.observer.records)
    assert runs[0] == runs[1]
    intervals = {r["interval"] for r in runs[0]}
    assert len(intervals) > 1  # the jitter actually moved probes
    assert all(5 <= r["interval"] <= 11 for r in runs[0])


# ----------------------------------------------------------------------
# 3. engine seam: observer forces object, burst alone stays batch
# ----------------------------------------------------------------------


def test_observer_forces_object_engine_with_identical_results():
    fallback = TraceSimulator(tiny_cfg(engine="batch"))
    assert fallback.observer_engine_fallback
    assert fallback.engine == "object"
    assert type(fallback.hier) is CacheHierarchy
    explicit = TraceSimulator(tiny_cfg(engine="object"))
    assert not explicit.observer_engine_fallback
    a, b = fallback.run(), explicit.run()
    assert a.leak == b.leak
    assert _trace_digest(a) == _trace_digest(b)
    assert fallback.observer.records == explicit.observer.records


def test_burst_alone_runs_under_batch_engine(monkeypatch):
    def run(engine):
        sim = TraceSimulator(
            tiny_cfg(engine=engine, observer=None, burst=TINY_BURST)
        )
        if engine == "batch":
            assert isinstance(sim.hier, BatchHierarchy)
            assert not sim.observer_engine_fallback
        return sim.run()

    a, b = run("object"), run("batch")
    assert _trace_digest(a) == _trace_digest(b)
    assert a.leak is None and b.leak is None


# ----------------------------------------------------------------------
# 4. leak physics: the figS1 ordering on the tiny machine
# ----------------------------------------------------------------------


def test_mi_ordering_dma_below_sweeper_below_ddio():
    leaks = {}
    for name, policy, sweeper in (
        ("dma", "dma", False),
        ("ddio", "ddio", False),
        ("swept", "ddio", True),
    ):
        leaks[name] = TraceSimulator(
            tiny_cfg(policy=policy, sweeper=sweeper, measure=1024)
        ).run().leak
    assert leaks["dma"]["mi_bits"] < leaks["swept"]["mi_bits"]
    assert leaks["swept"]["mi_bits"] < leaks["ddio"]["mi_bits"]
    # Sweeper preserves more attacker lines than plain DDIO
    assert leaks["swept"]["hit_rate"] > leaks["ddio"]["hit_rate"]
    assert leaks["dma"]["hit_rate"] > 0.9


# ----------------------------------------------------------------------
# provenance: probe files, manifests, caching, metrics
# ----------------------------------------------------------------------


def test_run_manifest_records_observer_provenance(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    run_points([tiny_spec("observed")], max_workers=1, run_label="probe")
    run_dir = last_run_dir()
    timelines, probes = validate_run_dir(run_dir)
    assert probes == 1
    manifest = RunManifest.load(run_dir / "manifest.json")
    (point,) = manifest.points
    assert point.probe_file.startswith("probes/")
    assert point.observer.startswith("ObserverConfig(")
    assert point.probe_seed == TINY_OBSERVER.probe_seed
    assert point.burst.startswith("BurstProfile(")
    loaded = json.loads((run_dir / point.probe_file).read_text().splitlines()[0])
    validate_probe_record(loaded)


def test_cached_observer_point_keeps_leak_but_drops_probe_file(
    monkeypatch, tmp_path
):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pointcache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    spec = tiny_spec("cached")
    first = run_cached_spec(spec, run_dir=str(tmp_path / "r1"))
    assert not first.from_cache
    assert first.probe_file is not None
    second = run_cached_spec(spec, run_dir=None)
    assert second.from_cache
    assert second.probe_file is None
    assert second.trace.leak == first.trace.leak


def test_occupancy_by_way_matches_across_cache_impls():
    params = CacheParams(
        size_bytes=8 * 4 * 64, ways=4, latency_cycles=1, replacement="lru"
    )
    oracle, soa = SetAssociativeCache(params), SoaCache(params)
    for block in range(0, 48, 1):
        mask = (0, 2) if block % 3 else None
        oracle.insert(block, dirty=False, kind=0, way_mask=mask)
        soa.insert(block, dirty=False, kind=0, way_mask=mask)
    a, b = oracle.occupancy_by_way(), soa.occupancy_by_way()
    assert a == b
    assert len(a) == params.ways
    assert sum(a) == len(oracle.resident_blocks())


def test_llc_way_occupancy_gauge_published():
    system = make_tiny_system()
    hier = CacheHierarchy(system)
    reg = MetricsRegistry()
    hier.publish_metrics(reg)
    hier.nic_llc_write_run(0, range(0, 40))
    samples = reg.collect()
    per_way = [
        samples[f'llc_way_occupancy_blocks{{way="{w}"}}']
        for w in range(system.llc.ways)
    ]
    assert sum(per_way) == len(hier.llc.resident_blocks())
    # NIC fills are confined to the DDIO ways
    for w in range(system.llc.ways):
        if w not in hier.ddio_way_mask:
            assert per_way[w] == 0


def test_observer_metrics_published_through_registry():
    reg = MetricsRegistry()
    sim = TraceSimulator(tiny_cfg(measure=128))
    sim.observer.publish_metrics(reg)
    sim.run()
    samples = reg.collect()
    assert samples["observer_probes_total"] == len(sim.observer.records)
    assert samples["observer_probe_hits_total"] == sim.observer.total_hits
    assert samples["observer_probe_misses_total"] == sim.observer.total_misses
    assert samples["observer_monitored_sets"] == TINY_OBSERVER.sets


# ----------------------------------------------------------------------
# serve layer: figS* by name, observer knobs on explicit points
# ----------------------------------------------------------------------


def test_serve_builds_figS_experiments_by_name():
    for name, n_points in (("figS1", 9), ("figS2", 6)):
        request = parse_job_request(
            {"experiment": name, "scale": 0.05, "measure": 0.1}
        )
        assert len(request.specs) == n_points
        assert all(s.observer is not None for s in request.specs)
        assert all(s.burst is not None for s in request.specs)


def test_serve_point_accepts_observer_and_burst_knobs():
    request = parse_job_request(
        {
            "points": [
                {
                    "workload": "kvs",
                    "scale": 0.05,
                    "policy": "ddio",
                    "sweeper": True,
                    "observer": {
                        "sets": 4, "ways": [0, 1], "period": 16,
                        "probe_seed": 3,
                    },
                    "burst": {"low": 1, "high": 5, "window": 8},
                }
            ]
        }
    )
    (spec,) = request.specs
    assert spec.observer == ObserverConfig(
        sets=4, ways=(0, 1), period=16, probe_seed=3
    )
    assert spec.burst == BurstProfile(low=1, high=5, window=8)


def test_serve_unknown_observer_knob_is_400_naming_the_vocabulary():
    with pytest.raises(BadRequest) as err:
        parse_job_request(
            {"points": [{"observer": {"setz": 4}}]}
        )
    message = str(err.value)
    assert "'setz'" in message
    for knob in ("sets", "ways", "period", "jitter", "probe_seed", "mi_bins"):
        assert knob in message


@pytest.mark.parametrize(
    "entry,needle",
    [
        ({"observer": {"sets": 0}}, "invalid observer config"),
        ({"observer": {"ways": [0, "x"]}}, "list of integers"),
        ({"observer": 7}, "must be an object"),
        ({"burst": {"lo": 1}}, "unknown burst key(s): 'lo'"),
        ({"burst": {"low": 0}}, "invalid burst profile"),
        ({"burst": {"seed": 1.5}}, "must be an integer"),
    ],
)
def test_serve_rejects_malformed_observer_and_burst(entry, needle):
    with pytest.raises(BadRequest) as err:
        parse_job_request({"points": [entry]})
    assert needle in str(err.value)


# ----------------------------------------------------------------------
# figS* spec shape
# ----------------------------------------------------------------------


def test_figS_specs_pin_the_observer_scale():
    fast = ExperimentSettings(scale=0.3, measure_multiplier=0.01)
    slow = ExperimentSettings(scale=0.05, measure_multiplier=0.01)
    for module in (figS1, figS2):
        a, b = module.specs(fast), module.specs(slow)
        assert [s.cache_key() for s in a] == [s.cache_key() for s in b]
        labels = [s.label for s in a]
        assert len(labels) == len(set(labels))
        for spec in a:
            assert spec.measure_requests == 4000  # the probe-count floor
            assert spec.observer == figS1.OBSERVER
            assert spec.burst is not None
