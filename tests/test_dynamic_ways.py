"""Tests for the IAT-style dynamic DDIO way reallocation baseline."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.engine.dynamic import DynamicWaysSimulator
from repro.engine.tracer import TraceConfig, TraceSimulator
from repro.errors import ConfigError
from repro.nic.dynamic import (
    DynamicDdioController,
    DynamicWaysConfig,
    DynamicTraceHook,
)
from repro.traffic import MemCategory, TrafficCounter

from tests.conftest import make_tiny_kvs, make_tiny_system


def make_controller(min_ways=2, max_ways=8, start_ways=2):
    system = make_tiny_system(ddio_ways=start_ways)
    hier = CacheHierarchy(system)
    cfg = DynamicWaysConfig(min_ways=min_ways, max_ways=max_ways,
                            epoch_requests=8)
    return DynamicDdioController(hier, cfg, packet_blocks=4)


def window(rx_evct_blocks: int) -> TrafficCounter:
    t = TrafficCounter()
    t.record(MemCategory.RX_EVCT, rx_evct_blocks)
    return t


class TestController:
    def test_grows_under_heavy_churn(self):
        c = make_controller()
        # 100 requests x 4 blocks, 300 RX evictions -> 75% churn
        assert c.observe_epoch(window(300), requests=100) == 3
        assert c.hier.ddio_way_mask == (0, 1, 2)

    def test_shrinks_when_quiet(self):
        c = make_controller(start_ways=4)
        assert c.observe_epoch(window(0), requests=100) == 3

    def test_clamps_at_bounds(self):
        c = make_controller(min_ways=2, max_ways=3, start_ways=3)
        assert c.observe_epoch(window(400), requests=100) == 3
        c2 = make_controller(min_ways=2, max_ways=8, start_ways=2)
        assert c2.observe_epoch(window(0), requests=100) == 2

    def test_steady_between_thresholds(self):
        c = make_controller(start_ways=4)
        # 10% churn: between shrink (2%) and grow (25%) thresholds
        assert c.observe_epoch(window(40), requests=100) == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            DynamicWaysConfig(min_ways=4, max_ways=2)
        with pytest.raises(ConfigError):
            DynamicWaysConfig(grow_threshold=0.1, shrink_threshold=0.2)
        c = make_controller()
        with pytest.raises(ConfigError):
            c.observe_epoch(window(0), requests=0)

    def test_max_ways_bounded_by_llc(self):
        system = make_tiny_system()
        hier = CacheHierarchy(system)
        with pytest.raises(ConfigError):
            DynamicDdioController(
                hier, DynamicWaysConfig(max_ways=99), packet_blocks=4
            )


class TestHookAndSimulator:
    def test_hook_fires_on_epoch_boundary(self):
        c = make_controller()
        hook = DynamicTraceHook(c)
        for _ in range(7):
            hook.tick()
        assert c.adjustments == []
        c.hier.traffic.record(MemCategory.RX_EVCT, 32)  # heavy churn
        hook.tick()
        assert len(c.adjustments) == 1

    def make_sim(self, dynamic=None, **cfg_kwargs):
        cfg = TraceConfig(
            system=make_tiny_system(ddio_ways=2),
            workload=make_tiny_kvs(),
            policy="ddio",
            warmup_requests=2500,
            measure_requests=1500,
            **cfg_kwargs,
        )
        if dynamic is None:
            return TraceSimulator(cfg)
        return DynamicWaysSimulator(cfg, dynamic)

    def test_rejects_non_ddio_policies(self):
        cfg = TraceConfig(
            system=make_tiny_system(), workload=make_tiny_kvs(), policy="dma"
        )
        with pytest.raises(ConfigError):
            DynamicWaysSimulator(cfg)

    def test_ways_grow_under_leaky_workload(self):
        sim = self.make_sim(DynamicWaysConfig(min_ways=2, max_ways=8,
                                              epoch_requests=64))
        sim.run()
        assert sim.final_ways > 2

    def test_dynamic_reduces_leaks_vs_static_floor(self):
        """The IAT-style baseline mitigates leaks by adding capacity..."""
        static = self.make_sim().run()
        dynamic_sim = self.make_sim(
            DynamicWaysConfig(min_ways=2, max_ways=10, epoch_requests=64)
        )
        dynamic = dynamic_sim.run()
        assert (
            dynamic.per_request()[MemCategory.RX_EVCT]
            <= static.per_request()[MemCategory.RX_EVCT] + 0.1
        )

    def test_sweeper_beats_dynamic_ways(self):
        """...but Sweeper removes the root cause outright (§VII)."""
        dynamic = self.make_sim(
            DynamicWaysConfig(min_ways=2, max_ways=10, epoch_requests=64)
        ).run()
        sweeper = self.make_sim(dynamic=None, sweeper=True).run()
        assert (
            sweeper.per_request()[MemCategory.RX_EVCT]
            < dynamic.per_request()[MemCategory.RX_EVCT]
        )
        assert (
            sweeper.mem_accesses_per_request()
            < dynamic.mem_accesses_per_request()
        )
