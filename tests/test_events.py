"""Unit tests for the discrete-event layer (drops, latency sampling)."""

import numpy as np
import pytest

from repro.engine.events import FiniteRingSimulator, sample_memory_latencies
from repro.errors import ConfigError
from repro.params import SystemConfig

SYSTEM = SystemConfig().scaled(0.125)


def make_sim(ring=64, service_us=0.5, spikes=None) -> FiniteRingSimulator:
    return FiniteRingSimulator(
        SYSTEM,
        ring_entries=ring,
        base_service_us=lambda _mrps: service_us,
        spike_sampler=spikes,
    )


class TestFiniteRing:
    def test_light_load_no_drops(self):
        # 3 cores at 0.5us service can do 6 Mrps; offer 1.
        out = make_sim().run(1.0, packets_per_core=5000)
        assert out.drop_rate == 0.0
        assert out.delivered_mrps > 0

    def test_overload_drops(self):
        out = make_sim(ring=8).run(20.0, packets_per_core=5000)
        assert out.drop_rate > 0.2

    def test_drop_rate_monotone_in_load(self):
        sim = make_sim(ring=16)
        rates = [sim.run(x, packets_per_core=4000).drop_rate
                 for x in (2.0, 6.0, 12.0, 24.0)]
        assert all(b >= a - 0.01 for a, b in zip(rates, rates[1:]))

    def test_deeper_rings_absorb_bursts(self):
        spikes = np.random.default_rng(5)

        def spike():
            return 20.0 if spikes.random() < 0.01 else 0.0

        shallow = FiniteRingSimulator(
            SYSTEM, 4, lambda _m: 0.5, spike_sampler=spike, seed=7
        ).run(3.0, packets_per_core=8000)
        spikes2 = np.random.default_rng(5)

        def spike2():
            return 20.0 if spikes2.random() < 0.01 else 0.0

        deep = FiniteRingSimulator(
            SYSTEM, 256, lambda _m: 0.5, spike_sampler=spike2, seed=7
        ).run(3.0, packets_per_core=8000)
        assert deep.drop_rate < shallow.drop_rate

    def test_sojourn_statistics(self):
        out = make_sim().run(2.0, packets_per_core=4000)
        assert out.p99_sojourn_us >= out.mean_sojourn_us > 0

    def test_peak_no_drop_below_capacity(self):
        sim = make_sim(ring=64, service_us=0.5)
        peak = sim.peak_no_drop_mrps(packets_per_core=3000, iterations=10)
        capacity = SYSTEM.cpu.num_cores / 0.5
        assert 0 < peak <= capacity

    def test_peak_no_drop_higher_for_deeper_ring_with_spikes(self):
        rng = np.random.default_rng(11)

        def spike():
            return 30.0 if rng.random() < 0.005 else 0.0

        shallow = FiniteRingSimulator(
            SYSTEM, 8, lambda _m: 0.4, spike_sampler=spike, seed=3
        ).peak_no_drop_mrps(packets_per_core=4000, iterations=10)
        rng = np.random.default_rng(11)
        deep = FiniteRingSimulator(
            SYSTEM, 512, lambda _m: 0.4, spike_sampler=spike, seed=3
        ).peak_no_drop_mrps(packets_per_core=4000, iterations=10)
        assert deep > shallow

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_sim(ring=0)
        with pytest.raises(ConfigError):
            make_sim().run(0.0)

    def test_load_dependent_service_is_used(self):
        calls = []

        def service(mrps):
            calls.append(mrps)
            return 0.3

        FiniteRingSimulator(SYSTEM, 16, service).run(2.0, packets_per_core=100)
        assert calls == [2.0]


class TestLatencySampling:
    def test_zero_bandwidth_is_idle_latency(self):
        lats = sample_memory_latencies(SYSTEM, 0.0, num_accesses=100)
        assert np.all(lats == SYSTEM.memory.idle_latency_cycles)

    def test_loaded_latency_exceeds_idle(self):
        usable = SYSTEM.memory.usable_bandwidth_gbps
        lats = sample_memory_latencies(SYSTEM, 0.8 * usable, num_accesses=20000)
        assert lats.mean() > SYSTEM.memory.idle_latency_cycles

    def test_higher_load_higher_latency(self):
        usable = SYSTEM.memory.usable_bandwidth_gbps
        low = sample_memory_latencies(SYSTEM, 0.2 * usable, num_accesses=20000)
        high = sample_memory_latencies(SYSTEM, 0.85 * usable, num_accesses=20000)
        assert high.mean() > low.mean()
        assert np.percentile(high, 99) > np.percentile(low, 99)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigError):
            sample_memory_latencies(SYSTEM, -1.0)
