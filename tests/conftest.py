"""Shared fixtures: a tiny-but-complete machine for fast tests.

The `tiny` fixtures shrink every structure (2 cores, KB-scale caches,
short rings, 256 B packets) while keeping the same structural ratios as
the paper's machine — RX footprint larger than the DDIO ways — so every
qualitative behaviour under test still occurs, in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.params import (
    CacheParams,
    CpuParams,
    MemoryParams,
    NicParams,
    SystemConfig,
)
from repro.workloads.kvs import KvsParams, KvsWorkload
from repro.workloads.l3fwd import L3fwdParams, L3fwdWorkload


def make_tiny_system(
    num_cores: int = 2,
    ddio_ways: int = 2,
    rx_buffers: int = 64,
    packet_bytes: int = 256,
    llc_sets: int = 64,
    llc_replacement: str = "random",
    num_channels: int = 4,
) -> SystemConfig:
    """A miniature Table-I machine: RX footprint >> DDIO capacity."""
    return SystemConfig(
        cpu=CpuParams(num_cores=num_cores),
        l1=CacheParams(size_bytes=4096, ways=4, latency_cycles=4),
        l2=CacheParams(size_bytes=16384, ways=8, latency_cycles=14),
        llc=CacheParams(
            size_bytes=llc_sets * 12 * 64,
            ways=12,
            latency_cycles=35,
            replacement=llc_replacement,
        ),
        memory=MemoryParams(num_channels=num_channels, channel_peak_gbps=1.6),
        nic=NicParams(
            rx_buffers_per_core=rx_buffers,
            tx_buffers_per_core=8,
            packet_bytes=packet_bytes,
            ddio_ways=ddio_ways,
        ),
    )


def make_tiny_kvs(item_bytes: int = 256) -> KvsWorkload:
    return KvsWorkload(
        KvsParams(
            num_keys=4096,
            num_buckets=1024,
            log_bytes=1 << 20,
            item_bytes=item_bytes,
        )
    )


def make_tiny_l3fwd(packet_bytes: int = 256, zero_copy: bool = False) -> L3fwdWorkload:
    return L3fwdWorkload(
        L3fwdParams(
            num_rules=512,
            packet_blocks=(packet_bytes + 63) // 64,
            zero_copy=zero_copy,
        )
    )


@pytest.fixture(autouse=True, scope="session")
def _isolate_observability(tmp_path_factory):
    """Keep tests from littering results/runs or inheriting obs knobs.

    Manifests stay enabled (tests exercise them) but are written under
    a session tmp dir; epoch sampling and the event log default off so
    the suite stays quiet and bit-identical to the seed behaviour.
    Session-scoped so it runs before the module-scoped figure fixtures
    in test_experiments.py (which call run_points during setup).
    """
    mp = pytest.MonkeyPatch()
    mp.setenv(
        "REPRO_RUNS_DIR", str(tmp_path_factory.mktemp("obs") / "runs")
    )
    for var in (
        "REPRO_EPOCH",
        "REPRO_LOG",
        "REPRO_LOG_FILE",
        "REPRO_LOG_LEVEL",
        "REPRO_NO_MANIFEST",
        "REPRO_CACHE_MAX_MB",
        "REPRO_RETRIES",
        "REPRO_RETRY_BACKOFF_S",
        "REPRO_POINT_TIMEOUT_S",
        "REPRO_FAULT_SPEC",
        "REPRO_FAULT_STATE",
        "REPRO_CLUSTER_LEASE_TTL_S",
        "REPRO_CLUSTER_HEARTBEAT_S",
        "REPRO_CLUSTER_BATCH",
        "REPRO_CLUSTER_POLL_S",
        "REPRO_CLUSTER_WORKER",
        "REPRO_SERVE_TIMEOUT_S",
        "REPRO_SNAPSHOTS",
        "REPRO_SCHED_POLICY",
        "REPRO_SCHED_SHARDS",
        "REPRO_TENANTS",
        "REPRO_SCHED_SPECULATE",
        "REPRO_SCHED_SPEC_PCTL",
        "REPRO_SCHED_SPEC_FACTOR",
        "REPRO_SCHED_SPEC_MIN_S",
    ):
        mp.delenv(var, raising=False)
    yield
    mp.undo()


@pytest.fixture
def tiny_system() -> SystemConfig:
    return make_tiny_system()


@pytest.fixture
def tiny_kvs() -> KvsWorkload:
    return make_tiny_kvs()


@pytest.fixture
def tiny_l3fwd() -> L3fwdWorkload:
    return make_tiny_l3fwd()
