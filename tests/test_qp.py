"""Unit tests for Queue Pairs and the NIC TX engine (incl. §V-D sweep)."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.errors import ProtocolError
from repro.mem.layout import RegionKind
from repro.nic.ddio import DdioPolicy, DmaPolicy
from repro.nic.qp import NicEngine, QueuePair, WorkQueueEntry
from repro.traffic import MemCategory

from tests.conftest import make_tiny_system

TX = RegionKind.TX_BUFFER


@pytest.fixture
def hier() -> CacheHierarchy:
    return CacheHierarchy(make_tiny_system())


class TestWorkQueueEntry:
    def test_transfer_length_is_bytes(self):
        e = WorkQueueEntry(0, 1, "send", (10, 11, 12))
        assert e.transfer_length == 192

    def test_empty_buffer_rejected(self):
        with pytest.raises(ProtocolError):
            WorkQueueEntry(0, 1, "send", ())

    def test_sweep_buffer_defaults_off(self):
        e = WorkQueueEntry(0, 1, "send", (1,))
        assert not e.sweep_buffer


class TestQueuePair:
    def test_post_send_enqueues(self):
        qp = QueuePair(qp_id=7, core=0)
        e = qp.post_send([1, 2], dest_node=3, sweep_buffer=True)
        assert list(qp.wq) == [e]
        assert e.dest_node == 3
        assert e.qp_id == 7
        assert e.sweep_buffer

    def test_poll_empty_returns_none(self):
        assert QueuePair(qp_id=0, core=0).poll_completion() is None


class TestNicEngine:
    def test_transmit_reads_every_block_and_completes(self, hier):
        qp = QueuePair(qp_id=0, core=0)
        nic = NicEngine(hier, DdioPolicy(2))
        for b in (10, 11):
            hier.cpu_write(0, b, TX)
        qp.post_send([10, 11])
        assert nic.process(qp) == 1
        cqe = qp.poll_completion()
        assert cqe is not None
        assert cqe.transfer_length == 128
        assert not cqe.swept
        assert nic.transmissions == 1

    def test_tx_miss_reads_memory(self, hier):
        qp = QueuePair(qp_id=0, core=0)
        nic = NicEngine(hier, DdioPolicy(2))
        qp.post_send([99])
        nic.process(qp)
        assert hier.traffic.get(MemCategory.NIC_TX_RD) == 1

    def test_nic_driven_sweep_drops_buffer_without_writeback(self, hier):
        """§V-D: SweepBuffer set -> NIC sweeps after transmission."""
        qp = QueuePair(qp_id=0, core=0)
        nic = NicEngine(hier, DdioPolicy(2))
        for b in (10, 11):
            hier.cpu_write(0, b, TX)
        hier.traffic.reset()
        qp.post_send([10, 11], sweep_buffer=True)
        nic.process(qp)
        assert not hier.resident_anywhere(0, 10)
        assert not hier.resident_anywhere(0, 11)
        assert hier.traffic.get(MemCategory.TX_EVCT) == 0
        assert nic.nic_sweeps > 0
        assert qp.poll_completion().swept

    def test_without_sweep_dirty_data_stays_cached(self, hier):
        qp = QueuePair(qp_id=0, core=0)
        nic = NicEngine(hier, DdioPolicy(2))
        hier.cpu_write(0, 10, TX)
        qp.post_send([10], sweep_buffer=False)
        nic.process(qp)
        assert hier.resident_anywhere(0, 10)

    def test_process_one_consumes_single_entry(self, hier):
        qp = QueuePair(qp_id=0, core=0)
        nic = NicEngine(hier, DdioPolicy(2))
        qp.post_send([1])
        qp.post_send([2])
        assert nic.process_one(qp)
        assert len(qp.wq) == 1
        assert nic.process_one(qp)
        assert not nic.process_one(qp)

    def test_dma_policy_transmission_flushes_and_reads(self, hier):
        qp = QueuePair(qp_id=0, core=0)
        nic = NicEngine(hier, DmaPolicy())
        hier.cpu_write(0, 10, TX)
        hier.traffic.reset()
        qp.post_send([10])
        nic.process(qp)
        assert hier.traffic.get(MemCategory.TX_EVCT) == 1
        assert hier.traffic.get(MemCategory.NIC_TX_RD) == 1
