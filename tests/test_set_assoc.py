"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.params import CacheParams


def make_cache(sets=4, ways=4, replacement="lru") -> SetAssociativeCache:
    return SetAssociativeCache(
        CacheParams(
            size_bytes=sets * ways * 64,
            ways=ways,
            latency_cycles=1,
            replacement=replacement,
        )
    )


APP = int(RegionKind.APP)
RX = int(RegionKind.RX_BUFFER)


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.access(5)
        c.insert(5, dirty=False, kind=APP)
        assert c.access(5)
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_set_mapping(self):
        c = make_cache(sets=4)
        assert c.set_index(5) == 1
        assert c.set_index(9) == 1
        assert c.set_index(4) == 0

    def test_write_access_sets_dirty(self):
        c = make_cache()
        c.insert(5, dirty=False, kind=APP)
        assert not c.is_dirty(5)
        c.access(5, write=True)
        assert c.is_dirty(5)

    def test_kind_tracking(self):
        c = make_cache()
        c.insert(3, dirty=True, kind=RX)
        assert c.kind_of(3) is RegionKind.RX_BUFFER
        assert c.kind_raw_of(3) == RX

    def test_kind_of_missing_raises(self):
        c = make_cache()
        with pytest.raises(ConfigError):
            c.kind_of(3)
        with pytest.raises(ConfigError):
            c.is_dirty(3)

    def test_occupancy(self):
        c = make_cache(sets=2, ways=2)
        assert c.occupancy() == 0
        c.insert(0, dirty=False, kind=APP)
        c.insert(1, dirty=True, kind=RX)
        assert c.occupancy() == 2
        by_kind = c.occupancy_by_kind()
        assert by_kind[RegionKind.APP] == 1
        assert by_kind[RegionKind.RX_BUFFER] == 1
        assert set(c.resident_blocks()) == {0, 1}


class TestLruReplacement:
    def test_evicts_least_recently_used(self):
        c = make_cache(sets=1, ways=2)
        c.insert(0, dirty=False, kind=APP)
        c.insert(1, dirty=False, kind=APP)
        c.access(0)  # 1 is now LRU
        evicted = c.insert(2, dirty=False, kind=APP)
        assert evicted is not None
        assert evicted.block == 1

    def test_insert_prefers_invalid_way(self):
        c = make_cache(sets=1, ways=4)
        c.insert(0, dirty=True, kind=APP)
        for b in (1, 2, 3):
            assert c.insert(b, dirty=False, kind=APP) is None

    def test_eviction_reports_dirty_and_kind(self):
        c = make_cache(sets=1, ways=1)
        c.insert(0, dirty=True, kind=RX)
        evicted = c.insert(1, dirty=False, kind=APP)
        assert evicted.block == 0
        assert evicted.dirty
        assert evicted.kind == RX
        assert c.stats.evictions_dirty == 1

    def test_in_place_insert_ors_dirty(self):
        c = make_cache(sets=1, ways=2)
        c.insert(0, dirty=True, kind=RX)
        assert c.insert(0, dirty=False, kind=RX) is None
        assert c.is_dirty(0)
        c2 = make_cache(sets=1, ways=2)
        c2.insert(0, dirty=False, kind=APP)
        c2.insert(0, dirty=True, kind=APP)
        assert c2.is_dirty(0)

    def test_in_place_insert_ignores_way_mask(self):
        """A hardware fill hits the existing line wherever it lives."""
        c = make_cache(sets=1, ways=4)
        c.insert(0, dirty=False, kind=APP, way_mask=(3,))
        assert c.way_of(0) == 3
        assert c.insert(0, dirty=True, kind=APP, way_mask=(0,)) is None
        assert c.way_of(0) == 3


class TestWayMasks:
    def test_insert_confined_to_mask(self):
        c = make_cache(sets=1, ways=4)
        for b in range(8):
            c.insert(b, dirty=False, kind=APP, way_mask=(0, 1))
        resident = c.resident_blocks()
        assert len(resident) == 2
        for b in resident:
            assert c.way_of(b) in (0, 1)

    def test_lookup_ignores_mask(self):
        c = make_cache(sets=1, ways=4)
        c.insert(0, dirty=False, kind=APP, way_mask=(3,))
        assert c.access(0)

    def test_empty_mask_raises(self):
        c = make_cache(sets=1, ways=2)
        with pytest.raises(ConfigError):
            c.insert(0, dirty=False, kind=APP, way_mask=())

    def test_disjoint_masks_partition_capacity(self):
        c = make_cache(sets=1, ways=4)
        for b in range(0, 10, 2):
            c.insert(b, dirty=False, kind=RX, way_mask=(0, 1))
        for b in range(1, 11, 2):
            c.insert(b, dirty=False, kind=APP, way_mask=(2, 3))
        kinds = c.occupancy_by_kind()
        assert kinds[RegionKind.RX_BUFFER] == 2
        assert kinds[RegionKind.APP] == 2


class TestRandomReplacement:
    def test_deterministic_given_seed(self):
        def run():
            c = make_cache(sets=2, ways=4, replacement="random")
            out = []
            for b in range(40):
                ev = c.insert(b, dirty=False, kind=APP)
                out.append(None if ev is None else ev.block)
            return out

        assert run() == run()

    def test_still_prefers_invalid_ways(self):
        c = make_cache(sets=1, ways=4, replacement="random")
        for b in range(4):
            assert c.insert(b, dirty=False, kind=APP) is None

    def test_thrash_survival_is_probabilistic(self):
        """Cycling 2x capacity through a random cache leaves a mix of old
        and new blocks, unlike LRU's strict FIFO turnover."""
        c = make_cache(sets=8, ways=4, replacement="random")
        for b in range(64):  # 2x capacity
            c.insert(b, dirty=False, kind=APP)
        resident = set(c.resident_blocks())
        old = {b for b in resident if b < 32}
        assert 0 < len(old) < 32


class TestRemoveAndSweep:
    def test_remove_returns_state(self):
        c = make_cache()
        c.insert(0, dirty=True, kind=RX)
        dirty, kind = c.remove(0)
        assert dirty and kind == RX
        assert not c.contains(0)
        assert c.remove(0) is None

    def test_sweep_drops_without_writeback_accounting(self):
        c = make_cache()
        c.insert(0, dirty=True, kind=RX)
        assert c.sweep(0)
        assert not c.contains(0)
        assert c.stats.sweeps == 1
        assert c.stats.evictions_dirty == 0

    def test_sweep_missing_is_noop(self):
        c = make_cache()
        assert not c.sweep(0)
        assert c.stats.sweeps == 0

    def test_sweep_frees_way_for_next_insert(self):
        c = make_cache(sets=1, ways=1)
        c.insert(0, dirty=True, kind=RX)
        c.sweep(0)
        evicted = c.insert(1, dirty=True, kind=RX)
        assert evicted is None  # no eviction: the way was invalid

    def test_clear(self):
        c = make_cache()
        c.insert(0, dirty=True, kind=APP)
        c.clear()
        assert c.occupancy() == 0
        assert not c.contains(0)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["access", "insert", "remove", "sweep"]),
            st.integers(0, 31),
            st.booleans(),
        ),
        max_size=200,
    )
)
def test_lru_cache_matches_reference_model(ops):
    """Model-based check: dict-of-ordered-lists reference vs the cache."""
    sets, ways = 4, 2
    cache = make_cache(sets=sets, ways=ways, replacement="lru")
    # reference: per set, list of (block, dirty) in LRU->MRU order
    ref = {s: [] for s in range(sets)}

    def ref_find(block):
        s = block % sets
        for i, (b, _d) in enumerate(ref[s]):
            if b == block:
                return s, i
        return s, None

    for op, block, dirty in ops:
        s, i = ref_find(block)
        if op == "access":
            got = cache.access(block, write=dirty)
            assert got == (i is not None)
            if i is not None:
                b, d = ref[s].pop(i)
                ref[s].append((b, d or dirty))
        elif op == "insert":
            cache.insert(block, dirty=dirty, kind=APP)
            if i is not None:
                b, d = ref[s].pop(i)
                ref[s].append((b, d or dirty))
            else:
                if len(ref[s]) >= ways:
                    ref[s].pop(0)
                ref[s].append((block, dirty))
        elif op == "remove":
            got = cache.remove(block)
            if i is None:
                assert got is None
            else:
                b, d = ref[s].pop(i)
                assert got == (d, APP)
        elif op == "sweep":
            got = cache.sweep(block)
            assert got == (i is not None)
            if i is not None:
                ref[s].pop(i)

    for s in range(sets):
        for b, d in ref[s]:
            assert cache.contains(b)
            assert cache.is_dirty(b) == d
    assert cache.occupancy() == sum(len(v) for v in ref.values())
