"""Differential equivalence: batch engine vs the object-engine oracle.

The batch engine (``repro.engine.batch``) promises *bit-identical*
results to the dict-based object engine, for both its backends (the
compiled ``batchcore.c`` kernel and the pure-Python fallback driving the
same arrays). This suite enforces that contract at three granularities:

1. **Cache fuzz** — a seeded random op sequence replayed against
   :class:`~repro.cache.set_assoc.SetAssociativeCache` and
   :class:`~repro.cache.soa.SoaCache`, asserting identical return values
   (the eviction stream), :class:`CacheStats`, and final line state, for
   both replacement policies and non-trivial way masks.
2. **Hierarchy fuzz** — the same idea one level up: random batched ops
   (access runs, NIC writes/probes, sweeps, DMA, mask changes) against
   ``CacheHierarchy`` vs ``BatchHierarchy``.
3. **Harness equivalence** — every figure harness's first spec run end
   to end under both engines, plus ``REPRO_EPOCH`` chunked runs and the
   ``CollocationSimulator``, comparing every ``TraceResult`` field.
"""

from __future__ import annotations

import importlib
import random

import pytest

from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.soa import SoaCache
from repro.engine import native
from repro.engine.batch import BatchHierarchy, build_hierarchy
from repro.engine.tracer import (
    CollocationSimulator,
    TraceConfig,
    TraceSimulator,
)
from repro.experiments.common import ExperimentSettings
from repro.mem.layout import RegionKind
from repro.obs.timeline import ObsContext
from repro.params import CacheParams
from repro.workloads.xmem import XMemWorkload
from tests.conftest import make_tiny_kvs, make_tiny_l3fwd, make_tiny_system

# Which batch backends can run here: the Python fallback always, the
# native kernel when a C compiler is available (load under the ambient
# env; "python" pinned via REPRO_BATCH_BACKEND disables the native leg).
try:
    _NATIVE = native.load_kernel() is not None
except Exception:  # pragma: no cover - env-dependent
    _NATIVE = False
BACKENDS = ("python", "native") if _NATIVE else ("python",)


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_BACKEND", request.param)
    return request.param


# ---------------------------------------------------------------------------
# 1. cache-level fuzz
# ---------------------------------------------------------------------------

# (mask for inserts, mask for a second insert flavour) — non-trivial
# orders exercise the way-mask scan order, which LRU victim choice and
# the LCG draw both depend on.
MASKS = {
    "nomask": (None, None),
    "masked": ((3, 1, 2), (0, 2)),
}


def _final_state(cache):
    blocks = sorted(cache.resident_blocks())
    return [
        (b, cache.is_dirty(b), cache.kind_raw_of(b), cache.way_of(b))
        for b in blocks
    ]


@pytest.mark.parametrize("replacement", ["lru", "random"])
@pytest.mark.parametrize("mask_mode", sorted(MASKS))
def test_cache_fuzz_identical_streams(replacement, mask_mode):
    """Seeded op soup: identical eviction stream, stats, and state."""
    params = CacheParams(
        size_bytes=8 * 4 * 64, ways=4, latency_cycles=1, replacement=replacement
    )
    oracle = SetAssociativeCache(params)
    soa = SoaCache(params)
    mask_a, mask_b = MASKS[mask_mode]
    rng = random.Random(0xF00D)
    blocks = 4 * params.num_blocks  # working set 4x capacity

    stream_a, stream_b = [], []
    for step in range(5000):
        # draw every op argument ONCE per step so both replicas see
        # identical inputs, then apply the same call to each cache
        op = rng.randrange(7)
        block = rng.randrange(blocks)
        write = rng.random() < 0.5
        dirty = rng.random() < 0.5
        kind = rng.randrange(3)
        prefer = rng.random() < 0.5
        start = rng.randrange(blocks)
        run_n = rng.randrange(1, 9)
        for cache, stream in ((oracle, stream_a), (soa, stream_b)):
            if op == 0:
                out = cache.access(block, write=write)
            elif op == 1:
                out = cache.access_kind(block, write=False)
            elif op == 2:
                evicted = cache.insert(
                    block,
                    dirty=dirty,
                    kind=kind,
                    way_mask=mask_a,
                    prefer_invalid=prefer,
                )
                out = None if evicted is None else tuple(evicted)
            elif op == 3:
                evicted = cache.insert(
                    block, dirty=True, kind=int(RegionKind.TX_BUFFER),
                    way_mask=mask_b,
                )
                out = None if evicted is None else tuple(evicted)
            elif op == 4:
                out = cache.remove(block)
            elif op == 5:
                out = cache.sweep(block)
            else:
                out = tuple(cache.access_run(start, run_n, write=write))
            stream.append(out)
        assert stream_a[-1] == stream_b[-1], f"step {step}: {op=} {block=}"

    assert stream_a == stream_b
    assert oracle.stats.as_dict() == soa.stats.as_dict()
    assert _final_state(oracle) == _final_state(soa)


# ---------------------------------------------------------------------------
# 2. hierarchy-level fuzz
# ---------------------------------------------------------------------------


def test_hierarchy_fuzz_identical(backend):
    system = make_tiny_system(num_cores=2)
    oracle = CacheHierarchy(system)
    batch = build_hierarchy(system, "batch")
    assert isinstance(batch, BatchHierarchy)
    assert batch.backend == backend

    rng = random.Random(0xBEEF)
    blocks = 4 * system.llc.num_blocks
    counts_a = {lv: 0 for lv in AccessLevel}
    counts_b = {lv: 0 for lv in AccessLevel}

    for step in range(3000):
        op = rng.randrange(10)
        core = rng.randrange(system.cpu.num_cores)
        block = rng.randrange(blocks)
        kind = RegionKind(rng.randrange(3))
        if op <= 1:
            write = rng.random() < 0.4
            a = oracle.cpu_access(core, block, kind, write)
            b = batch.cpu_access(core, block, kind, write)
        elif op <= 3:
            n = rng.randrange(1, 9)
            write = rng.random() < 0.4
            a = oracle.cpu_access_run(core, block, n, kind, write, counts_a)
            b = batch.cpu_access_run(core, block, n, kind, write, counts_b)
        elif op == 4:
            run = range(block, block + rng.randrange(1, 9))
            a = oracle.nic_llc_write_run(core, run)
            b = batch.nic_llc_write_run(core, run)
        elif op == 5:
            run = range(block, block + rng.randrange(1, 9))
            a = oracle.nic_probe_read_run(core, run)
            b = batch.nic_probe_read_run(core, run)
        elif op == 6:
            run = range(block, block + rng.randrange(1, 9))
            a = oracle.sweep_run(core, run)
            b = batch.sweep_run(core, run)
        elif op == 7:
            discard = rng.random() < 0.5
            a = oracle.invalidate_block(core, block, discard)
            b = batch.invalidate_block(core, block, discard)
        elif op == 8:
            run = range(block, block + rng.randrange(1, 9))
            if rng.random() < 0.5:
                a = oracle.dma_rx_write_run(core, run)
                b = batch.dma_rx_write_run(core, run)
            else:
                a = oracle.dma_tx_read_run(core, run)
                b = batch.dma_tx_read_run(core, run)
        else:
            # reconfigure mid-stream: masks and the victim-fill switch
            choice = rng.randrange(3)
            if choice == 0:
                ways = sorted(
                    rng.sample(range(system.llc.ways), rng.randrange(1, 5))
                )
                a = oracle.set_ddio_way_mask(ways)
                b = batch.set_ddio_way_mask(ways)
            elif choice == 1:
                mask = (
                    None
                    if rng.random() < 0.3
                    else rng.sample(range(system.llc.ways), rng.randrange(1, 5))
                )
                a = oracle.set_core_fill_mask(core, mask)
                b = batch.set_core_fill_mask(core, mask)
            else:
                flag = rng.random() < 0.5
                oracle.victim_fill_clean = flag
                batch.victim_fill_clean = flag
                a = b = flag
        assert a == b, f"step {step} op {op}: {a!r} != {b!r}"

    assert counts_a == counts_b
    assert oracle.traffic.snapshot() == batch.traffic.snapshot()
    assert oracle.stats_totals() == batch.stats_totals()
    assert oracle.llc.occupancy_by_kind() == batch.llc.occupancy_by_kind()
    for ca, cb in zip(oracle.all_caches(), batch.all_caches()):
        assert _final_state(ca) == _final_state(cb), ca.name


# ---------------------------------------------------------------------------
# 3. end-to-end harness equivalence
# ---------------------------------------------------------------------------

FIG_MODULES = [
    "fig1",
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig10",
    "headline",
    "zoo",
]


def _assert_results_equal(a, b) -> None:
    assert a.requests == b.requests
    assert a.traffic.snapshot() == b.traffic.snapshot()
    assert a.level_counts == b.level_counts
    assert a.cpu_work_cycles == b.cpu_work_cycles
    assert a.llc_occupancy_by_kind == b.llc_occupancy_by_kind
    assert a.sweep_instructions == b.sweep_instructions
    assert a.nic_sweeps == b.nic_sweeps
    assert a.drops == b.drops
    assert a.cache_totals == b.cache_totals


def _cfg_from_spec(spec, engine: str) -> TraceConfig:
    """A fast TraceConfig for a figure spec (tiny request counts)."""
    return TraceConfig(
        system=spec.system,
        workload=spec.workload,
        policy=spec.policy,
        sweeper=spec.sweeper,
        nic_tx_sweep=spec.nic_tx_sweep,
        queued_depth=spec.queued_depth,
        seed=spec.seed,
        warmup_requests=192,
        measure_requests=256,
        engine=engine,
    )


@pytest.mark.parametrize("fig", FIG_MODULES)
def test_fig_harness_equivalence(fig, backend):
    module = importlib.import_module(f"repro.experiments.{fig}")
    specs = module.specs(ExperimentSettings(scale=0.05))
    assert specs, fig
    # First and last specs bracket the grid (different policies/knobs).
    for spec in (specs[0], specs[-1]):
        obj = TraceSimulator(_cfg_from_spec(spec, "object")).run()
        bat = TraceSimulator(_cfg_from_spec(spec, "batch")).run()
        _assert_results_equal(obj, bat)


@pytest.mark.parametrize("policy", ["occamy", "rdca"])
@pytest.mark.parametrize("sweeper", [False, True])
def test_zoo_policy_equivalence(backend, policy, sweeper):
    """The policy zoo's members are engine-equivalent by construction
    (hierarchy primitives only); this enforces it end to end."""
    def run(engine):
        cfg = TraceConfig(
            system=make_tiny_system(num_cores=2),
            workload=make_tiny_kvs(),
            policy=policy,
            sweeper=sweeper,
            warmup_requests=192,
            measure_requests=256,
            engine=engine,
        )
        return TraceSimulator(cfg).run()

    _assert_results_equal(run("object"), run("batch"))


def test_epoch_chunked_equivalence(backend):
    """REPRO_EPOCH-style chunked measure loops stay bit-identical."""
    def run(engine):
        cfg = TraceConfig(
            system=make_tiny_system(),
            workload=make_tiny_kvs(),
            sweeper=True,
            warmup_requests=128,
            measure_requests=300,
            engine=engine,
        )
        obs = ObsContext(epoch_requests=64)  # 4 full epochs + a short one
        return TraceSimulator(cfg, obs=obs).run()

    _assert_results_equal(run("object"), run("batch"))


@pytest.mark.parametrize("overlap", [False, True])
def test_collocation_equivalence(backend, overlap):
    """CollocationSimulator (X-Mem tenant) matches across engines."""
    def run(engine):
        cfg = TraceConfig(
            system=make_tiny_system(num_cores=4),
            workload=make_tiny_l3fwd(),
            sweeper=True,
            warmup_requests=128,
            measure_requests=256,
            engine=engine,
        )
        sim = CollocationSimulator(
            cfg,
            XMemWorkload(),
            xmem_cores=[2, 3],
            xmem_ways_mask=None if overlap else [0, 1, 2],
        )
        return sim.run_collocated()

    a = run("object")
    b = run("batch")
    _assert_results_equal(a.nf_result, b.nf_result)
    assert a.xmem_accesses == b.xmem_accesses
    assert a.xmem_level_counts == b.xmem_level_counts


def test_manifest_records_engine(monkeypatch, tmp_path):
    """Run manifests carry the engine as provenance (and in env)."""
    from repro.obs.manifest import RunManifest
    from repro.report.timeline import list_runs

    monkeypatch.setenv("REPRO_ENGINE", "batch")
    manifest = RunManifest.create(run_label="eq")
    assert manifest.engine == "batch"
    assert manifest.env.get("REPRO_ENGINE") == "batch"

    manifest.code_salt = "abc"
    run_dir = tmp_path / manifest.run_id
    manifest.write(run_dir / "manifest.json")
    listing = list_runs(tmp_path)
    assert "engine=batch" in listing

    # pre-engine manifests (and object-engine ones) stay loadable and
    # default to "object", which the listing does not call out
    data = manifest.to_dict()
    del data["engine"]
    assert RunManifest.from_dict(data).engine == "object"
    monkeypatch.delenv("REPRO_ENGINE")
    assert RunManifest.create().engine == "object"


def test_explicit_engine_overrides_env(monkeypatch):
    """TraceConfig.engine wins over REPRO_ENGINE."""
    monkeypatch.setenv("REPRO_ENGINE", "batch")
    cfg = TraceConfig(
        system=make_tiny_system(),
        workload=make_tiny_kvs(),
        warmup_requests=8,
        measure_requests=8,
        engine="object",
    )
    sim = TraceSimulator(cfg)
    assert sim.engine == "object"
    assert type(sim.hier) is CacheHierarchy

    cfg_env = TraceConfig(
        system=make_tiny_system(),
        workload=make_tiny_kvs(),
        warmup_requests=8,
        measure_requests=8,
    )
    sim_env = TraceSimulator(cfg_env)
    assert sim_env.engine == "batch"
    assert isinstance(sim_env.hier, BatchHierarchy)
