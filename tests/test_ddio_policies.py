"""Unit tests for the DMA / DDIO / ideal-DDIO injection policies."""

import pytest

from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.nic.ddio import DdioPolicy, DmaPolicy, IdealDdioPolicy, make_policy
from repro.traffic import MemCategory

from tests.conftest import make_tiny_system

RX = RegionKind.RX_BUFFER
TX = RegionKind.TX_BUFFER


@pytest.fixture
def hier() -> CacheHierarchy:
    return CacheHierarchy(make_tiny_system())


class TestDma:
    def test_rx_write_goes_to_memory(self, hier):
        DmaPolicy().rx_write(hier, 0, 100)
        assert hier.traffic.get(MemCategory.NIC_RX_WR) == 1
        assert not hier.llc.contains(100)

    def test_rx_write_invalidates_stale_copies_without_writeback(self, hier):
        hier.cpu_write(0, 100, RX)
        hier.traffic.reset()
        DmaPolicy().rx_write(hier, 0, 100)
        assert not hier.l1s[0].contains(100)
        assert hier.traffic.get(MemCategory.RX_EVCT) == 0
        assert hier.traffic.get(MemCategory.NIC_RX_WR) == 1

    def test_tx_read_flushes_dirty_then_reads_memory(self, hier):
        hier.cpu_write(0, 50, TX)
        hier.traffic.reset()
        DmaPolicy().tx_read(hier, 0, 50)
        assert hier.traffic.get(MemCategory.TX_EVCT) == 1
        assert hier.traffic.get(MemCategory.NIC_TX_RD) == 1

    def test_cpu_buffer_accesses_use_real_hierarchy(self):
        assert DmaPolicy().cpu_buffer_level(RX) is None


class TestDdio:
    def test_rx_write_allocates_in_llc(self, hier):
        DdioPolicy(2).rx_write(hier, 0, 100)
        assert hier.llc.contains(100)
        assert hier.traffic.total() == 0

    def test_bind_sets_hierarchy_mask(self, hier):
        DdioPolicy(4).bind(hier)
        assert hier.ddio_way_mask == (0, 1, 2, 3)

    def test_bind_rejects_too_many_ways(self, hier):
        with pytest.raises(ConfigError):
            DdioPolicy(13).bind(hier)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            DdioPolicy(0)

    def test_tx_read_probes_caches(self, hier):
        hier.cpu_write(0, 50, TX)
        hier.traffic.reset()
        DdioPolicy(2).tx_read(hier, 0, 50)
        assert hier.traffic.get(MemCategory.NIC_TX_RD) == 0

    def test_name_includes_ways(self):
        assert DdioPolicy(6).name == "DDIO 6 Ways"


class TestIdeal:
    def test_no_cache_or_memory_effects(self, hier):
        p = IdealDdioPolicy()
        p.rx_write(hier, 0, 100)
        p.tx_read(hier, 0, 100)
        assert hier.traffic.total() == 0
        assert hier.llc.occupancy() == 0

    def test_cpu_buffer_accesses_intercepted_at_llc_latency(self):
        p = IdealDdioPolicy()
        assert p.cpu_buffer_level(RX) is AccessLevel.LLC
        assert p.cpu_buffer_level(TX) is AccessLevel.LLC
        assert p.cpu_buffer_level(RegionKind.APP) is None


class TestFactory:
    def test_specs(self):
        assert isinstance(make_policy("dma"), DmaPolicy)
        assert isinstance(make_policy("ideal"), IdealDdioPolicy)
        ddio = make_policy("ddio", ddio_ways=6)
        assert isinstance(ddio, DdioPolicy)
        assert ddio.ways == 6

    def test_case_insensitive(self):
        assert isinstance(make_policy("DMA"), DmaPolicy)

    def test_unknown_spec_raises(self):
        with pytest.raises(ConfigError):
            make_policy("magic")
