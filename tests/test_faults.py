"""Tests for the fault-tolerance layer (DESIGN.md §9).

Four layers:

* the ``REPRO_FAULT_SPEC`` grammar and the fire-once claim semantics of
  :mod:`repro.engine.faults` (process-local and cross-process);
* engine recovery — serial and process-pool ``run_points`` surviving
  injected point errors, worker crashes, and stragglers, with the
  recovered results bit-identical to a fault-free run and the run
  manifest recording status/attempts/errors on every exit path;
* point-cache corruption handling — truncated, wrong-class, and
  unreadable entries all behave as misses;
* manifest schema v2 — status validation, v1 compatibility, and the
  orphan-run detection of ``python -m repro.obs.validate``.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import faults, pointcache
from repro.engine.parallel import (
    PointFailure,
    _run_parallel,
    backoff_delay,
    last_run_dir,
    point_timeout_s,
    retry_backoff_s,
    retry_limit,
    run_points,
)
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_spec,
)
from repro.obs import events as obs_events
from repro.obs.manifest import PointRecord, RunManifest, validate_manifest
from repro.obs.validate import main as validate_main
from repro.obs.validate import validate_run_dir

SCALE = 0.05
SETTINGS = ExperimentSettings(scale=SCALE, measure_multiplier=0.1)


def tiny_spec(label="p", seed=42):
    return point_spec(
        label,
        kvs_system(SCALE, 64, 2, 512),
        kvs_workload(0.02, 512),
        "ddio",
        settings=SETTINGS,
        seed=seed,
    )


class MiniResult:
    """Minimal picklable stand-in for a PointResult."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.from_cache = False
        self.sim_seconds = 0.0
        self.timeline_file = None


def fault_runner(spec):
    """Module-level (picklable) runner that only exercises the hooks."""
    faults.on_point_start(spec.label)
    return MiniResult(spec.label)


@pytest.fixture(autouse=True)
def _fresh_fault_state():
    faults.reset()
    yield
    faults.reset()


def assert_identical(a, b):
    assert a.label == b.label
    assert a.trace.traffic.counts == b.trace.traffic.counts
    assert a.trace.level_counts == b.trace.level_counts
    assert a.trace.requests == b.trace.requests
    assert a.perf.throughput_mrps == b.perf.throughput_mrps
    assert a.perf.mem_bandwidth_gbps == b.perf.mem_bandwidth_gbps


class TestSpecGrammar:
    def test_full_grammar(self):
        parsed = faults.parse_spec(
            "worker_crash@point=3,point_error@label=hot,"
            "slow_point@label=a:b:1.5s,cache_corrupt@fp=ab12,"
            "cache_corrupt@fp="
        )
        assert [f.kind for f in parsed] == [
            "worker_crash", "point_error", "slow_point",
            "cache_corrupt", "cache_corrupt",
        ]
        assert parsed[0].selector == "point" and parsed[0].value == "3"
        # label values may contain ':'; only the last segment is duration
        assert parsed[2].value == "a:b" and parsed[2].seconds == 1.5
        assert parsed[3].value == "ab12"
        assert parsed[4].value == ""  # empty prefix matches any fp
        assert [f.index for f in parsed] == [0, 1, 2, 3, 4]

    def test_duration_suffix_optional(self):
        assert faults.parse_spec("slow_point@label=x:2")[0].seconds == 2.0
        assert faults.parse_spec("slow_point@label=x:0.25s")[0].seconds == 0.25

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@point=1",  # unknown kind
            "point_error",  # no selector
            "point_error@label",  # no value
            "point_error@fp=ab",  # fp only valid for cache_corrupt
            "cache_corrupt@label=x",  # cache_corrupt needs fp
            "point_error@point=-1",
            "point_error@point=x",
            "point_error@label=",  # empty label
            "slow_point@label=x",  # missing duration
            "slow_point@label=x:abc",
            "slow_point@label=x:-1s",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            faults.parse_spec(bad)

    def test_empty_and_blank_directives_ignored(self):
        assert faults.parse_spec("") == []
        assert faults.parse_spec(" , ,") == []

    def test_active_faults_recaches_on_env_change(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "point_error@label=a")
        assert faults.active_faults()[0].value == "a"
        monkeypatch.setenv("REPRO_FAULT_SPEC", "point_error@label=b")
        assert faults.active_faults()[0].value == "b"
        monkeypatch.delenv("REPRO_FAULT_SPEC")
        assert faults.active_faults() == []


class TestClaims:
    def test_fault_fires_once_process_local(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "point_error@label=x")
        with pytest.raises(faults.FaultInjected):
            faults.on_point_start("x")
        faults.on_point_start("x")  # spent: the retry must not re-hit it
        faults.on_point_start("other")

    def test_claims_persist_in_state_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path))
        monkeypatch.setenv("REPRO_FAULT_SPEC", "point_error@label=x")
        with pytest.raises(faults.FaultInjected):
            faults.on_point_start("x")
        assert (tmp_path / "claim-0").exists()
        # A "different process" (fresh local state) still sees it spent.
        faults.reset()
        faults.on_point_start("x")

    def test_point_selector_counts_simulation_starts(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "point_error@point=2")
        faults.on_point_start("a")
        faults.on_point_start("b")
        with pytest.raises(faults.FaultInjected):
            faults.on_point_start("c")

    def test_worker_crash_degrades_in_process(self, monkeypatch):
        # In the test process (no multiprocessing parent) worker_crash
        # must raise instead of os._exit-ing the interpreter.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "worker_crash@label=x")
        with pytest.raises(faults.FaultInjected):
            faults.on_point_start("x")


class TestRetryKnobs:
    def test_defaults(self, monkeypatch):
        for var in (
            "REPRO_RETRIES", "REPRO_RETRY_BACKOFF_S", "REPRO_POINT_TIMEOUT_S"
        ):
            monkeypatch.delenv(var, raising=False)
        assert retry_limit() == 2
        assert retry_backoff_s() == pytest.approx(0.1)
        assert point_timeout_s() is None

    def test_parsing_and_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
        monkeypatch.setenv("REPRO_POINT_TIMEOUT_S", "1.5")
        assert retry_limit() == 5
        assert retry_backoff_s() == 0.0
        assert point_timeout_s() == 1.5
        for var, bad in (
            ("REPRO_RETRIES", "x"),
            ("REPRO_RETRIES", "-1"),
            ("REPRO_RETRY_BACKOFF_S", "nan?"),
            ("REPRO_RETRY_BACKOFF_S", "-0.5"),
            ("REPRO_POINT_TIMEOUT_S", "0"),
            ("REPRO_POINT_TIMEOUT_S", "x"),
        ):
            monkeypatch.setenv(var, bad)
            with pytest.raises(ConfigError):
                (retry_limit, retry_backoff_s, point_timeout_s)[
                    ("REPRO_RETRIES", "REPRO_RETRY_BACKOFF_S",
                     "REPRO_POINT_TIMEOUT_S").index(var)
                ]()
            monkeypatch.delenv(var)

    def test_backoff_doubles(self):
        assert backoff_delay(0.1, 1) == pytest.approx(0.1)
        assert backoff_delay(0.1, 2) == pytest.approx(0.2)
        assert backoff_delay(0.1, 3) == pytest.approx(0.4)


@pytest.fixture()
def recovery_env(monkeypatch, tmp_path):
    """Fast retries, no cache, cross-process claim state."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_POINT_TIMEOUT_S", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)


def _load_manifest():
    run_dir = last_run_dir()
    assert run_dir is not None
    manifest = RunManifest.load(run_dir / "manifest.json")
    validate_run_dir(run_dir)  # every outcome must stay schema-valid
    return manifest


class TestSerialRecovery:
    def test_point_error_retried_bit_identical(self, recovery_env, monkeypatch):
        spec = tiny_spec()
        baseline = run_points([spec], max_workers=1)[0]
        monkeypatch.setenv("REPRO_FAULT_SPEC", "point_error@point=0")
        faults.reset()
        recovered = run_points([spec], max_workers=1)[0]
        assert_identical(baseline, recovered)
        manifest = _load_manifest()
        assert manifest.status == "done"
        assert manifest.points[0].status == "done"
        assert manifest.points[0].attempts == 2

    def test_in_process_worker_crash_degrades_to_retry(
        self, recovery_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "worker_crash@point=0")
        faults.reset()
        results = run_points([tiny_spec()], max_workers=1)
        assert results[0].label == "p"
        assert _load_manifest().points[0].attempts == 2

    def test_exhausted_retries_fail_with_manifest(
        self, recovery_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RETRIES", "0")
        monkeypatch.setenv("REPRO_FAULT_SPEC", "point_error@point=0")
        faults.reset()
        with pytest.raises(PointFailure) as err:
            run_points([tiny_spec()], max_workers=1)
        assert 0 in err.value.errors
        assert "FaultInjected" in err.value.errors[0]
        manifest = _load_manifest()
        assert manifest.status == "failed"
        assert manifest.points[0].status == "failed"
        assert "FaultInjected" in manifest.points[0].error
        assert manifest.points[0].attempts == 1


class TestParallelRecovery:
    def test_worker_crash_recovers_bit_identical(self, recovery_env, monkeypatch):
        specs = [tiny_spec(label="a", seed=1), tiny_spec(label="b", seed=2)]
        baseline = run_points(specs, max_workers=1)
        monkeypatch.setenv("REPRO_FAULT_SPEC", "worker_crash@point=1")
        faults.reset()
        recovered = run_points(specs, max_workers=2)
        for want, got in zip(baseline, recovered):
            assert_identical(want, got)
        manifest = _load_manifest()
        assert manifest.status == "done"
        assert all(p.status == "done" for p in manifest.points)
        assert any(p.attempts > 1 for p in manifest.points)

    def test_straggler_timeout_reschedules(self, recovery_env, monkeypatch):
        # Direct _run_parallel drive with a no-op runner: fast and exact.
        monkeypatch.setenv("REPRO_FAULT_SPEC", "slow_point@label=slow:3s")
        faults.reset()
        specs = [tiny_spec(label="slow", seed=1), tiny_spec(label="ok", seed=2)]
        results, attempts, errors = [None, None], [0, 0], {}
        _run_parallel(
            specs, fault_runner, 2, obs_events.get_event_log(), "t",
            time.perf_counter(), retries=3, backoff=0.0, timeout=0.5,
            results=results, attempts=attempts, errors=errors,
        )
        assert errors == {}
        assert [r.label for r in results] == ["slow", "ok"]
        assert attempts[0] >= 2  # the straggler attempt was abandoned

    def test_pool_crash_with_stub_runner(self, recovery_env, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "worker_crash@label=victim")
        faults.reset()
        specs = [
            tiny_spec(label="victim", seed=1),
            tiny_spec(label="ok", seed=2),
            tiny_spec(label="ok2", seed=3),
        ]
        results, attempts, errors = [None] * 3, [0] * 3, {}
        _run_parallel(
            specs, fault_runner, 2, obs_events.get_event_log(), "t",
            time.perf_counter(), retries=2, backoff=0.0, timeout=None,
            results=results, attempts=attempts, errors=errors,
        )
        assert errors == {}
        assert [r.label for r in results] == ["victim", "ok", "ok2"]
        assert attempts[0] >= 2


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pointcache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path / "pointcache"


class TestCacheCorruption:
    def test_truncated_pickle_is_miss(self, cache_dir):
        fp = "f" * 16
        pointcache.store(fp, MiniResult("x"))
        path = pointcache._entry_path(fp)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert pointcache.load(fp) is None

    def test_wrong_class_pickle_is_miss_on_result_path(self, cache_dir):
        fp = "a" * 16
        pointcache.store(fp, {"not": "a result"})
        # Generic load stays generic (the GC tooling stores raw blobs)…
        assert pointcache.load(fp) == {"not": "a result"}
        # …but the simulation path duck-types and treats it as a miss.
        assert pointcache.load(fp, require_attrs=pointcache.RESULT_ATTRS) is None

    def test_unreadable_entry_is_miss(self, cache_dir, monkeypatch):
        fp = "b" * 16
        pointcache.store(fp, MiniResult("x"))
        monkeypatch.setattr(
            pointcache.pickle,
            "load",
            lambda f: (_ for _ in ()).throw(PermissionError("denied")),
        )
        assert pointcache.load(fp) is None

    @pytest.mark.parametrize(
        "exc",
        [IndexError, KeyError, ValueError, TypeError, MemoryError, ImportError],
    )
    def test_exotic_unpickle_errors_are_misses(self, cache_dir, monkeypatch, exc):
        # pickle.load of a corrupt stream can raise well beyond
        # UnpicklingError; every member of the catch set must be a miss.
        fp = "c" * 16
        pointcache.store(fp, MiniResult("x"))
        monkeypatch.setattr(
            pointcache.pickle,
            "load",
            lambda f: (_ for _ in ()).throw(exc("boom")),
        )
        assert pointcache.load(fp) is None

    def test_cache_corrupt_fault_truncates_entry(self, cache_dir, monkeypatch):
        fp = "d" * 16
        pointcache.store(fp, MiniResult("x"))
        monkeypatch.setenv("REPRO_FAULT_SPEC", f"cache_corrupt@fp={fp[:8]}")
        faults.reset()
        assert pointcache.load(fp) is None  # corrupted just before the read
        pointcache.store(fp, MiniResult("x"))  # re-simulation overwrites
        assert pointcache.load(fp).label == "x"  # fault spent: clean hit


def _v1_point() -> dict:
    return {
        "label": "p",
        "fingerprint": "f" * 16,
        "system": "sys",
        "workload": "wl",
        "policy": "ddio",
        "sweeper": False,
        "nic_tx_sweep": False,
        "queued_depth": 1,
        "seed": 42,
        "warmup_requests": None,
        "measure_requests": None,
        "from_cache": False,
        "sim_seconds": 0.1,
        "timeline_file": None,
    }


class TestManifestSchemaV2:
    def test_v1_manifest_still_loads(self):
        manifest = RunManifest.from_dict(
            {
                "run_id": "r",
                "schema": 1,
                "code_salt": "salt",
                "points": [_v1_point()],
            }
        )
        assert manifest.status == "done"
        assert manifest.points[0].status == "done"
        assert manifest.points[0].attempts == 1
        validate_manifest(manifest)

    def test_bad_statuses_rejected(self):
        manifest = RunManifest.create("x", 1)
        manifest.code_salt = "salt"
        manifest.status = "exploded"
        with pytest.raises(ConfigError):
            validate_manifest(manifest)
        manifest.status = "done"
        manifest.points = [PointRecord(**_v1_point())]
        manifest.points[0].status = "skipped"
        with pytest.raises(ConfigError):  # done run can't hold skipped points
            validate_manifest(manifest)
        manifest.status = "partial"
        validate_manifest(manifest)
        manifest.points[0].status = "failed"
        with pytest.raises(ConfigError):  # failed point needs an error
            validate_manifest(manifest)
        manifest.points[0].error = "boom"
        validate_manifest(manifest)
        manifest.points[0].attempts = 0
        with pytest.raises(ConfigError):
            validate_manifest(manifest)


class TestValidateOrphans:
    def test_orphan_run_dir_fails_validation(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        good = runs / "run-good"
        good.mkdir(parents=True)
        manifest = RunManifest.create("good", 1)
        manifest.code_salt = "salt"
        manifest.write(good / "manifest.json")
        orphan = runs / "run-orphan" / "timelines"
        orphan.mkdir(parents=True)
        (orphan / "p.jsonl").write_text("{}\n")
        assert validate_main([str(runs)]) == 1
        assert "orphaned run" in capsys.readouterr().err
        # Finalizing the orphan's manifest makes the tree valid again.
        manifest2 = RunManifest.create("fixed", 1)
        manifest2.code_salt = "salt"
        manifest2.status = "partial"
        manifest2.write(runs / "run-orphan" / "manifest.json")
        assert validate_main([str(runs)]) == 0
        assert "status=partial" in capsys.readouterr().out
