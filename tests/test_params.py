"""Unit tests for the system configuration (Table I parameters)."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.params import (
    CACHE_BLOCK_BYTES,
    CacheParams,
    CpuParams,
    MemoryParams,
    MiB,
    NicParams,
    SystemConfig,
    TABLE1,
)


class TestCacheParams:
    def test_table1_llc_geometry(self):
        llc = TABLE1.llc
        assert llc.size_bytes == 36 * MiB
        assert llc.ways == 12
        assert llc.num_sets == 49152
        assert llc.num_blocks == 589824

    def test_num_sets_times_ways_times_block_is_size(self):
        p = CacheParams(size_bytes=1 << 20, ways=16, latency_cycles=10)
        assert p.num_sets * p.ways * p.block_bytes == p.size_bytes

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1000, ways=3, latency_cycles=1)

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=0, ways=1, latency_cycles=1)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ConfigError):
            CacheParams(
                size_bytes=4096, ways=4, latency_cycles=1, replacement="plru"
            )

    def test_with_sets_resizes(self):
        p = CacheParams(size_bytes=4096, ways=4, latency_cycles=1)
        q = p.with_sets(32)
        assert q.num_sets == 32
        assert q.ways == p.ways
        assert q.latency_cycles == p.latency_cycles


class TestCpuParams:
    def test_table1_core_count_and_frequency(self):
        assert TABLE1.cpu.num_cores == 24
        assert TABLE1.cpu.freq_ghz == pytest.approx(3.2)

    def test_cycles_per_us(self):
        assert CpuParams(freq_ghz=2.0).cycles_per_us == pytest.approx(2000.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            CpuParams(num_cores=0)


class TestMemoryParams:
    def test_peak_bandwidth_is_channels_times_channel(self):
        m = MemoryParams(num_channels=4, channel_peak_gbps=25.6)
        assert m.peak_bandwidth_gbps == pytest.approx(102.4)

    def test_usable_bandwidth_applies_efficiency(self):
        m = MemoryParams(num_channels=2, channel_peak_gbps=10.0, efficiency=0.5)
        assert m.usable_bandwidth_gbps == pytest.approx(10.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            MemoryParams(efficiency=0.0)
        with pytest.raises(ConfigError):
            MemoryParams(efficiency=1.5)


class TestNicParams:
    def test_blocks_per_packet_rounds_up(self):
        assert NicParams(packet_bytes=1024).blocks_per_packet == 16
        assert NicParams(packet_bytes=1000).blocks_per_packet == 16
        assert NicParams(packet_bytes=65).blocks_per_packet == 2

    def test_rx_footprint(self):
        nic = NicParams(rx_buffers_per_core=1024, packet_bytes=1024)
        assert nic.rx_footprint_bytes_per_core == 1024 * 1024

    def test_rejects_zero_rings(self):
        with pytest.raises(ConfigError):
            NicParams(rx_buffers_per_core=0)


class TestSystemConfig:
    def test_paper_footprint_numbers(self):
        """§IV-A: 512/1024/2048 buffers/core of 1KB = 12/24/48 MB."""
        for buffers, mb in ((512, 12), (1024, 24), (2048, 48)):
            s = TABLE1.with_nic(rx_buffers_per_core=buffers, packet_bytes=1024)
            assert s.total_rx_footprint_bytes == mb * MiB

    def test_paper_ddio_capacity_numbers(self):
        """§IV-A: 2-, 4-, 6-way DDIO = 6, 12, 18 MB of the 36 MB LLC."""
        for ways, mb in ((2, 6), (4, 12), (6, 18)):
            s = TABLE1.with_nic(ddio_ways=ways)
            assert s.ddio_capacity_bytes == mb * MiB

    def test_rejects_ddio_ways_above_llc(self):
        with pytest.raises(ConfigError):
            TABLE1.with_nic(ddio_ways=13)

    def test_scaled_preserves_footprint_ratio(self):
        base = TABLE1.with_nic(rx_buffers_per_core=1024, packet_bytes=1024)
        scaled = base.scaled(0.25)
        base_ratio = base.total_rx_footprint_bytes / base.llc.size_bytes
        scaled_ratio = scaled.total_rx_footprint_bytes / scaled.llc.size_bytes
        assert scaled_ratio == pytest.approx(base_ratio, rel=0.01)

    def test_scaled_preserves_bandwidth_per_core(self):
        base = TABLE1
        scaled = base.scaled(0.125)
        assert scaled.cpu.num_cores == 3
        base_bw = base.memory.usable_bandwidth_gbps / base.cpu.num_cores
        scaled_bw = scaled.memory.usable_bandwidth_gbps / scaled.cpu.num_cores
        assert scaled_bw == pytest.approx(base_bw, rel=0.01)

    def test_scaled_identity(self):
        assert TABLE1.scaled(1.0) is TABLE1

    def test_scaled_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            TABLE1.scaled(0.0)
        with pytest.raises(ConfigError):
            TABLE1.scaled(2.0)

    def test_with_helpers_return_modified_copies(self):
        s = TABLE1.with_nic(ddio_ways=4)
        assert s.nic.ddio_ways == 4
        assert TABLE1.nic.ddio_ways == 2
        s2 = s.with_memory(num_channels=8)
        assert s2.memory.num_channels == 8
        s3 = s2.with_cpu(num_cores=12)
        assert s3.cpu.num_cores == 12

    def test_block_size_uniformity_enforced(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                l1=dataclasses.replace(TABLE1.l1, block_bytes=32, size_bytes=48 * 1024)
            )

    def test_block_bytes_constant(self):
        assert TABLE1.block_bytes == CACHE_BLOCK_BYTES == 64
