"""Unit tests for the analytic throughput / collocation solvers."""

import pytest

from repro.cache.hierarchy import AccessLevel
from repro.engine.analytic import (
    CORE_UTILIZATION_CAP,
    ServiceProfile,
    bandwidth_gbps,
    perf_at_load,
    service_cycles,
    solve_collocated,
    solve_peak_throughput,
    xmem_ipc,
)
from repro.errors import ConfigError
from repro.mem.dram import MAX_STABLE_UTILIZATION, DramModel
from repro.params import SystemConfig


def profile(mem_reads=8.0, blocks=30.0, work=600.0, llc=16.0, l2=4.0):
    return ServiceProfile(
        l1_accesses=2.0,
        l2_accesses=l2,
        llc_accesses=llc,
        mem_reads=mem_reads,
        mem_blocks_total=blocks,
        cpu_work_cycles=work,
    )


SYSTEM = SystemConfig().scaled(0.125)


class TestServiceModel:
    def test_bandwidth_formula(self):
        # 10 Mrps x 30 blocks x 64B = 19.2 GB/s
        assert bandwidth_gbps(profile(blocks=30.0), 10.0) == pytest.approx(19.2)

    def test_service_cycles_composition(self):
        p = profile(mem_reads=0.0, llc=0.0, l2=0.0, work=500.0)
        assert service_cycles(p, SYSTEM, 200.0) == pytest.approx(500.0)

    def test_service_cycles_grow_with_memory_latency(self):
        p = profile()
        assert service_cycles(p, SYSTEM, 400.0) > service_cycles(p, SYSTEM, 170.0)

    def test_mlp_divides_latency_cost(self):
        p = profile(mem_reads=12.0, llc=0.0, l2=0.0, work=0.0)
        expected = 12.0 * 300.0 / SYSTEM.cpu.mlp_mem
        assert service_cycles(p, SYSTEM, 300.0) == pytest.approx(expected)


class TestPeakSolver:
    def test_lighter_traffic_gives_higher_peak(self):
        heavy = solve_peak_throughput(profile(blocks=45.0), SYSTEM)
        light = solve_peak_throughput(profile(blocks=12.0), SYSTEM)
        assert light.throughput_mrps > heavy.throughput_mrps

    def test_fixed_point_is_self_consistent(self):
        p = profile()
        peak = solve_peak_throughput(p, SYSTEM)
        if not peak.core_limited:
            capacity = (
                CORE_UTILIZATION_CAP
                * SYSTEM.cpu.num_cores
                * SYSTEM.cpu.cycles_per_us
                / peak.service_cycles
            )
            assert capacity == pytest.approx(peak.throughput_mrps, rel=0.01)

    def test_bandwidth_never_exceeds_stability_limit(self):
        peak = solve_peak_throughput(profile(blocks=200.0), SYSTEM)
        assert peak.mem_utilization <= MAX_STABLE_UTILIZATION + 1e-6

    def test_zero_traffic_is_core_limited(self):
        p = profile(mem_reads=0.0, blocks=0.0)
        peak = solve_peak_throughput(p, SYSTEM)
        assert peak.core_limited
        assert peak.mem_bandwidth_gbps == 0.0

    def test_more_channels_help_bandwidth_bound_configs(self):
        p = profile(blocks=60.0)
        p4 = solve_peak_throughput(p, SYSTEM.with_memory(num_channels=4))
        p8 = solve_peak_throughput(p, SYSTEM.with_memory(num_channels=8))
        assert p8.throughput_mrps > p4.throughput_mrps

    def test_network_gbps_conversion(self):
        peak = solve_peak_throughput(profile(), SYSTEM)
        assert peak.network_gbps(1024) == pytest.approx(
            peak.throughput_mrps * 1024 * 8 / 1000.0
        )


class TestPerfAtLoad:
    def test_matches_dram_model(self):
        p = profile()
        point = perf_at_load(p, SYSTEM, 2.0)
        dram = DramModel(SYSTEM.memory, SYSTEM.cpu.freq_ghz)
        bw = bandwidth_gbps(p, 2.0)
        assert point.mem_latency_cycles == pytest.approx(
            dram.avg_latency_cycles(bw)
        )
        assert point.mem_p99_latency_cycles >= point.mem_latency_cycles

    def test_rejects_negative_load(self):
        with pytest.raises(ConfigError):
            perf_at_load(profile(), SYSTEM, -1.0)


class TestXmemIpc:
    def test_more_misses_lower_ipc(self):
        hits = {AccessLevel.L1: 0.5, AccessLevel.LLC: 0.5}
        misses = {AccessLevel.L1: 0.5, AccessLevel.MEM: 0.5}
        assert xmem_ipc(hits, SYSTEM, 300.0) > xmem_ipc(misses, SYSTEM, 300.0)

    def test_loaded_memory_lowers_ipc(self):
        rates = {AccessLevel.L2: 0.5, AccessLevel.MEM: 0.5}
        assert xmem_ipc(rates, SYSTEM, 170.0) > xmem_ipc(rates, SYSTEM, 600.0)

    def test_rates_are_normalized_internally(self):
        a = xmem_ipc({AccessLevel.MEM: 1.0}, SYSTEM, 200.0)
        b = xmem_ipc({AccessLevel.MEM: 12345.0}, SYSTEM, 200.0)
        assert a == pytest.approx(b)

    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigError):
            xmem_ipc({}, SYSTEM, 200.0)


class TestCollocatedSolver:
    XMEM_RATES = {AccessLevel.L2: 0.3, AccessLevel.LLC: 0.4, AccessLevel.MEM: 0.3}

    def test_converges_to_shared_operating_point(self):
        out = solve_collocated(
            profile(), self.XMEM_RATES, 0.5, SYSTEM, nf_cores=2, xmem_cores=1
        )
        assert out.nf_throughput_mrps > 0
        assert out.xmem_ipc > 0
        assert out.mem_latency_cycles >= SYSTEM.memory.idle_latency_cycles

    def test_lighter_nf_traffic_raises_xmem_ipc(self):
        """The §VI-E mechanism: Sweeper's bandwidth relief helps X-Mem."""
        heavy = solve_collocated(
            profile(blocks=45.0), self.XMEM_RATES, 0.5, SYSTEM, 2, 1
        )
        light = solve_collocated(
            profile(blocks=12.0), self.XMEM_RATES, 0.5, SYSTEM, 2, 1
        )
        assert light.xmem_ipc > heavy.xmem_ipc
        assert light.nf_throughput_mrps > heavy.nf_throughput_mrps

    def test_needs_both_tenants(self):
        with pytest.raises(ConfigError):
            solve_collocated(profile(), self.XMEM_RATES, 0.5, SYSTEM, 0, 1)
