"""Unit tests for traffic categories and counters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.traffic import (
    CPU_READ_CATEGORY,
    EVICT_CATEGORY,
    MemCategory,
    TrafficCounter,
)


class TestCategories:
    def test_eight_categories(self):
        assert len(list(MemCategory)) == 8

    def test_labels_match_paper_legend(self):
        assert MemCategory.NIC_RX_WR.label == "NIC RX Wr"
        assert MemCategory.CPU_TX_RDWR.label == "CPU TX Rd/Wr"
        assert MemCategory.RX_EVCT.label == "RX Evct"
        assert MemCategory.OTHER_EVCT.label == "Other Evct"

    def test_read_write_split(self):
        reads = {c for c in MemCategory if c.is_read}
        assert reads == {
            MemCategory.NIC_TX_RD,
            MemCategory.CPU_RX_RD,
            MemCategory.CPU_TX_RDWR,
            MemCategory.CPU_OTHER_RD,
        }

    def test_evict_category_mapping(self):
        assert EVICT_CATEGORY[RegionKind.RX_BUFFER] is MemCategory.RX_EVCT
        assert EVICT_CATEGORY[RegionKind.TX_BUFFER] is MemCategory.TX_EVCT
        assert EVICT_CATEGORY[RegionKind.APP] is MemCategory.OTHER_EVCT

    def test_evict_category_accepts_raw_ints(self):
        """Hot paths index with raw ints; IntEnum keys must match."""
        assert EVICT_CATEGORY[0] is MemCategory.RX_EVCT
        assert CPU_READ_CATEGORY[2] is MemCategory.CPU_OTHER_RD


class TestTrafficCounter:
    def test_record_and_totals(self):
        t = TrafficCounter()
        t.record(MemCategory.RX_EVCT, 3)
        t.record(MemCategory.CPU_RX_RD, 2)
        assert t.total() == 5
        assert t.total_reads() == 2
        assert t.total_writes() == 3
        assert t.total_bytes() == 5 * 64

    def test_rejects_negative(self):
        t = TrafficCounter()
        with pytest.raises(ConfigError):
            t.record(MemCategory.RX_EVCT, -1)

    def test_snapshot_diff(self):
        t = TrafficCounter()
        t.record(MemCategory.RX_EVCT, 2)
        snap = t.snapshot()
        t.record(MemCategory.RX_EVCT, 5)
        t.record(MemCategory.NIC_RX_WR, 1)
        d = t.diff(snap)
        assert d.get(MemCategory.RX_EVCT) == 5
        assert d.get(MemCategory.NIC_RX_WR) == 1

    def test_diff_rejects_newer_snapshot(self):
        t = TrafficCounter()
        snap = {MemCategory.RX_EVCT: 10}
        with pytest.raises(ConfigError):
            t.diff(snap)

    def test_scaled(self):
        t = TrafficCounter()
        t.record(MemCategory.TX_EVCT, 10)
        per_req = t.scaled(4)
        assert per_req[MemCategory.TX_EVCT] == pytest.approx(2.5)
        with pytest.raises(ConfigError):
            t.scaled(0)

    def test_merged(self):
        a = TrafficCounter()
        b = TrafficCounter()
        a.record(MemCategory.RX_EVCT, 1)
        b.record(MemCategory.RX_EVCT, 2)
        b.record(MemCategory.NIC_TX_RD, 3)
        m = a.merged(b)
        assert m.get(MemCategory.RX_EVCT) == 3
        assert m.get(MemCategory.NIC_TX_RD) == 3
        # originals untouched
        assert a.get(MemCategory.RX_EVCT) == 1

    def test_reset(self):
        t = TrafficCounter()
        t.record(MemCategory.RX_EVCT, 7)
        t.reset()
        assert t.total() == 0

    @given(
        st.lists(
            st.tuples(st.sampled_from(list(MemCategory)), st.integers(0, 100)),
            max_size=50,
        )
    )
    def test_total_is_sum_of_records(self, records):
        t = TrafficCounter()
        for cat, n in records:
            t.record(cat, n)
        assert t.total() == sum(n for _, n in records)
        assert t.total() == t.total_reads() + t.total_writes()
