"""Unit tests for the KVS, L3fwd, X-Mem, and spiky workload models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem.layout import AddressSpace, RegionKind
from repro.params import MiB
from repro.workloads.kvs import KvsParams, KvsWorkload
from repro.workloads.l3fwd import L3fwdParams, L3fwdWorkload
from repro.workloads.spiky import SpikyKvsWorkload
from repro.workloads.xmem import XMemParams, XMemWorkload

from tests.conftest import make_tiny_kvs


def built(workload, cores=2, seed=0):
    space = AddressSpace()
    workload.build(space, cores, rng=np.random.default_rng(seed))
    return space, workload


class TestKvsParams:
    def test_paper_defaults(self):
        p = KvsParams()
        assert p.num_keys == 2_400_000
        assert p.num_buckets == 1_000_000
        assert p.log_bytes == 256 * MiB
        assert p.get_fraction == 0.05
        assert p.zipf_skew == 0.99

    def test_item_blocks(self):
        assert KvsParams(item_bytes=1024).item_blocks == 16
        assert KvsParams(item_bytes=512).item_blocks == 8

    def test_scaled_shrinks_dataset(self):
        p = KvsParams().scaled(0.125)
        assert p.num_keys == 300_000
        assert p.log_bytes == 32 * MiB
        assert p.item_bytes == 1024  # item size does not scale

    def test_scaled_validation(self):
        with pytest.raises(ConfigError):
            KvsParams().scaled(0)

    def test_rejects_log_smaller_than_item(self):
        with pytest.raises(ConfigError):
            KvsParams(item_bytes=1024, log_bytes=512)


class TestKvsWorkload:
    def test_request_before_build_raises(self):
        with pytest.raises(ConfigError):
            make_tiny_kvs().request(0)

    def test_regions_allocated(self):
        space, _ = built(make_tiny_kvs())
        assert space.region("kvs_buckets").kind is RegionKind.APP
        assert space.region("kvs_log").kind is RegionKind.APP

    def test_every_request_probes_one_bucket(self):
        space, wl = built(make_tiny_kvs())
        buckets = space.region("kvs_buckets")
        for _ in range(50):
            ops = wl.request(0)
            assert buckets.contains_block(ops.app_reads[0])

    def test_get_reads_item_and_responds_with_item(self):
        space, wl = built(
            KvsWorkload(
                KvsParams(num_keys=512, num_buckets=128, log_bytes=1 << 20,
                          item_bytes=256, get_fraction=1.0)
            )
        )
        log = space.region("kvs_log")
        ops = wl.request(0)
        item_reads = ops.all_read_blocks()[1:]
        assert len(item_reads) == 4
        assert all(log.contains_block(b) for b in item_reads)
        assert ops.response_blocks == 4
        assert not ops.all_write_blocks()

    def test_set_writes_item_and_acks_one_block(self):
        space, wl = built(
            KvsWorkload(
                KvsParams(num_keys=512, num_buckets=128, log_bytes=1 << 20,
                          item_bytes=256, get_fraction=0.0)
            )
        )
        log = space.region("kvs_log")
        ops = wl.request(0)
        writes = ops.all_write_blocks()
        assert len(writes) == 4
        assert all(log.contains_block(b) for b in writes)
        assert ops.response_blocks == 1

    def test_in_place_update_rewrites_same_blocks(self):
        wl = KvsWorkload(
            KvsParams(num_keys=4, num_buckets=4, log_bytes=1 << 16,
                      item_bytes=256, get_fraction=0.0, zipf_skew=0.0,
                      update_in_place=True)
        )
        built(wl)
        seen = {}
        for _ in range(100):
            ops = wl.request(0)
            key_blocks = tuple(ops.all_write_blocks())
            seen.setdefault(key_blocks, 0)
            seen[key_blocks] += 1
        assert len(seen) <= 4  # one block set per key, reused forever

    def test_append_mode_advances_log_head(self):
        wl = KvsWorkload(
            KvsParams(num_keys=64, num_buckets=16, log_bytes=1 << 16,
                      item_bytes=256, get_fraction=0.0,
                      update_in_place=False)
        )
        built(wl)
        a = wl.request(0).all_write_blocks()
        b = wl.request(0).all_write_blocks()
        assert a != b
        assert b[0] == a[-1] + 1  # consecutive appends

    def test_append_mode_wraps_circularly(self):
        wl = KvsWorkload(
            KvsParams(num_keys=64, num_buckets=16, log_bytes=1 << 12,
                      item_bytes=256, get_fraction=0.0,
                      update_in_place=False)
        )
        space, _ = built(wl)
        log = space.region("kvs_log")
        blocks = []
        for _ in range(64):  # far more than the 16-item log holds
            blocks.extend(wl.request(0).all_write_blocks())
        assert all(log.contains_block(b) for b in blocks)

    def test_get_set_mix_tracks_fraction(self):
        wl = KvsWorkload(
            KvsParams(num_keys=512, num_buckets=128, log_bytes=1 << 20,
                      item_bytes=256, get_fraction=0.05)
        )
        built(wl)
        for _ in range(4000):
            wl.request(0)
        frac = wl.gets / (wl.gets + wl.sets)
        assert frac == pytest.approx(0.05, abs=0.02)

    def test_request_cycles_positive(self):
        wl = make_tiny_kvs()
        built(wl)
        ops = wl.request(0)
        assert wl.request_cycles(ops, packet_blocks=4) > wl.base_cycles


class TestL3fwd:
    def test_table_sized_from_rules(self):
        p = L3fwdParams(num_rules=16384, rule_bytes=64)
        assert p.table_bytes == 16384 * 64

    def test_l1_resident_variant_shrinks(self):
        p = L3fwdParams().l1_resident()
        assert p.num_rules == 128
        assert p.table_bytes <= 16 * 1024

    def test_lookups_fall_in_table(self):
        wl = L3fwdWorkload(L3fwdParams(num_rules=512, packet_blocks=4))
        space, _ = built(wl)
        table = space.region("l3fwd_table")
        for _ in range(200):
            ops = wl.request(0)
            assert all(table.contains_block(b) for b in ops.app_reads)
            assert len(ops.app_reads) == 2

    def test_copy_mode_response_is_full_packet(self):
        wl = L3fwdWorkload(L3fwdParams(packet_blocks=16, zero_copy=False))
        built(wl)
        assert wl.request(0).response_blocks == 16

    def test_zero_copy_mode_has_no_tx_copy(self):
        wl = L3fwdWorkload(L3fwdParams(packet_blocks=16, zero_copy=True))
        built(wl)
        assert wl.request(0).response_blocks == 0

    def test_request_before_build_raises(self):
        with pytest.raises(ConfigError):
            L3fwdWorkload().request(0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            L3fwdParams(num_rules=0)
        with pytest.raises(ConfigError):
            L3fwdParams(packet_blocks=0)


class TestXMem:
    def test_accesses_confined_to_private_region(self):
        wl = XMemWorkload(XMemParams(dataset_bytes=1 << 16))
        space = AddressSpace()
        wl.build(space, cores=[0, 1], rng=np.random.default_rng(0))
        r0 = space.region("xmem_dataset[0]")
        blocks, writes = wl.accesses(0, 500)
        assert all(r0.contains_block(int(b)) for b in blocks)
        assert len(writes) == 500

    def test_write_fraction(self):
        wl = XMemWorkload(XMemParams(write_fraction=0.3))
        space = AddressSpace()
        wl.build(space, cores=[0], rng=np.random.default_rng(1))
        _, writes = wl.accesses(0, 20000)
        assert np.mean(writes) == pytest.approx(0.3, abs=0.02)

    def test_non_xmem_core_rejected(self):
        wl = XMemWorkload()
        space = AddressSpace()
        wl.build(space, cores=[1], rng=np.random.default_rng(2))
        with pytest.raises(ConfigError):
            wl.accesses(0, 10)

    def test_access_before_build_raises(self):
        with pytest.raises(ConfigError):
            XMemWorkload().accesses(0, 1)

    def test_paper_dataset_default(self):
        assert XMemParams().dataset_bytes == 2 * MiB


class TestSpikyKvs:
    def test_spikes_occur_at_configured_rate(self):
        wl = SpikyKvsWorkload(
            KvsParams(num_keys=512, num_buckets=128, log_bytes=1 << 20,
                      item_bytes=256),
            spike_probability=0.05,
            rng=np.random.default_rng(4),
        )
        delays = [wl.extra_delay_us() for _ in range(20000)]
        nonzero = [d for d in delays if d > 0]
        assert len(nonzero) / len(delays) == pytest.approx(0.05, rel=0.2)
        assert all(1.0 <= d <= 100.0 for d in nonzero)

    def test_mean_extra_delay(self):
        wl = SpikyKvsWorkload(spike_probability=0.001)
        assert wl.mean_extra_delay_us() == pytest.approx(0.001 * 50.5)

    def test_plain_workload_has_no_delay(self):
        wl = make_tiny_kvs()
        assert wl.extra_delay_us() == 0.0
