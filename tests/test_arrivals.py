"""Unit tests for arrival processes and backlog control."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.nic.arrivals import BacklogController, PoissonArrivals, SpikeSampler


class TestPoissonArrivals:
    def test_mean_interval_matches_rate(self):
        gen = PoissonArrivals(rate_per_us=2.0, rng=np.random.default_rng(1))
        gaps = [gen.next_interval_us() for _ in range(20000)]
        assert np.mean(gaps) == pytest.approx(0.5, rel=0.05)

    def test_batch_times_are_increasing(self):
        gen = PoissonArrivals(rate_per_us=1.0, rng=np.random.default_rng(2))
        times = gen.sample_batch_us(1000)
        assert np.all(np.diff(times) > 0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)


class TestBacklogController:
    def test_refills_to_target(self):
        ctl = BacklogController(target_depth=50)
        assert ctl.refill(0) == 50
        assert ctl.refill(30) == 20
        assert ctl.refill(50) == 0
        assert ctl.refill(80) == 0

    def test_zero_target_degenerates_to_one_packet(self):
        ctl = BacklogController(target_depth=0)
        assert ctl.refill(0) == 1
        assert ctl.refill(5) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            BacklogController(-1)
        with pytest.raises(ConfigError):
            BacklogController(1).refill(-2)

    @given(st.integers(0, 500), st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_backlog_after_refill_meets_target(self, target, backlog):
        ctl = BacklogController(target)
        after = backlog + ctl.refill(backlog)
        assert after >= max(target, 1) or after == backlog  # never shrinks
        assert after >= min(max(target, 1), after)
        if backlog < max(target, 1):
            assert after == max(target, 1)


class TestSpikeSampler:
    def test_mean_extra_delay_formula(self):
        s = SpikeSampler(probability=0.01, low_us=1.0, high_us=100.0)
        assert s.mean_extra_delay_us() == pytest.approx(0.505)

    def test_empirical_rate_and_range(self):
        s = SpikeSampler(
            probability=0.05, low_us=1.0, high_us=100.0,
            rng=np.random.default_rng(3),
        )
        samples = [s.sample_extra_delay_us() for _ in range(20000)]
        spikes = [x for x in samples if x > 0]
        assert len(spikes) / len(samples) == pytest.approx(0.05, rel=0.15)
        assert all(1.0 <= x <= 100.0 for x in spikes)

    def test_zero_probability_never_spikes(self):
        s = SpikeSampler(probability=0.0)
        assert all(s.sample_extra_delay_us() == 0.0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpikeSampler(probability=1.5)
        with pytest.raises(ConfigError):
            SpikeSampler(low_us=10.0, high_us=1.0)
